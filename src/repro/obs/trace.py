"""Span tracing: timed, nested, named stages of the pipeline.

A span covers one pipeline stage (covariance build, eigendecomposition,
P-MUSIC fusion, a calibration solve, the likelihood grid search, ...).
Spans nest through a thread-local stack, so a trace of one ``localize``
call reconstructs the full stage tree with per-stage wall time.

Completed spans are reported to a :class:`SpanObserver` — the runtime
wires one that feeds ``latency.<name>`` histograms and, when tracing to
a file is on, appends one JSON line per span.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from dataclasses import dataclass, field
from types import TracebackType
from typing import Any, Dict, List, Optional, Protocol, TextIO, Type

from repro.analysis.sanitizer import sanitized_lock


@dataclass
class SpanRecord:
    """The immutable outcome of one finished span."""

    name: str
    span_id: int
    parent_id: Optional[int]
    trace_id: int
    start_unix_s: float
    duration_ms: float
    status: str = "ok"
    attrs: Dict[str, Any] = field(default_factory=dict)
    thread: str = ""

    def to_json_line(self) -> str:
        record: Dict[str, Any] = {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "start_unix_s": self.start_unix_s,
            "duration_ms": self.duration_ms,
            "status": self.status,
            "thread": self.thread,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return json.dumps(record, sort_keys=True, default=str)


class SpanObserver(Protocol):
    """Anything that wants to see finished spans."""

    def on_span(self, record: SpanRecord) -> None:  # pragma: no cover
        ...


class JsonlTraceWriter:
    """Appends span records to a JSONL file, thread-safely.

    The file opens lazily on the first span so that merely configuring
    a trace path never creates an empty file for a run that dies before
    producing any spans.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = sanitized_lock("obs.trace.writer")
        self._handle: Optional[TextIO] = None

    def on_span(self, record: SpanRecord) -> None:
        # Writing under the lock is this lock's whole purpose: it
        # serializes appends from concurrent spans so JSON lines never
        # interleave.  Nothing else ever nests inside it.
        with self._lock:
            if self._handle is None:
                self._handle = open(  # reprolint: disable=RL009
                    self.path, "w", encoding="utf-8"
                )
            self._handle.write(record.to_json_line() + "\n")  # reprolint: disable=RL009

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()  # reprolint: disable=RL009
                self._handle = None


class Tracer:
    """Owns the thread-local span stack and id assignment.

    Span and trace ids are small process-wide integers (not UUIDs): the
    traces are per-run files, so compact ids keep them readable and
    diffable.
    """

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self._traces = itertools.count(1)
        self._id_lock = sanitized_lock("obs.trace.ids")
        self._local = threading.local()
        self._observers: List[SpanObserver] = []

    def add_observer(self, observer: SpanObserver) -> None:
        # The observer list is mutated by configure()/shutdown() while
        # worker threads finish spans, so it shares the id lock.
        with self._id_lock:
            self._observers.append(observer)

    def remove_observer(self, observer: SpanObserver) -> None:
        with self._id_lock:
            if observer in self._observers:
                self._observers.remove(observer)

    def _stack(self) -> List["ActiveSpan"]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> Optional["ActiveSpan"]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def start(self, name: str, attrs: Dict[str, Any]) -> "ActiveSpan":
        with self._id_lock:
            span_id = next(self._ids)
        stack = self._stack()
        parent = stack[-1] if stack else None
        if parent is None:
            with self._id_lock:
                trace_id = next(self._traces)
        else:
            trace_id = parent.trace_id
        span = ActiveSpan(
            tracer=self,
            name=name,
            span_id=span_id,
            parent_id=parent.span_id if parent else None,
            trace_id=trace_id,
            attrs=dict(attrs),
        )
        stack.append(span)
        return span

    def finish(self, span: "ActiveSpan", status: str) -> SpanRecord:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # pragma: no cover - misuse guard (exit out of order)
            while stack and stack[-1] is not span:
                stack.pop()
            if stack:
                stack.pop()
        record = SpanRecord(
            name=span.name,
            span_id=span.span_id,
            parent_id=span.parent_id,
            trace_id=span.trace_id,
            start_unix_s=span.start_unix_s,
            duration_ms=(time.perf_counter() - span.start_perf) * 1e3,
            status=status,
            attrs=span.attrs,
            thread=threading.current_thread().name,
        )
        # Copy the observer list under the lock, notify outside it:
        # on_span may do slow work (the trace writer does file I/O) and
        # must not run while holding a Tracer lock.
        with self._id_lock:
            observers = list(self._observers)
        for observer in observers:
            observer.on_span(record)
        return record


class ActiveSpan:
    """An open span; also the context-manager object ``span()`` yields."""

    __slots__ = (
        "tracer",
        "name",
        "span_id",
        "parent_id",
        "trace_id",
        "attrs",
        "start_unix_s",
        "start_perf",
    )

    def __init__(
        self,
        tracer: Tracer,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        trace_id: int,
        attrs: Dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.attrs = attrs
        self.start_unix_s = time.time()
        self.start_perf = time.perf_counter()

    def set(self, **attrs: Any) -> "ActiveSpan":
        """Attach attributes computed while the span is open."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "ActiveSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        self.tracer.finish(self, "error" if exc_type is not None else "ok")
        return False


class NullSpan:
    """The shared no-op span used whenever observability is disabled.

    Stateless and reentrant, so one module-level instance serves every
    call site; the disabled fast path is one attribute check plus
    returning this object.
    """

    __slots__ = ()

    def set(self, **attrs: Any) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        return False


NULL_SPAN = NullSpan()


def load_trace_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read a span trace file back into dict records."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
