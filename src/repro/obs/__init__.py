"""Pipeline-wide observability: tracing spans, metrics, structured logs.

The D-Watch pipeline is instrumented with named spans and metrics at
every stage boundary (covariance build, MUSIC eigendecomposition,
P-MUSIC fusion, calibration solves, drop detection, the likelihood grid
search).  This package is the zero-dependency layer behind that:

* :func:`span` / :func:`count` / :func:`observe` / :func:`gauge` — the
  instrumentation entry points; **no-ops unless enabled**, and never
  touching pipeline numerics, so default runs stay bit-identical.
* :func:`configure` / :func:`shutdown` — process-wide enablement with
  optional JSONL trace and metrics files (the CLI's ``--trace`` /
  ``--metrics``).
* :func:`observed` — scoped enablement into a private registry.
* :mod:`repro.obs.logging` — structured ``key=value`` progress logging.

See ``docs/OBSERVABILITY.md`` for the naming scheme and file schemas.
"""

from repro.obs.export import (
    ExpositionFamily,
    prometheus_label_name,
    prometheus_metric_name,
    render_prometheus,
    validate_exposition,
)
from repro.obs.logging import (
    StructuredFormatter,
    configure_logging,
    fields,
    get_logger,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    latency_stage_stats,
    load_snapshot_jsonl,
    render_snapshot,
    series_name,
)
from repro.obs.server import (
    PROMETHEUS_CONTENT_TYPE,
    OpsServer,
    health_document_for,
)
from repro.obs.runtime import (
    ObsState,
    configure,
    count,
    gauge,
    get_registry,
    is_enabled,
    observe,
    observed,
    shutdown,
    snapshot,
    span,
)
from repro.obs.trace import (
    JsonlTraceWriter,
    SpanRecord,
    Tracer,
    load_trace_jsonl,
)

__all__ = [
    "Counter",
    "ExpositionFamily",
    "Gauge",
    "Histogram",
    "JsonlTraceWriter",
    "MetricsRegistry",
    "ObsState",
    "OpsServer",
    "PROMETHEUS_CONTENT_TYPE",
    "SpanRecord",
    "StructuredFormatter",
    "Tracer",
    "configure",
    "configure_logging",
    "count",
    "fields",
    "gauge",
    "get_logger",
    "get_registry",
    "health_document_for",
    "is_enabled",
    "latency_stage_stats",
    "load_snapshot_jsonl",
    "load_trace_jsonl",
    "observe",
    "observed",
    "prometheus_label_name",
    "prometheus_metric_name",
    "render_prometheus",
    "render_snapshot",
    "series_name",
    "shutdown",
    "snapshot",
    "span",
    "validate_exposition",
]
