"""Pipeline-wide observability: tracing spans, metrics, structured logs.

The D-Watch pipeline is instrumented with named spans and metrics at
every stage boundary (covariance build, MUSIC eigendecomposition,
P-MUSIC fusion, calibration solves, drop detection, the likelihood grid
search).  This package is the zero-dependency layer behind that:

* :func:`span` / :func:`count` / :func:`observe` / :func:`gauge` — the
  instrumentation entry points; **no-ops unless enabled**, and never
  touching pipeline numerics, so default runs stay bit-identical.
* :func:`configure` / :func:`shutdown` — process-wide enablement with
  optional JSONL trace and metrics files (the CLI's ``--trace`` /
  ``--metrics``).
* :func:`observed` — scoped enablement into a private registry.
* :mod:`repro.obs.logging` — structured ``key=value`` progress logging.

See ``docs/OBSERVABILITY.md`` for the naming scheme and file schemas.
"""

from repro.obs.logging import (
    StructuredFormatter,
    configure_logging,
    fields,
    get_logger,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    latency_stage_stats,
    load_snapshot_jsonl,
    render_snapshot,
)
from repro.obs.runtime import (
    ObsState,
    configure,
    count,
    gauge,
    get_registry,
    is_enabled,
    observe,
    observed,
    shutdown,
    snapshot,
    span,
)
from repro.obs.trace import (
    JsonlTraceWriter,
    SpanRecord,
    Tracer,
    load_trace_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlTraceWriter",
    "MetricsRegistry",
    "ObsState",
    "SpanRecord",
    "StructuredFormatter",
    "Tracer",
    "configure",
    "configure_logging",
    "count",
    "fields",
    "gauge",
    "get_logger",
    "get_registry",
    "is_enabled",
    "latency_stage_stats",
    "load_snapshot_jsonl",
    "load_trace_jsonl",
    "observe",
    "observed",
    "render_snapshot",
    "shutdown",
    "snapshot",
    "span",
]
