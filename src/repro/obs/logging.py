"""Structured logging for user-facing progress output.

The CLI (and anything else that used to ``print`` progress) logs
through here instead, which buys two things:

* ``--quiet`` works: progress goes to stderr at INFO and can be raised
  to WARNING wholesale, leaving stdout purely for results;
* machine-readable runs work: the formatter renders ``key=value``
  fields appended to the message, so logs stay greppable.

Use :func:`get_logger` for a namespaced logger and pass structured
fields as keyword arguments via :func:`log_fields`-style calls::

    log = get_logger("cli")
    log.info("calibrating readers", extra=fields(environment="hall"))
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Any, Dict, Optional

ROOT_LOGGER_NAME = "repro"

#: LogRecord attribute the structured fields travel under.
_FIELDS_ATTR = "repro_fields"


def fields(**values: Any) -> Dict[str, Dict[str, Any]]:
    """Structured fields for a log call: ``log.info(msg, extra=fields(k=v))``."""
    return {_FIELDS_ATTR: values}


class StructuredFormatter(logging.Formatter):
    """``level logger message key=value ...`` on one line."""

    def format(self, record: logging.LogRecord) -> str:
        base = f"{record.levelname.lower()} {record.name} {record.getMessage()}"
        extra = getattr(record, _FIELDS_ATTR, None)
        if extra:
            rendered = " ".join(f"{key}={value}" for key, value in extra.items())
            base = f"{base} {rendered}"
        if record.exc_info:
            base = f"{base}\n{self.formatException(record.exc_info)}"
        return base


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` namespace."""
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure_logging(
    quiet: bool = False, stream: Optional[IO[str]] = None
) -> logging.Logger:
    """Install the structured handler on the ``repro`` logger.

    Parameters
    ----------
    quiet:
        Raise the threshold to WARNING so progress chatter disappears
        while genuine problems still surface.
    stream:
        Destination; stderr by default so stdout stays parseable.

    Idempotent: reconfiguring replaces the previously installed
    handler instead of stacking duplicates.
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(StructuredFormatter())
    root.addHandler(handler)
    root.setLevel(logging.WARNING if quiet else logging.INFO)
    root.propagate = False
    return root
