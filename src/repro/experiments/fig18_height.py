"""Fig. 18 — localization error vs tag-array height difference.

Tags on tables and in hands sit 1-1.5 m high while the arrays are at
1.25 m.  A horizontal array measures ``arccos(cos(theta) * cos(phi))``
for a wave with elevation ``phi``, so height differences bias every
AoA towards broadside.  The paper finds ~24 cm mean error at 40 cm
difference, degrading to ~40 cm at 120 cm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.experiments.harness import localization_trial_errors
from repro.sim.environments import library_scene
from repro.utils.rng import RngLike, ensure_rng, spawn_child


@dataclass
class Fig18Result:
    """Mean error per height difference."""

    height_difference_cm: List[float]
    mean_error_cm: List[float]
    coverage: List[float]

    def rows(self) -> List[str]:
        """The figure's series over the height sweep."""
        lines = ["height_diff_cm  mean_error_cm  coverage"]
        lines.extend(
            f"{diff:14.0f}  {err:13.1f}  {cov:8.0%}"
            for diff, err, cov in zip(
                self.height_difference_cm, self.mean_error_cm, self.coverage
            )
        )
        return lines


def run_fig18(
    height_differences_cm: Sequence[float] = (0, 20, 40, 60, 80, 100, 120),
    num_locations: int = 10,
    repeats: int = 1,
    rng: RngLike = None,
) -> Fig18Result:
    """Sweep the tag height relative to the (fixed, 1.25 m) arrays."""
    generator = ensure_rng(rng)
    result = Fig18Result([], [], [])
    for index, difference_cm in enumerate(height_differences_cm):
        sweep_rng = spawn_child(generator, index)
        scene = library_scene(rng=sweep_rng)
        for tag in scene.tags:
            tag.height_m = scene.array_height_m + difference_cm / 100.0
        outcome = localization_trial_errors(
            scene, num_locations=num_locations, repeats=repeats, rng=sweep_rng
        )
        result.height_difference_cm.append(float(difference_cm))
        result.mean_error_cm.append(
            outcome.summary().mean * 100.0 if outcome.covered else float("nan")
        )
        result.coverage.append(outcome.coverage)
    return result
