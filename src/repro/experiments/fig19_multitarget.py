"""Fig. 19 — multi-target localization on the 2 m x 2 m table.

Three water bottles at decreasing mutual separation (roughly 130, 50
and 20 cm in the paper's snapshots).  Sparse targets block disjoint
path subsets and are individually localized (max error 17.2 cm in the
paper); at ~20 cm the targets merge into one blob and per-target
localization fails — reproducing that failure is part of the result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.constants import TABLE_GRID_CELL_M
from repro.experiments.harness import DeploymentHarness
from repro.geometry.point import Point
from repro.sim.environments import table_scene
from repro.sim.target import bottle_target
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class Fig19Result:
    """Per-separation multi-target outcomes."""

    separations_cm: List[float]
    targets_found: List[int]
    max_error_cm: List[float]

    def rows(self) -> List[str]:
        """One row per separation snapshot."""
        lines = ["separation_cm  found/3  max_error_cm"]
        for sep, found, err in zip(
            self.separations_cm, self.targets_found, self.max_error_cm
        ):
            err_text = f"{err:12.1f}" if not math.isnan(err) else "       (n/a)"
            lines.append(f"{sep:13.0f}  {found:7d}  {err_text}")
        return lines


def _bottle_positions(center: Point, separation_m: float) -> List[Point]:
    """Three bottles in an L arrangement, ``separation_m`` between
    adjacent bottles.

    The L opens towards the tagged table edges (top and left), keeping
    every bottle inside the densely path-covered half of the table; the
    corner diagonally opposite both arrays is a genuine deadzone no
    direct path crosses, and even the paper's snapshots place targets
    along a diagonal band rather than into that corner.
    """
    half = separation_m / 2.0
    base = Point(
        max(0.35, center.x - half),
        max(0.35, center.y - half),
    )
    return [
        base,
        Point(base.x, base.y + separation_m),
        Point(base.x + separation_m, base.y + separation_m),
    ]


def _match_errors(
    estimates: Sequence[Point], targets: Sequence
) -> List[float]:
    """Greedy nearest matching of estimates to true targets."""
    remaining = list(estimates)
    errors = []
    for target in targets:
        if not remaining:
            break
        best = min(remaining, key=lambda p: target.position.distance_to(p))
        remaining.remove(best)
        errors.append(target.localization_error(best))
    return errors


def run_fig19(
    separations_cm: Sequence[float] = (130.0, 50.0, 20.0),
    snapshots: int = 5,
    rng: RngLike = None,
) -> Fig19Result:
    """Localize three bottles at each separation."""
    generator = ensure_rng(rng)
    scene = table_scene(rng=generator)
    harness = DeploymentHarness(
        scene, cell_size=TABLE_GRID_CELL_M, rng=generator
    )
    center = scene.room.center
    result = Fig19Result([], [], [])
    for separation in separations_cm:
        found_counts, max_errors = [], []
        for snapshot in range(snapshots):
            targets = [
                bottle_target(p)
                for p in _bottle_positions(center, separation / 100.0)
            ]
            estimates = harness.localize_targets(targets, max_targets=3)
            errors = _match_errors(estimates, targets)
            found_counts.append(len(estimates))
            if len(errors) == len(targets):
                max_errors.append(max(errors))
        result.separations_cm.append(float(separation))
        result.targets_found.append(
            int(round(np.mean(found_counts))) if found_counts else 0
        )
        result.max_error_cm.append(
            float(np.mean(max_errors)) * 100.0 if max_errors else float("nan")
        )
    return result
