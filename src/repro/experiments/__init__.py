"""Experiment runners: one module per table/figure of the paper.

Every runner is a plain function taking size knobs (trial counts,
sweep ranges) and an rng seed, returning a small result dataclass with
a ``rows()`` method that prints the same rows/series the paper reports.
Benchmarks call the runners with reduced sizes; the examples and
EXPERIMENTS.md use fuller ones.
"""

from repro.experiments.metrics import (
    coverage_rate,
    detection_rate,
    LocalizationResult,
)
from repro.experiments.harness import (
    DeploymentHarness,
    localization_trial_errors,
)
from repro.experiments.fig03_phase_offsets import run_fig03, Fig03Result
from repro.experiments.fig04_music_limitation import run_fig04, Fig04Result
from repro.experiments.fig09_calibration import run_fig09, Fig09Result
from repro.experiments.fig10_aoa_cdf import run_fig10, Fig10Result
from repro.experiments.fig12_pmusic_spectra import run_fig12, Fig12Result
from repro.experiments.fig13_detection_rate import run_fig13, Fig13Result
from repro.experiments.fig14_overall import run_fig14, Fig14Result
from repro.experiments.fig15_antennas import run_fig15, Fig15Result
from repro.experiments.fig16_reflectors import run_fig16, Fig16Result
from repro.experiments.fig17_tags import run_fig17, Fig17Result
from repro.experiments.fig18_height import run_fig18, Fig18Result
from repro.experiments.fig19_multitarget import run_fig19, Fig19Result
from repro.experiments.fig21_fist import run_fig21, Fig21Result
from repro.experiments.latency import run_latency, LatencyResult

__all__ = [
    "coverage_rate",
    "detection_rate",
    "LocalizationResult",
    "DeploymentHarness",
    "localization_trial_errors",
    "run_fig03",
    "Fig03Result",
    "run_fig04",
    "Fig04Result",
    "run_fig09",
    "Fig09Result",
    "run_fig10",
    "Fig10Result",
    "run_fig12",
    "Fig12Result",
    "run_fig13",
    "Fig13Result",
    "run_fig14",
    "Fig14Result",
    "run_fig15",
    "Fig15Result",
    "run_fig16",
    "Fig16Result",
    "run_fig17",
    "Fig17Result",
    "run_fig18",
    "Fig18Result",
    "run_fig19",
    "Fig19Result",
    "run_fig21",
    "Fig21Result",
    "run_latency",
    "LatencyResult",
]
