"""Shared deployment harness for the localization experiments.

Owns the repetitive part of every room-scale experiment: build the
scene, calibrate, capture baselines, then run localization trials over
test locations and collect extended-target errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.core.pipeline import DWatch
from repro.experiments.metrics import LocalizationResult
from repro.geometry.point import Point
from repro.sim.deployment import test_location_grid
from repro.sim.measurement import MeasurementConfig, MeasurementSession
from repro.sim.scene import Scene
from repro.sim.target import Target, human_target
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class DeploymentHarness:
    """One calibrated, baselined D-Watch deployment ready for trials.

    Parameters
    ----------
    scene:
        The deployment scene.
    config:
        Measurement configuration for all captures.
    baseline_captures:
        Number of consecutive empty-area captures (enables the peak
        stability screen; the paper's baseline takes "a few seconds",
        easily covering 2-3 captures).
    cell_size:
        Likelihood grid cell (5 cm default, 2 cm for the table).
    rng:
        Randomness for calibration and captures.
    """

    scene: Scene
    config: Optional[MeasurementConfig] = None
    baseline_captures: int = 3
    cell_size: float = 0.05
    rng: RngLike = None

    def __post_init__(self) -> None:
        generator = ensure_rng(self.rng)
        self.config = self.config or MeasurementConfig()
        self.dwatch = DWatch(self.scene, cell_size=self.cell_size)
        self.dwatch.calibrate(rng=generator)
        self.session = MeasurementSession(self.scene, self.config, rng=generator)
        self.dwatch.collect_baseline(
            [self.session.capture() for _ in range(self.baseline_captures)]
        )

    def localize_target(self, target: Target) -> Optional[Point]:
        """One fix for one target; ``None`` when uncovered."""
        estimates = self.dwatch.localize(self.session.capture([target]))
        return estimates[0].position if estimates else None

    def localize_targets(self, targets: Sequence[Target], max_targets: int) -> List[Point]:
        """One multi-target fix."""
        estimates = self.dwatch.localize(
            self.session.capture(list(targets)), max_targets=max_targets
        )
        return [estimate.position for estimate in estimates]

    def run_trials(
        self,
        positions: Sequence[Point],
        repeats: int = 1,
        target_factory: Callable[[Point], Target] = human_target,
    ) -> LocalizationResult:
        """Localization trials over ``positions`` x ``repeats``."""
        errors: List[float] = []
        attempted = 0
        with obs.span(
            "harness.trials", positions=len(positions), repeats=repeats
        ) as sp:
            for position in positions:
                target = target_factory(position)
                for _ in range(repeats):
                    attempted += 1
                    obs.count("harness.fixes")
                    estimate = self.localize_target(target)
                    if estimate is None:
                        obs.count("harness.uncovered")
                    else:
                        error = target.localization_error(estimate)
                        errors.append(error)
                        obs.observe("harness.error_m", error)
            sp.set(attempted=attempted, localized=len(errors))
        return LocalizationResult(attempted=attempted, errors=errors)


def localization_trial_errors(
    scene: Scene,
    num_locations: int,
    repeats: int = 1,
    rng: RngLike = None,
    cell_size: float = 0.05,
    config: Optional[MeasurementConfig] = None,
    grid_spacing: float = 0.5,
) -> LocalizationResult:
    """End-to-end localization over a sampled test-location grid.

    Mirrors the paper's methodology: test locations on a uniform grid
    (0.5 m apart), ``repeats`` fixes per location.  When the full grid
    exceeds ``num_locations`` a deterministic subsample is used so
    small benchmark runs stay representative of the room.
    """
    generator = ensure_rng(rng)
    harness = DeploymentHarness(
        scene, config=config, cell_size=cell_size, rng=generator
    )
    grid = test_location_grid(scene.room, spacing=grid_spacing)
    if num_locations < len(grid):
        # Subsample with a fixed internal seed: the same grid and count
        # always yield the same locations, so sweep points stay
        # comparable — and unlike a strided linspace the sample cannot
        # alias onto a single grid column.
        subsample_rng = ensure_rng(0xD_4A7C4)
        indices = np.sort(
            subsample_rng.choice(len(grid), size=num_locations, replace=False)
        )
        grid = [grid[i] for i in indices]
    return harness.run_trials(grid, repeats=repeats)
