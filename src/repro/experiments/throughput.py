"""Streaming throughput: sustained fixes/sec over a synthetic walk.

The paper's end-to-end budget is 0.5 s per fix (Section 8); a streaming
engine must additionally keep its *tail* latency inside that budget,
because a continuous tracker that stalls on one window drops the
target.  This runner streams a synthetic walk through the hall scene
and reports sustained fixes/sec plus the p50/p99 of the
``latency.stream.window`` histogram the runner's spans feed.  It is
shared by ``benchmarks/test_stream_throughput.py`` and
``scripts/bench.py`` so the gate and the recorded benchmark measure
the same workload.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro import obs
from repro.core.pipeline import DWatch
from repro.obs.metrics import latency_stage_stats
from repro.sim.environments import hall_scene
from repro.sim.measurement import MeasurementSession
from repro.stream import StreamRunner
from repro.stream.events import TagRead
from repro.stream.runner import StreamConfig
from repro.stream.synthetic import SyntheticStreamConfig, synthetic_reads


@dataclass
class ThroughputResult:
    """One streaming run: fixes produced, wall time, latency tails."""

    fixes: List[object]
    reads: int
    elapsed_s: float
    p50_ms: float
    p99_ms: float
    window_count: int
    stage_ms: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: ``dsp.incremental.*`` counter totals of the run (skipped /
    #: updates / fallbacks), for the incremental-vs-full benchmark.
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def fixes_per_s(self) -> float:
        """Sustained localization throughput."""
        return len(self.fixes) / self.elapsed_s

    @property
    def reads_per_s(self) -> float:
        """Tag-read ingest rate during the run."""
        return self.reads / self.elapsed_s

    def rows(self) -> List[str]:
        """Summary rows for CLI/benchmark output."""
        return [
            f"fixes {len(self.fixes)}  reads {self.reads}  "
            f"elapsed {self.elapsed_s:.2f}s",
            f"throughput {self.fixes_per_s:.1f} fixes/s  "
            f"({self.reads_per_s:.0f} reads/s)",
            f"window latency p50 {self.p50_ms:.1f} ms  "
            f"p99 {self.p99_ms:.1f} ms",
        ]


def build_stream_scenario(
    fixes: int = 6,
    num_tags: int = 10,
    num_antennas: int = 6,
) -> Tuple[DWatch, List[TagRead]]:
    """Calibrated runner + synthetic reads for the hall walk.

    Split out from :func:`run_stream_throughput` so callers that want
    warmup/repeat timing (``scripts/bench.py``) can pay the scene and
    calibration setup once and re-stream fresh runners over the same
    reads.
    """
    scene = hall_scene(rng=71, num_tags=num_tags, num_antennas=num_antennas)
    dwatch = DWatch(scene, cell_size=0.1)
    dwatch.calibrate(rng=72)
    session = MeasurementSession(scene, rng=73)
    dwatch.collect_baseline([session.capture() for _ in range(2)])
    reads = list(
        synthetic_reads(scene, SyntheticStreamConfig(fixes=fixes), rng=74)
    )
    return dwatch, reads


def stream_once(
    dwatch: DWatch,
    reads: List[TagRead],
    config: "StreamConfig | None" = None,
) -> ThroughputResult:
    """Stream one fresh runner over prepared reads and time it.

    ``config`` overrides the runner's :class:`StreamConfig` — the
    incremental-vs-full benchmark passes ``incremental=False`` to
    measure the same walk without the spectra cache.
    """
    runner = StreamRunner(dwatch, config)
    with obs.observed() as state:
        started = time.perf_counter()
        fixes = list(runner.run(iter(reads)))
        elapsed = time.perf_counter() - started
        histogram = state.registry.histogram("latency.stream.window")
        snapshot = state.registry.snapshot()
        result = ThroughputResult(
            fixes=fixes,
            reads=len(reads),
            elapsed_s=elapsed,
            p50_ms=histogram.percentile(50.0),
            p99_ms=histogram.percentile(99.0),
            window_count=histogram.count,
            stage_ms=latency_stage_stats(snapshot),
            counters={
                record["name"]: float(record["value"])
                for record in snapshot
                if record["name"].startswith("dsp.incremental.")
            },
        )
    return result


def run_stream_throughput(
    fixes: int = 6,
    num_tags: int = 10,
    num_antennas: int = 6,
) -> ThroughputResult:
    """End-to-end streaming run on the hall scene (setup + stream)."""
    dwatch, reads = build_stream_scenario(
        fixes=fixes, num_tags=num_tags, num_antennas=num_antennas
    )
    return stream_once(dwatch, reads)
