"""The controlled microbenchmark deployment of Figs. 4 and 11-13.

One tag, one array and two metal reflectors (laptops in the paper) in
an otherwise empty hall, giving exactly three propagation paths whose
blocking can be switched on and off deterministically by standing a
target on a chosen leg.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.geometry.point import Point
from repro.geometry.reflection import Reflector
from repro.geometry.segment import Segment
from repro.geometry.shapes import Rectangle
from repro.rf.array import UniformLinearArray
from repro.rf.channel import MultipathChannel
from repro.rfid.reader import Reader
from repro.rfid.tag import Tag
from repro.sim.scene import Scene
from repro.sim.target import Target, human_target
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class ControlledDeployment:
    """The three-path scene plus handles on each path."""

    scene: Scene
    reader: Reader
    tag: Tag

    def channel(self) -> MultipathChannel:
        """The tag's multipath channel (direct + two reflections)."""
        return self.scene.channels_for(self.reader)[self.tag.epc]

    def blockers_for(self, path_indices: Sequence[int]) -> List[Target]:
        """Human targets standing on the chosen paths.

        For the direct path the blocker stands mid-way; for a reflected
        path it stands on the *bounce-to-array* leg, which is the leg
        whose shadowing shows up at the path's own arrival angle.
        """
        channel = self.channel()
        blockers: List[Target] = []
        for index in path_indices:
            path = channel.paths[index]
            leg = path.legs[-1]
            blockers.append(human_target(leg.point_at(0.55)))
        return blockers


def controlled_deployment(
    tag_distance: float = 4.0,
    rng: RngLike = None,
    num_antennas: int = 8,
) -> ControlledDeployment:
    """Build the Fig. 11 layout with the tag ``tag_distance`` from the array.

    The two reflectors stay at roughly 2.0 m and 2.6 m from the array
    (the paper's dR1A / dR2A) while the tag distance sweeps 2-9 m.
    """
    generator = ensure_rng(rng)
    room = Rectangle(0.0, 0.0, 10.0, 11.0)
    midpoint = Point(5.0, 0.15)
    probe = UniformLinearArray(reference=midpoint, num_antennas=num_antennas)
    half_span = (probe.num_antennas - 1) * probe.spacing_m / 2.0
    array = UniformLinearArray(
        reference=midpoint - probe.axis * half_span,
        orientation=0.0,
        num_antennas=num_antennas,
        name="array-0",
    )
    reader = Reader(array=array, name="reader-0", rng=generator)

    tag = Tag(position=Point(5.0, 0.15 + tag_distance))
    # Two vertical metal plates flanking the tag-array axis.  For any
    # tag distance in the 2-9 m sweep the specular bounce lands between
    # y = 1 and y = 5 on each plate, all three paths always exist, the
    # bounce-to-array distances sit at the paper's ~2.6 m (dR2A), and
    # at the 4 m reference distance the reflected arrivals land near
    # 50 and 130 degrees -- the angles of the paper's Fig. 12 spectra.
    reflectors = [
        Reflector(
            plate=Segment(Point(3.32, 0.8), Point(3.32, 5.2)),
            coefficient=0.9,
            name="laptop-1",
        ),
        Reflector(
            plate=Segment(Point(6.68, 0.8), Point(6.68, 5.2)),
            coefficient=0.9,
            name="laptop-2",
        ),
    ]
    scene = Scene(
        room=room,
        readers=[reader],
        tags=[tag],
        reflectors=reflectors,
        name="controlled-hall",
    )
    return ControlledDeployment(scene=scene, reader=reader, tag=tag)
