"""Fig. 3 — random phase offsets across reader RF ports.

The paper measures the phase offsets of 16 RF ports on four Impinj
R420 readers against port 1 and finds them spread from -85.9 to +176
degrees.  This runner reproduces the characterization against the
simulated readers' power-on offsets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


from repro.constants import RF_PORTS_PER_READER
from repro.rfid.reader import random_phase_offsets
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.angles import rad2deg


@dataclass
class Fig03Result:
    """Per-port phase offsets relative to the reference port."""

    offsets_deg: List[float]

    @property
    def spread_deg(self) -> float:
        """Max minus min offset (degrees)."""
        return float(max(self.offsets_deg) - min(self.offsets_deg))

    def rows(self) -> List[str]:
        """The figure's series: one offset per RF port index."""
        lines = ["port  offset_deg"]
        lines.extend(
            f"{index:4d}  {offset:+9.1f}"
            for index, offset in enumerate(self.offsets_deg, start=1)
        )
        return lines


def run_fig03(
    num_readers: int = 4,
    ports_per_reader: int = RF_PORTS_PER_READER,
    rng: RngLike = None,
) -> Fig03Result:
    """Measure power-on phase offsets across all readers' RF ports.

    Port 1 of reader 1 is the global reference, exactly as in the
    paper's bench setup (one antenna moved across 16 ports).
    """
    generator = ensure_rng(rng)
    total_ports = num_readers * ports_per_reader
    raw = random_phase_offsets(total_ports, generator, reference_zero=True)
    return Fig03Result(offsets_deg=[float(rad2deg(v)) for v in raw])
