"""Fig. 17 — more tags: higher coverage and better accuracy (library).

Tag count sweeps 7-47 in steps of 5 in the paper; every extra tag adds
direct and reflected trip-wire paths.  Accuracy saturates — the angle
resolution of the 8-antenna arrays, not the tag budget, ends up the
limiting factor (Section 6.5's observation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.experiments.harness import localization_trial_errors
from repro.sim.environments import library_scene
from repro.utils.rng import RngLike, ensure_rng, spawn_child


@dataclass
class Fig17Result:
    """Coverage and mean error per tag count."""

    tag_counts: List[int]
    coverage: List[float]
    mean_error_cm: List[float]

    def rows(self) -> List[str]:
        """The figure's two series over the tag sweep."""
        lines = ["tags  coverage  mean_error_cm"]
        lines.extend(
            f"{count:4d}  {cov:8.0%}  {err:13.1f}"
            for count, cov, err in zip(
                self.tag_counts, self.coverage, self.mean_error_cm
            )
        )
        return lines


def run_fig17(
    tag_counts: Sequence[int] = (7, 12, 17, 22, 27, 32, 37, 42, 47),
    num_locations: int = 12,
    repeats: int = 1,
    rng: RngLike = None,
) -> Fig17Result:
    """Sweep the number of deployed tags in the library.

    One library deployment is built with the maximum tag budget; each
    sweep point uses the first K tags of it, matching how a physical
    deployment grows and keeping everything else fixed.
    """
    generator = ensure_rng(rng)
    base_scene = library_scene(
        rng=spawn_child(generator, 0), num_tags=max(tag_counts)
    )
    all_tags = list(base_scene.tags)
    result = Fig17Result([], [], [])
    for index, count in enumerate(tag_counts):
        sweep_rng = spawn_child(generator, index + 1)
        scene = base_scene.with_tags(all_tags[: int(count)])
        outcome = localization_trial_errors(
            scene, num_locations=num_locations, repeats=repeats, rng=sweep_rng
        )
        result.tag_counts.append(int(count))
        result.coverage.append(outcome.coverage)
        result.mean_error_cm.append(
            outcome.summary().mean * 100.0 if outcome.covered else float("nan")
        )
    return result
