"""Evaluation metrics shared by the experiment runners."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.stats import ErrorSummary, summarize_errors
from repro.utils.angles import rad2deg


@dataclass
class LocalizationResult:
    """Raw outcome of a batch of localization trials.

    ``errors`` holds one entry per *covered* trial (the paper's
    extended-target error, metres); ``attempted`` counts all trials so
    the coverage rate can be recovered.
    """

    attempted: int
    errors: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.attempted < len(self.errors):
            raise ConfigurationError("more errors than attempted trials")

    @property
    def covered(self) -> int:
        """Trials that produced a position estimate."""
        return len(self.errors)

    @property
    def coverage(self) -> float:
        """Fraction of trials that could be localized (Section 6.4)."""
        if self.attempted == 0:
            return 0.0
        return self.covered / self.attempted

    def summary(self) -> ErrorSummary:
        """Error statistics over the covered trials."""
        return summarize_errors(self.errors)

    def cdf_samples(self) -> np.ndarray:
        """Sorted error samples for CDF plotting."""
        return np.sort(np.asarray(self.errors, dtype=float))


def coverage_rate(localized: int, attempted: int) -> float:
    """Covered locations divided by total test locations."""
    if attempted <= 0:
        raise ConfigurationError("attempted must be positive")
    if not 0 <= localized <= attempted:
        raise ConfigurationError("localized must be within [0, attempted]")
    return localized / attempted


def detection_rate(detected: int, attempted: int) -> float:
    """Detected blocking events divided by ground-truth events."""
    return coverage_rate(detected, attempted)


def angular_error_deg(estimated_rad: float, truth_rad: float) -> float:
    """Absolute AoA error in degrees."""
    return float(rad2deg(abs(estimated_rad - truth_rad)))
