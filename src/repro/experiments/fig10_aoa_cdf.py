"""Fig. 10 — LoS AoA estimation error CDF under three calibrations.

After calibrating with (a) D-Watch's wireless method, (b) Phaser and
(c) nothing at all, the direct-path AoA of reference tags is estimated
with MUSIC and compared against geometry.  The paper reports a median
of about 2 degrees for D-Watch, worse for Phaser, and garbage without
calibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.calibration.phaser import PhaserCalibrator
from repro.calibration.wireless import (
    WirelessCalibrator,
    observation_from_snapshots,
)
from repro.dsp.music import MusicEstimator
from repro.sim.environments import calibration_scene
from repro.sim.measurement import MeasurementConfig, MeasurementSession
from repro.utils.angles import rad2deg
from repro.utils.rng import RngLike, ensure_rng, spawn_child
from repro.utils.stats import median


@dataclass
class Fig10Result:
    """AoA error samples (degrees) for the three calibration modes."""

    dwatch_errors_deg: List[float]
    phaser_errors_deg: List[float]
    uncalibrated_errors_deg: List[float]

    def medians(self) -> Dict[str, float]:
        """Median AoA error per mode."""
        return {
            "dwatch": median(self.dwatch_errors_deg),
            "phaser": median(self.phaser_errors_deg),
            "none": median(self.uncalibrated_errors_deg),
        }

    def rows(self) -> List[str]:
        """Summary rows (the CDF samples are on the result object)."""
        meds = self.medians()
        return [
            "calibration  median_aoa_error_deg",
            f"D-Watch      {meds['dwatch']:8.1f}",
            f"Phaser       {meds['phaser']:8.1f}",
            f"None         {meds['none']:8.1f}",
        ]


def _estimate_los_aoa(estimator: MusicEstimator, snapshots: np.ndarray) -> float:
    """Strongest MUSIC peak angle (the LoS-dominant arrival)."""
    peaks = estimator.estimate_aoas(snapshots, max_peaks=1)
    return peaks[0].angle if peaks else float("nan")


def run_fig10(
    trials: int = 6,
    tags_per_trial: int = 6,
    num_snapshots: int = 60,
    snr_db: float = 25.0,
    rng: RngLike = None,
) -> Fig10Result:
    """Collect AoA errors under the three calibration modes."""
    generator = ensure_rng(rng)
    result = Fig10Result([], [], [])
    for trial in range(trials):
        trial_rng = spawn_child(generator, trial)
        scene = calibration_scene(rng=trial_rng, num_tags=tags_per_trial)
        reader = scene.readers[0]
        array = reader.array
        session = MeasurementSession(
            scene,
            MeasurementConfig(num_snapshots=num_snapshots, snr_db=snr_db),
            rng=trial_rng,
        )
        capture = session.capture()
        observations, phaser_observations = [], []
        for tag in scene.tags:
            snapshots = capture.matrix(reader.name, tag.epc)
            los = array.angle_to(tag.position)
            observations.append(observation_from_snapshots(snapshots, los))
            phaser_observations.append((snapshots, los))
        wireless = WirelessCalibrator(
            spacing_m=array.spacing_m, wavelength_m=array.wavelength_m
        )
        corrections = {
            "dwatch": wireless.estimate(observations, rng=trial_rng),
            "phaser": PhaserCalibrator(
                spacing_m=array.spacing_m, wavelength_m=array.wavelength_m
            ).estimate(phaser_observations),
            "none": None,
        }
        estimator = MusicEstimator(
            spacing_m=array.spacing_m, wavelength_m=array.wavelength_m
        )
        # Fresh evaluation capture so calibration is not scored on its
        # own training data.
        evaluation = session.capture()
        for tag in scene.tags:
            snapshots = evaluation.matrix(reader.name, tag.epc)
            truth = array.angle_to(tag.position)
            for mode, offsets in corrections.items():
                corrected = (
                    offsets.apply_correction(snapshots)
                    if offsets is not None
                    else snapshots
                )
                estimate = _estimate_los_aoa(estimator, corrected)
                error = abs(float(rad2deg(estimate - truth)))
                bucket = {
                    "dwatch": result.dwatch_errors_deg,
                    "phaser": result.phaser_errors_deg,
                    "none": result.uncalibrated_errors_deg,
                }[mode]
                bucket.append(error)
    return result
