"""Fig. 12 — P-MUSIC spectra before and after blocking paths.

The counterpart of Fig. 4 with the proposed estimator: when one path is
blocked only that path's P-MUSIC peak collapses; when all three paths
are blocked every peak collapses.  The runner reports per-path relative
power drops for both cases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


from repro.dsp.pmusic import PMusicEstimator
from repro.experiments.controlled import controlled_deployment
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.angles import deg2rad, rad2deg


@dataclass
class Fig12Result:
    """Per-path P-MUSIC power drops under blocking."""

    path_angles_deg: List[float]
    one_blocked_drop: List[float]
    all_blocked_drop: List[float]
    blocked_index: int

    def rows(self) -> List[str]:
        """Relative P-MUSIC power drop at each path angle."""
        lines = ["path_deg  one_blocked_drop  all_blocked_drop"]
        for index, (angle, one, all_) in enumerate(
            zip(self.path_angles_deg, self.one_blocked_drop, self.all_blocked_drop)
        ):
            marker = " <- blocked" if index == self.blocked_index else ""
            lines.append(f"{angle:8.1f}  {one:16.2f}  {all_:16.2f}{marker}")
        return lines


def run_fig12(
    num_snapshots: int = 40,
    snr_db: float = 25.0,
    rng: RngLike = None,
) -> Fig12Result:
    """Reproduce the P-MUSIC spectrum-change microbenchmark."""
    generator = ensure_rng(rng)
    deployment = controlled_deployment(tag_distance=4.0, rng=generator)
    channel = deployment.channel()
    estimator = PMusicEstimator(
        spacing_m=deployment.reader.array.spacing_m,
        wavelength_m=deployment.reader.array.wavelength_m,
    )

    def spectrum(targets):
        shadowed = channel.with_targets([t.body() for t in targets])
        snapshots = shadowed.snapshots(num_snapshots, snr_db=snr_db, rng=generator)
        return estimator.spectrum(snapshots)

    baseline = spectrum([])
    blocked_path = 0
    one = spectrum(deployment.blockers_for([blocked_path]))
    everything = spectrum(deployment.blockers_for(range(channel.num_paths)))

    angles = [path.aoa for path in channel.paths]

    window = float(deg2rad(2.5))

    def drops(after):
        result = []
        for angle in angles:
            base = baseline.max_in_window(angle, window)
            if base <= 0.0:
                result.append(0.0)
                continue
            online = after.max_in_window(angle, window)
            result.append(max(0.0, (base - online) / base))
        return result

    return Fig12Result(
        path_angles_deg=[float(rad2deg(a)) for a in angles],
        one_blocked_drop=drops(one),
        all_blocked_drop=drops(everything),
        blocked_index=blocked_path,
    )
