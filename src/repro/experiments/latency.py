"""Section 8 — processing latency of one localization fix.

The paper measures 57 ms average processing time per fix on an i7-4790
and a sub-0.5 s end-to-end latency including the 0.1 s transmission
interval.  The runner times the server-side pipeline (spectra +
detection + likelihood search) over repeated fixes, and additionally
breaks the total down per pipeline stage using the observability
layer's spans: the fix loop runs inside :func:`repro.obs.observed`, so
every instrumented stage (``pipeline.evidence``, ``grid.search``,
``music.eigendecomposition``, ...) reports its own latency histogram.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro import obs
from repro.experiments.harness import DeploymentHarness
from repro.geometry.point import Point
from repro.sim.environments import hall_scene
from repro.sim.target import human_target
from repro.obs.metrics import latency_stage_stats
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class LatencyResult:
    """Per-fix processing times plus a per-stage breakdown.

    ``stage_ms`` maps span names (``pipeline.localize``,
    ``grid.search``, ...) to their latency statistics over the run:
    ``{"count": ..., "mean": ..., "p90": ..., "max": ...}`` in
    milliseconds.
    """

    times_s: List[float]
    stage_ms: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def mean_ms(self) -> float:
        """Mean processing time in milliseconds."""
        return float(np.mean(self.times_s) * 1e3)

    def rows(self) -> List[str]:
        """Summary rows: the headline figures, then the stage table."""
        rows = [
            "metric            value",
            f"mean_fix_ms       {self.mean_ms:8.1f}",
            f"p95_fix_ms        {float(np.percentile(self.times_s, 95)) * 1e3:8.1f}",
        ]
        if self.stage_ms:
            width = max(len(name) for name in self.stage_ms)
            rows.append("")
            rows.append(
                f"{'stage':<{width}}  {'count':>6} {'mean_ms':>9} "
                f"{'p90_ms':>9} {'max_ms':>9}"
            )
            for name in sorted(self.stage_ms):
                stats = self.stage_ms[name]
                rows.append(
                    f"{name:<{width}}  "
                    f"{int(stats['count']):>6} "
                    f"{stats['mean']:>9.2f} "
                    f"{stats['p90']:>9.2f} "
                    f"{stats['max']:>9.2f}"
                )
        return rows


def run_latency(
    fixes: int = 10,
    rng: RngLike = None,
) -> LatencyResult:
    """Time the localization pipeline over repeated fixes.

    Only the online fix loop runs under observability, so the stage
    breakdown reflects steady-state serving cost, not the one-off
    calibration and baseline setup.  (While the loop runs, metrics
    flow into the run's private registry; a globally configured
    ``--metrics`` registry resumes afterwards.)
    """
    generator = ensure_rng(rng)
    scene = hall_scene(rng=generator)
    harness = DeploymentHarness(scene, rng=generator)
    target = human_target(Point(scene.room.center.x, scene.room.center.y))
    times: List[float] = []
    with obs.observed() as state:
        for _ in range(fixes):
            capture = harness.session.capture([target])
            start = time.perf_counter()
            harness.dwatch.localize(capture)
            times.append(time.perf_counter() - start)
        stage_ms = latency_stage_stats(state.registry.snapshot())
    return LatencyResult(times_s=times, stage_ms=stage_ms)
