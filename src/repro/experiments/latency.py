"""Section 8 — processing latency of one localization fix.

The paper measures 57 ms average processing time per fix on an i7-4790
and a sub-0.5 s end-to-end latency including the 0.1 s transmission
interval.  The runner times the server-side pipeline (spectra +
detection + likelihood search) over repeated fixes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.experiments.harness import DeploymentHarness
from repro.geometry.point import Point
from repro.sim.environments import hall_scene
from repro.sim.target import human_target
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class LatencyResult:
    """Per-fix processing times."""

    times_s: List[float]

    @property
    def mean_ms(self) -> float:
        """Mean processing time in milliseconds."""
        return float(np.mean(self.times_s) * 1e3)

    def rows(self) -> List[str]:
        """Summary row."""
        return [
            "metric            value",
            f"mean_fix_ms       {self.mean_ms:8.1f}",
            f"p95_fix_ms        {float(np.percentile(self.times_s, 95)) * 1e3:8.1f}",
        ]


def run_latency(
    fixes: int = 10,
    rng: RngLike = None,
) -> LatencyResult:
    """Time the localization pipeline over repeated fixes."""
    generator = ensure_rng(rng)
    scene = hall_scene(rng=generator)
    harness = DeploymentHarness(scene, rng=generator)
    target = human_target(Point(scene.room.center.x, scene.room.center.y))
    times: List[float] = []
    for _ in range(fixes):
        capture = harness.session.capture([target])
        start = time.perf_counter()
        harness.dwatch.localize(capture)
        times.append(time.perf_counter() - start)
    return LatencyResult(times_s=times)
