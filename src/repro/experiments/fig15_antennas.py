"""Fig. 15 — localization error vs number of antennas per array.

Fewer antennas mean coarser AoA resolution and fewer resolvable paths;
the paper's library numbers fall from 54.3 cm (4 antennas) through
35.6 cm (6) to 17.6 cm (8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.experiments.harness import localization_trial_errors
from repro.sim.environments import hall_scene, laboratory_scene, library_scene
from repro.utils.rng import RngLike, ensure_rng, spawn_child


@dataclass
class Fig15Result:
    """Mean error per (environment, antenna count)."""

    antenna_counts: List[int]
    mean_error_cm: Dict[str, List[float]]
    coverage: Dict[str, List[float]]

    def rows(self) -> List[str]:
        """One row per environment, one column per antenna count."""
        header = "environment  " + "  ".join(
            f"{m}ant_mean_cm" for m in self.antenna_counts
        )
        lines = [header]
        for name, series in self.mean_error_cm.items():
            cells = "  ".join(f"{value:11.1f}" for value in series)
            lines.append(f"{name:11s}  {cells}")
        return lines


def run_fig15(
    antenna_counts: Sequence[int] = (4, 6, 8),
    environments: Sequence[str] = ("library", "laboratory", "hall"),
    num_locations: int = 12,
    repeats: int = 1,
    rng: RngLike = None,
) -> Fig15Result:
    """Sweep the per-array antenna count in each environment."""
    makers: Dict[str, Callable] = {
        "library": library_scene,
        "laboratory": laboratory_scene,
        "hall": hall_scene,
    }
    generator = ensure_rng(rng)
    result = Fig15Result(
        antenna_counts=list(antenna_counts),
        mean_error_cm={name: [] for name in environments},
        coverage={name: [] for name in environments},
    )
    for env_index, name in enumerate(environments):
        for count_index, num_antennas in enumerate(antenna_counts):
            sweep_rng = spawn_child(generator, env_index * 100 + count_index)
            scene = makers[name](rng=sweep_rng, num_antennas=num_antennas)
            outcome = localization_trial_errors(
                scene,
                num_locations=num_locations,
                repeats=repeats,
                rng=sweep_rng,
            )
            if outcome.covered:
                result.mean_error_cm[name].append(outcome.summary().mean * 100.0)
            else:
                result.mean_error_cm[name].append(float("nan"))
            result.coverage[name].append(outcome.coverage)
    return result
