"""Fig. 9 — phase calibration error vs number of reference tags.

D-Watch's subspace calibration against the Phaser baseline, scored
against the wired (ArrayTrack-style) ground truth.  The paper's shape:
D-Watch drops below 0.05 rad once four or more tags are used; Phaser
stays flat and coarse because its single-reference design cannot
exploit extra tags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.calibration.offsets import PhaseOffsets, offset_error
from repro.calibration.phaser import PhaserCalibrator
from repro.calibration.wireless import (
    WirelessCalibrator,
    observation_from_snapshots,
)
from repro.sim.environments import calibration_scene
from repro.sim.measurement import MeasurementConfig, MeasurementSession
from repro.utils.rng import RngLike, ensure_rng, spawn_child


@dataclass
class Fig09Result:
    """Mean absolute phase error per tag count for both methods."""

    num_tags: List[int]
    dwatch_error_rad: List[float]
    phaser_error_rad: List[float]

    def rows(self) -> List[str]:
        """The figure's two series."""
        lines = ["tags  dwatch_rad  phaser_rad"]
        lines.extend(
            f"{n:4d}  {dw:10.3f}  {ph:10.3f}"
            for n, dw, ph in zip(
                self.num_tags, self.dwatch_error_rad, self.phaser_error_rad
            )
        )
        return lines


def run_fig09(
    tag_counts: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
    trials: int = 3,
    num_snapshots: int = 60,
    snr_db: float = 25.0,
    rng: RngLike = None,
) -> Fig09Result:
    """Sweep the number of calibration tags.

    Each trial deploys ``max(tag_counts)`` tags once; the K-tag
    configuration uses the first K of them, exactly as one would grow a
    physical deployment.  This keeps the sweep's only moving variable
    the tag count rather than re-rolled geometry.
    """
    generator = ensure_rng(rng)
    max_tags = max(tag_counts)
    dwatch_errors = {count: [] for count in tag_counts}
    phaser_errors = {count: [] for count in tag_counts}
    for trial in range(trials):
        trial_rng = spawn_child(generator, trial)
        scene = calibration_scene(rng=trial_rng, num_tags=max_tags)
        reader = scene.readers[0]
        truth = PhaseOffsets.referenced(np.asarray(reader.phase_offsets))
        session = MeasurementSession(
            scene,
            MeasurementConfig(num_snapshots=num_snapshots, snr_db=snr_db),
            rng=trial_rng,
        )
        capture = session.capture()
        observations, phaser_observations = [], []
        for tag in scene.tags:
            snapshots = capture.matrix(reader.name, tag.epc)
            los = reader.array.angle_to(tag.position)
            observations.append(observation_from_snapshots(snapshots, los))
            phaser_observations.append((snapshots, los))
        wireless = WirelessCalibrator(
            spacing_m=reader.array.spacing_m,
            wavelength_m=reader.array.wavelength_m,
        )
        phaser = PhaserCalibrator(
            spacing_m=reader.array.spacing_m,
            wavelength_m=reader.array.wavelength_m,
        )
        for count in tag_counts:
            dwatch_errors[count].append(
                offset_error(
                    wireless.estimate(observations[:count], rng=trial_rng), truth
                )
            )
            phaser_errors[count].append(
                offset_error(phaser.estimate(phaser_observations[:count]), truth)
            )
    result = Fig09Result([], [], [])
    for count in tag_counts:
        result.num_tags.append(int(count))
        result.dwatch_error_rad.append(float(np.mean(dwatch_errors[count])))
        result.phaser_error_rad.append(float(np.mean(phaser_errors[count])))
    return result
