"""Figs. 21-22 — passively tracking a fist writing in the air.

A user writes "P" and "O" over the 2 m x 2 m table at ~0.5 m/s; the
system takes a fix every 0.1 s and the Kalman tracker smooths the
trajectory.  The paper's median tracking error is 5.8 cm with 26 tags
and 9.7 cm with 13.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


from repro.constants import TABLE_GRID_CELL_M
from repro.core.tracker import KalmanTracker
from repro.experiments.harness import DeploymentHarness
from repro.geometry.point import Point
from repro.sim.environments import table_scene
from repro.sim.target import fist_target
from repro.utils.rng import RngLike, ensure_rng, spawn_child
from repro.utils.stats import median


def letter_waypoints(letter: str, center: Point, scale: float = 0.5) -> List[Point]:
    """Waypoints of a block letter traced at ``scale`` metres tall."""
    shapes: Dict[str, List[Tuple[float, float]]] = {
        # Normalized strokes in [-0.5, 0.5]^2, pen-down throughout.
        "P": [(-0.3, -0.5), (-0.3, 0.5), (0.2, 0.5), (0.35, 0.35),
              (0.35, 0.15), (0.2, 0.0), (-0.3, 0.0)],
        "O": [(0.35, 0.0), (0.25, 0.35), (0.0, 0.5), (-0.25, 0.35),
              (-0.35, 0.0), (-0.25, -0.35), (0.0, -0.5), (0.25, -0.35),
              (0.35, 0.0)],
        "D": [(-0.3, -0.5), (-0.3, 0.5), (0.1, 0.5), (0.3, 0.3),
              (0.35, 0.0), (0.3, -0.3), (0.1, -0.5), (-0.3, -0.5)],
        "W": [(-0.4, 0.5), (-0.2, -0.5), (0.0, 0.2), (0.2, -0.5),
              (0.4, 0.5)],
        "L": [(-0.25, 0.5), (-0.25, -0.5), (0.3, -0.5)],
        "C": [(0.3, 0.35), (0.1, 0.5), (-0.2, 0.4), (-0.35, 0.0),
              (-0.2, -0.4), (0.1, -0.5), (0.3, -0.35)],
    }
    if letter not in shapes:
        raise ValueError(f"no waypoint table for letter {letter!r}")
    return [
        Point(center.x + x * scale, center.y + y * scale)
        for x, y in shapes[letter]
    ]


def interpolate_trajectory(
    waypoints: Sequence[Point], speed_mps: float = 0.5, dt: float = 0.1
) -> List[Point]:
    """Resample a waypoint polyline at constant speed."""
    if len(waypoints) < 2:
        raise ValueError("a trajectory needs at least two waypoints")
    points: List[Point] = []
    step = speed_mps * dt
    for start, end in zip(waypoints, waypoints[1:]):
        length = start.distance_to(end)
        count = max(1, int(math.ceil(length / step)))
        for i in range(count):
            t = i / count
            points.append(start + (end - start) * t)
    points.append(waypoints[-1])
    return points


@dataclass
class Fig21Result:
    """Tracking errors for each tag budget."""

    tag_counts: List[int]
    median_error_cm: List[float]
    coverage: List[float]

    def rows(self) -> List[str]:
        """Median tracking error per tag budget (Fig. 22's series)."""
        lines = ["tags  median_error_cm  fix_rate"]
        lines.extend(
            f"{count:4d}  {err:15.1f}  {cov:8.0%}"
            for count, err, cov in zip(
                self.tag_counts, self.median_error_cm, self.coverage
            )
        )
        return lines


def run_fig21(
    tag_counts: Sequence[int] = (26, 13),
    letters: Sequence[str] = ("P", "O"),
    rng: RngLike = None,
) -> Fig21Result:
    """Track fist-writing trajectories for each tag budget."""
    generator = ensure_rng(rng)
    result = Fig21Result([], [], [])
    for index, count in enumerate(tag_counts):
        sweep_rng = spawn_child(generator, index)
        scene = table_scene(rng=sweep_rng, num_tags=count)
        harness = DeploymentHarness(
            scene, cell_size=TABLE_GRID_CELL_M, rng=sweep_rng
        )
        tracker = KalmanTracker(process_noise=2.0, measurement_noise=0.05)
        errors: List[float] = []
        fixes = 0
        attempts = 0
        for letter in letters:
            waypoints = letter_waypoints(letter, scene.room.center)
            trajectory = interpolate_trajectory(waypoints)
            tracker.reset()
            for step, true_position in enumerate(trajectory):
                attempts += 1
                fist = fist_target(true_position)
                fix = harness.localize_target(fist)
                if fix is not None:
                    fixes += 1
                if not tracker.initialized and fix is None:
                    continue
                track_point = tracker.update(step * 0.1, fix)
                # Trajectory tracking is scored as raw point-to-point
                # distance (Fig. 22), not the extended-target metric —
                # a fist-sized tolerance would swallow the interesting
                # centimetre-scale differences.
                errors.append(track_point.position.distance_to(true_position))
        result.tag_counts.append(int(count))
        result.median_error_cm.append(
            median(errors) * 100.0 if errors else float("nan")
        )
        result.coverage.append(fixes / attempts if attempts else 0.0)
    return result
