"""Fig. 4 — classic MUSIC's peak amplitudes do not track path power.

In the controlled three-path deployment a target blocks one path, then
all three.  With classic MUSIC the blocked path's peak change is
erratic and *unblocked* peaks change too; with all paths blocked the
spectrum barely moves.  The runner quantifies the per-peak relative
amplitude change under both conditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.dsp.music import MusicEstimator
from repro.dsp.peaks import find_spectrum_peaks
from repro.experiments.controlled import controlled_deployment
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.angles import rad2deg


@dataclass
class Fig04Result:
    """Per-peak MUSIC amplitude changes for the two blocking cases."""

    peak_angles_deg: List[float]
    one_blocked_change: List[float]
    all_blocked_change: List[float]
    blocked_index: int

    def rows(self) -> List[str]:
        """Relative change of each MUSIC peak, one row per peak."""
        lines = ["peak_deg  one_blocked_rel_change  all_blocked_rel_change"]
        for angle, one, all_ in zip(
            self.peak_angles_deg, self.one_blocked_change, self.all_blocked_change
        ):
            marker = " <- blocked" if (
                self.peak_angles_deg.index(angle) == self.blocked_index
            ) else ""
            lines.append(f"{angle:8.1f}  {one:+22.2f}  {all_:+22.2f}{marker}")
        return lines

    @property
    def unblocked_leakage(self) -> float:
        """Largest relative change seen on an *unblocked* peak in the
        one-blocked case — nonzero leakage is MUSIC's failure mode."""
        others = [
            abs(change)
            for index, change in enumerate(self.one_blocked_change)
            if index != self.blocked_index
        ]
        return max(others) if others else 0.0


def run_fig04(
    num_snapshots: int = 40,
    snr_db: float = 25.0,
    rng: RngLike = None,
) -> Fig04Result:
    """Reproduce the MUSIC-limitation microbenchmark."""
    generator = ensure_rng(rng)
    deployment = controlled_deployment(tag_distance=4.0, rng=generator)
    channel = deployment.channel()
    estimator = MusicEstimator(
        spacing_m=deployment.reader.array.spacing_m,
        wavelength_m=deployment.reader.array.wavelength_m,
    )

    def music_spectrum(targets):
        shadowed = channel.with_targets([t.body() for t in targets])
        snapshots = shadowed.snapshots(num_snapshots, snr_db=snr_db, rng=generator)
        return estimator.spectrum(snapshots).normalized()

    baseline = music_spectrum([])
    blocked_path = 0  # the direct path
    one = music_spectrum(deployment.blockers_for([blocked_path]))
    everything = music_spectrum(deployment.blockers_for(range(channel.num_paths)))

    peaks = sorted(find_spectrum_peaks(baseline), key=lambda p: p.angle)
    angles = [float(rad2deg(p.angle)) for p in peaks]
    direct_aoa = channel.paths[blocked_path].aoa
    blocked_index = int(
        np.argmin([abs(p.angle - direct_aoa) for p in peaks])
    )

    def changes(spectrum):
        return [
            (spectrum.value_at(p.angle) - p.value) / p.value for p in peaks
        ]

    return Fig04Result(
        peak_angles_deg=angles,
        one_blocked_change=changes(one),
        all_blocked_change=changes(everything),
        blocked_index=blocked_index,
    )
