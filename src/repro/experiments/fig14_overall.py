"""Fig. 14 — overall human-localization accuracy per environment.

The headline experiment: median / mean / CDF of the extended-target
localization error for a human in the library, laboratory and hall.
The paper reports medians of 16.5 / 25.3 / 32.1 cm and means of
17.6 / 25.8 / 31.2 cm — decimeter accuracy, best in the *richest*
multipath environment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.experiments.harness import localization_trial_errors
from repro.experiments.metrics import LocalizationResult
from repro.sim.environments import hall_scene, laboratory_scene, library_scene
from repro.utils.rng import RngLike, ensure_rng, spawn_child

ENVIRONMENTS: Dict[str, Callable] = {
    "library": library_scene,
    "laboratory": laboratory_scene,
    "hall": hall_scene,
}


@dataclass
class Fig14Result:
    """Per-environment localization results."""

    results: Dict[str, LocalizationResult]

    def rows(self) -> List[str]:
        """Median / mean / p90 / coverage per environment."""
        lines = ["environment  median_cm  mean_cm  p90_cm  coverage"]
        for name, result in self.results.items():
            if result.covered:
                summary = result.summary()
                lines.append(
                    f"{name:11s}  {summary.median * 100:9.1f}  "
                    f"{summary.mean * 100:7.1f}  {summary.p90 * 100:6.1f}  "
                    f"{result.coverage:8.0%}"
                )
            else:
                lines.append(f"{name:11s}  (no covered locations)")
        return lines


def run_fig14(
    num_locations: int = 20,
    repeats: int = 2,
    rng: RngLike = None,
) -> Fig14Result:
    """Run the overall localization evaluation in all three rooms.

    The paper uses 66 / 63 / 75 grid locations with 40 repeats; pass
    larger knobs to approach that scale.
    """
    generator = ensure_rng(rng)
    results: Dict[str, LocalizationResult] = {}
    for index, (name, maker) in enumerate(ENVIRONMENTS.items()):
        env_rng = spawn_child(generator, index)
        scene = maker(rng=env_rng)
        results[name] = localization_trial_errors(
            scene,
            num_locations=num_locations,
            repeats=repeats,
            rng=env_rng,
        )
    return Fig14Result(results=results)
