"""Fig. 13 — target detection rate: P-MUSIC vs classic MUSIC.

In the controlled deployment the tag-array distance sweeps 2-8 m.  For
each distance, trials block (a) one path and (b) all three paths; a
trial counts as *detected* when every truly blocked path shows a
spectral drop beyond the detection threshold at its angle and no
unblocked path does.  The paper finds P-MUSIC near 100 % while classic
MUSIC is poor and collapses entirely in the all-blocked case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


from repro.dsp.music import MusicEstimator
from repro.dsp.pmusic import PMusicEstimator
from repro.experiments.controlled import controlled_deployment
from repro.utils.rng import RngLike, ensure_rng, spawn_child
from repro.utils.angles import deg2rad

#: Relative drop beyond which a path counts as detected (matches the
#: localization detector's default).
DETECTION_THRESHOLD = 0.5


@dataclass
class Fig13Result:
    """Detection rates per distance, algorithm and blocking case."""

    distances_m: List[float]
    pmusic_one: List[float]
    music_one: List[float]
    pmusic_all: List[float]
    music_all: List[float]

    def rows(self) -> List[str]:
        """The figure's bar groups, one row per tag-array distance."""
        lines = ["dist_m  P-MUSIC(one)  MUSIC(one)  P-MUSIC(all)  MUSIC(all)"]
        lines.extend(
            f"{dist:6.1f}  {self.pmusic_one[i]:12.0%}  {self.music_one[i]:10.0%}"
            f"  {self.pmusic_all[i]:12.0%}  {self.music_all[i]:10.0%}"
            for i, dist in enumerate(self.distances_m)
        )
        return lines


def _trial_detected(
    spectrum_baseline,
    spectrum_online,
    path_angles: Sequence[float],
    blocked: Sequence[int],
) -> bool:
    """Strict per-path detection: all blocked drop, none unblocked does."""
    window = deg2rad(2.5)
    for index, angle in enumerate(path_angles):
        base = spectrum_baseline.max_in_window(angle, window)
        if base <= 0.0:
            return False
        drop = (base - spectrum_online.max_in_window(angle, window)) / base
        if index in blocked and drop < DETECTION_THRESHOLD:
            return False
        if index not in blocked and drop >= DETECTION_THRESHOLD:
            return False
    return True


def run_fig13(
    distances_m: Sequence[float] = (2.0, 4.0, 6.0, 8.0),
    trials: int = 10,
    num_snapshots: int = 40,
    snr_db: float = 25.0,
    rng: RngLike = None,
) -> Fig13Result:
    """Sweep tag-array distance and measure detection rates."""
    generator = ensure_rng(rng)
    result = Fig13Result([], [], [], [], [])
    for distance in distances_m:
        counts = {"p_one": 0, "m_one": 0, "p_all": 0, "m_all": 0}
        for trial in range(trials):
            trial_rng = spawn_child(generator, hash((round(distance * 10), trial)) % 10_000)
            deployment = controlled_deployment(tag_distance=distance, rng=trial_rng)
            channel = deployment.channel()
            angles = [path.aoa for path in channel.paths]
            array = deployment.reader.array
            pmusic = PMusicEstimator(
                spacing_m=array.spacing_m, wavelength_m=array.wavelength_m
            )
            music = MusicEstimator(
                spacing_m=array.spacing_m, wavelength_m=array.wavelength_m
            )

            def capture(targets):
                shadowed = channel.with_targets([t.body() for t in targets])
                return shadowed.snapshots(
                    num_snapshots, snr_db=snr_db, rng=trial_rng
                )

            x_base = capture([])
            x_one = capture(deployment.blockers_for([0]))
            x_all = capture(deployment.blockers_for(range(channel.num_paths)))

            p_base = pmusic.spectrum(x_base)
            m_base = music.spectrum(x_base).normalized()
            if _trial_detected(p_base, pmusic.spectrum(x_one), angles, [0]):
                counts["p_one"] += 1
            if _trial_detected(
                m_base, music.spectrum(x_one).normalized(), angles, [0]
            ):
                counts["m_one"] += 1
            everything = list(range(channel.num_paths))
            if _trial_detected(p_base, pmusic.spectrum(x_all), angles, everything):
                counts["p_all"] += 1
            if _trial_detected(
                m_base, music.spectrum(x_all).normalized(), angles, everything
            ):
                counts["m_all"] += 1

        result.distances_m.append(float(distance))
        result.pmusic_one.append(counts["p_one"] / trials)
        result.music_one.append(counts["m_one"] / trials)
        result.pmusic_all.append(counts["p_all"] / trials)
        result.music_all.append(counts["m_all"] / trials)
    return result
