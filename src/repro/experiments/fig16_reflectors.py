"""Fig. 16 — more reflectors: higher coverage, lower error (hall).

The paper plants up to 12 extra reflectors in the empty hall; coverage
rises sharply (more "trip-wire" paths cross the area) and the mean
error falls from 31.2 cm to 20.8 cm.  This is the direct demonstration
of the thesis: "bad" multipaths help.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.experiments.harness import localization_trial_errors
from repro.sim.environments import hall_scene
from repro.utils.rng import RngLike, ensure_rng, spawn_child


@dataclass
class Fig16Result:
    """Coverage and mean error per reflector count."""

    reflector_counts: List[int]
    coverage: List[float]
    mean_error_cm: List[float]

    def rows(self) -> List[str]:
        """The figure's two series over the reflector sweep."""
        lines = ["reflectors  coverage  mean_error_cm"]
        lines.extend(
            f"{count:10d}  {cov:8.0%}  {err:13.1f}"
            for count, cov, err in zip(
                self.reflector_counts, self.coverage, self.mean_error_cm
            )
        )
        return lines


def run_fig16(
    reflector_counts: Sequence[int] = (0, 2, 4, 6, 8, 10, 12),
    num_locations: int = 12,
    repeats: int = 1,
    rng: RngLike = None,
) -> Fig16Result:
    """Sweep the number of planted reflectors in the hall.

    One hall deployment (readers + tags) is built once; each sweep
    point *adds* reflectors to it, exactly as the paper's experimenters
    carried more laptops into the same room.  Re-rolling the whole
    scene per point would bury the reflector effect under tag-placement
    variance.
    """
    generator = ensure_rng(rng)
    base_scene = hall_scene(
        rng=spawn_child(generator, 0), num_reflectors=max(reflector_counts)
    )
    all_reflectors = list(base_scene.reflectors)
    result = Fig16Result([], [], [])
    for index, count in enumerate(reflector_counts):
        sweep_rng = spawn_child(generator, index + 1)
        scene = base_scene.with_reflectors(all_reflectors[: int(count)])
        outcome = localization_trial_errors(
            scene, num_locations=num_locations, repeats=repeats, rng=sweep_rng
        )
        result.reflector_counts.append(int(count))
        result.coverage.append(outcome.coverage)
        result.mean_error_cm.append(
            outcome.summary().mean * 100.0 if outcome.covered else float("nan")
        )
    return result
