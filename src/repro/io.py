"""Deployment persistence: scenes and calibrations to/from JSON.

A real installation carries its deployment in a config file — reader
positions, tag inventory, furniture map — and caches the per-power-cycle
calibration.  This module round-trips both through plain JSON with no
third-party dependencies.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from repro.calibration.offsets import PhaseOffsets
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.reflection import Reflector
from repro.geometry.segment import Segment
from repro.geometry.shapes import Rectangle
from repro.rf.array import UniformLinearArray
from repro.rfid.reader import Reader
from repro.rfid.tag import Tag
from repro.sim.scene import Scene

#: Format marker so future revisions can migrate old files.
SCHEMA_VERSION = 1

PathLike = Union[str, Path]


def _point_to_list(point: Point) -> list:
    return [point.x, point.y]


def _point_from_list(data) -> Point:
    return Point(float(data[0]), float(data[1]))


def scene_to_dict(scene: Scene) -> Dict[str, Any]:
    """Serialize a scene (geometry and configuration, not RF state).

    Reader phase offsets are *included*: they are the power-on state a
    saved deployment should reproduce exactly.
    """
    return {
        "schema": SCHEMA_VERSION,
        "name": scene.name,
        "frequency_hz": scene.frequency_hz,
        "array_height_m": scene.array_height_m,
        "blocking_attenuation": scene.blocking_attenuation,
        "room": [scene.room.min_x, scene.room.min_y, scene.room.max_x, scene.room.max_y],
        "readers": [
            {
                "name": reader.name,
                "max_range_m": reader.max_range_m,
                "num_rf_ports": reader.num_rf_ports,
                "phase_offsets": [float(v) for v in reader.phase_offsets],
                "array": {
                    "reference": _point_to_list(reader.array.reference),
                    "orientation": reader.array.orientation,
                    "num_antennas": reader.array.num_antennas,
                    "spacing_m": reader.array.spacing_m,
                    "wavelength_m": reader.array.wavelength_m,
                    "name": reader.array.name,
                },
            }
            for reader in scene.readers
        ],
        "tags": [
            {
                "epc": tag.epc,
                "position": _point_to_list(tag.position),
                "height_m": tag.height_m,
                "backscatter_gain": [
                    tag.backscatter_gain.real
                    if isinstance(tag.backscatter_gain, complex)
                    else float(tag.backscatter_gain),
                    tag.backscatter_gain.imag
                    if isinstance(tag.backscatter_gain, complex)
                    else 0.0,
                ],
            }
            for tag in scene.tags
        ],
        "reflectors": [
            {
                "name": reflector.name,
                "coefficient": reflector.coefficient,
                "phase_shift": reflector.phase_shift,
                "start": _point_to_list(reflector.plate.start),
                "end": _point_to_list(reflector.plate.end),
            }
            for reflector in scene.reflectors
        ],
    }


def scene_from_dict(data: Dict[str, Any]) -> Scene:
    """Rebuild a scene from :func:`scene_to_dict` output.

    Raises
    ------
    ConfigurationError
        On a missing/unsupported schema marker or malformed sections.
    """
    if data.get("schema") != SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported scene schema {data.get('schema')!r}"
        )
    try:
        room = Rectangle(*[float(v) for v in data["room"]])
        readers = []
        for entry in data["readers"]:
            array_data = entry["array"]
            array = UniformLinearArray(
                reference=_point_from_list(array_data["reference"]),
                orientation=float(array_data["orientation"]),
                num_antennas=int(array_data["num_antennas"]),
                spacing_m=float(array_data["spacing_m"]),
                wavelength_m=float(array_data["wavelength_m"]),
                name=array_data.get("name", "array"),
            )
            readers.append(
                Reader(
                    array=array,
                    name=entry["name"],
                    phase_offsets=np.asarray(entry["phase_offsets"], dtype=float),
                    num_rf_ports=int(entry.get("num_rf_ports", 4)),
                    max_range_m=float(entry.get("max_range_m", 12.0)),
                )
            )
        tags = [
            Tag(
                position=_point_from_list(entry["position"]),
                epc=entry["epc"],
                backscatter_gain=complex(*entry["backscatter_gain"]),
                height_m=float(entry.get("height_m", 1.25)),
            )
            for entry in data["tags"]
        ]
        reflectors = [
            Reflector(
                plate=Segment(
                    _point_from_list(entry["start"]),
                    _point_from_list(entry["end"]),
                ),
                coefficient=float(entry["coefficient"]),
                phase_shift=float(entry.get("phase_shift", np.pi)),
                name=entry.get("name", "reflector"),
            )
            for entry in data["reflectors"]
        ]
    except (KeyError, TypeError, IndexError) as exc:
        raise ConfigurationError(f"malformed scene data: {exc}") from exc
    return Scene(
        room=room,
        readers=readers,
        tags=tags,
        reflectors=reflectors,
        frequency_hz=float(data.get("frequency_hz", 922.5e6)),
        array_height_m=float(data.get("array_height_m", 1.25)),
        blocking_attenuation=float(data.get("blocking_attenuation", 0.14)),
        name=data.get("name", "scene"),
    )


def save_scene(scene: Scene, path: PathLike) -> None:
    """Write a scene to a JSON file."""
    Path(path).write_text(json.dumps(scene_to_dict(scene), indent=2))


def load_scene(path: PathLike) -> Scene:
    """Read a scene from a JSON file."""
    return scene_from_dict(json.loads(Path(path).read_text()))


def calibration_to_dict(calibration: Dict[str, PhaseOffsets]) -> Dict[str, Any]:
    """Serialize per-reader phase-offset estimates."""
    return {
        "schema": SCHEMA_VERSION,
        "offsets": {
            name: [float(v) for v in offsets.values]
            for name, offsets in calibration.items()
        },
    }


def calibration_from_dict(data: Dict[str, Any]) -> Dict[str, PhaseOffsets]:
    """Rebuild per-reader offsets from :func:`calibration_to_dict`."""
    if data.get("schema") != SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported calibration schema {data.get('schema')!r}"
        )
    return {
        name: PhaseOffsets(np.asarray(values, dtype=float))
        for name, values in data["offsets"].items()
    }


def save_calibration(calibration: Dict[str, PhaseOffsets], path: PathLike) -> None:
    """Write a calibration to a JSON file."""
    Path(path).write_text(json.dumps(calibration_to_dict(calibration), indent=2))


def load_calibration(path: PathLike) -> Dict[str, PhaseOffsets]:
    """Read a calibration from a JSON file."""
    return calibration_from_dict(json.loads(Path(path).read_text()))
