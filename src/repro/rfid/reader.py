"""RFID reader model (Impinj Speedway R420 class).

A reader owns up to four RF ports.  Each antenna chain behind a port has
a random oscillator phase offset (the paper measures -85.9 to +176
degrees across 16 ports, Fig. 3); until calibrated, these offsets
corrupt every per-antenna phase measurement.  One port drives the
antenna hub that carries the whole array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.constants import RF_PORTS_PER_READER
from repro.errors import ConfigurationError
from repro.rf.array import UniformLinearArray
from repro.rfid.hub import AntennaHub
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class RfPort:
    """One RF port with its front-end phase offset (radians)."""

    index: int
    phase_offset: float


def random_phase_offsets(
    num_antennas: int, rng: RngLike = None, reference_zero: bool = True
) -> np.ndarray:
    """Random per-antenna-chain phase offsets, uniform over ``(-pi, pi]``.

    With ``reference_zero`` the first chain is the phase reference
    (offset 0), matching how the paper reports offsets relative to RF
    port 1.
    """
    if num_antennas < 1:
        raise ConfigurationError("need at least one antenna chain")
    generator = ensure_rng(rng)
    offsets = generator.uniform(-np.pi, np.pi, size=num_antennas)
    if reference_zero:
        offsets[0] = 0.0
    return offsets


@dataclass
class Reader:
    """One reader driving one uniform linear array through a hub.

    Parameters
    ----------
    array:
        The physical antenna array this reader serves.
    name:
        Reader identifier (appears in LLRP reports).
    phase_offsets:
        Per-antenna-chain oscillator offsets (radians).  Drawn at
        "power-on" when omitted.  These are *unknown* to the
        localization side until calibration estimates them.
    rng:
        Randomness source for power-on offsets.
    """

    array: UniformLinearArray
    name: str = "reader"
    phase_offsets: Optional[np.ndarray] = None
    num_rf_ports: int = RF_PORTS_PER_READER
    max_range_m: float = 12.0
    rng: RngLike = None

    def __post_init__(self) -> None:
        generator = ensure_rng(self.rng)
        if self.phase_offsets is None:
            self.phase_offsets = random_phase_offsets(
                self.array.num_antennas, generator
            )
        else:
            self.phase_offsets = np.asarray(self.phase_offsets, dtype=float)
            if self.phase_offsets.shape != (self.array.num_antennas,):
                raise ConfigurationError(
                    "phase_offsets must have one entry per antenna"
                )
        if self.num_rf_ports < 1:
            raise ConfigurationError("a reader needs at least one RF port")
        if self.max_range_m <= 0.0:
            raise ConfigurationError("reader antenna range must be positive")
        self.hub = AntennaHub(num_antennas=self.array.num_antennas)

    def power_cycle(self, rng: RngLike = None) -> None:
        """Re-draw the oscillator offsets, as a real power cycle would.

        Calibration is a once-per-power-cycle task (paper Section 4.4,
        Step 2); after calling this, previously estimated offsets are
        stale.
        """
        self.phase_offsets = random_phase_offsets(
            self.array.num_antennas, ensure_rng(rng)
        )

    def gamma(self) -> np.ndarray:
        """The offset diagonal matrix ``Gamma = diag(exp(j*beta_m))``."""
        return np.diag(np.exp(1j * self.phase_offsets))

    def ports(self) -> list:
        """The reader's RF ports; port 0 carries the antenna hub."""
        # Only the hub port contributes distinct offsets per antenna; the
        # port list is exposed for protocol-level bookkeeping.
        return [
            RfPort(index=i, phase_offset=float(self.phase_offsets[0]))
            for i in range(self.num_rf_ports)
        ]

    def snapshot_sweep_duration(self) -> float:
        """Time to scan all antennas once through the hub (seconds)."""
        return self.hub.sweep_duration_s
