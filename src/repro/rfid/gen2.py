"""Simplified EPC Gen2 inventory: framed slotted ALOHA with Q adaptation.

D-Watch's data collection rides on ordinary Gen2 inventory rounds: the
reader broadcasts a Query carrying the slot-count exponent ``Q``, each
energised tag draws a slot in ``[0, 2**Q)``, and per slot the reader
sees silence, a clean RN16 (acknowledged, tag sends its EPC), or a
collision.  The reader adapts ``Q`` between rounds using the standard
floating-point Q algorithm so the frame size tracks the population.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Sequence


from repro.errors import ProtocolError
from repro.rfid.epc import encode_epc
from repro.rfid.tag import Tag
from repro.rfid.timing import DEFAULT_LINK_TIMING, LinkTiming
from repro.utils.rng import RngLike, ensure_rng


class SlotOutcome(enum.Enum):
    """What the reader observed in one inventory slot."""

    EMPTY = "empty"
    SINGLETON = "singleton"
    COLLISION = "collision"


@dataclass(frozen=True)
class TagRead:
    """One successful EPC read within an inventory round."""

    epc: str
    slot: int
    rn16: int
    timestamp_s: float
    frame: bytes


@dataclass
class InventoryRound:
    """The full outcome of one Query round."""

    q: int
    outcomes: List[SlotOutcome] = field(default_factory=list)
    reads: List[TagRead] = field(default_factory=list)
    duration_s: float = 0.0

    @property
    def num_collisions(self) -> int:
        """Count of collided slots in this round."""
        return sum(1 for o in self.outcomes if o is SlotOutcome.COLLISION)

    @property
    def num_empty(self) -> int:
        """Count of empty slots in this round."""
        return sum(1 for o in self.outcomes if o is SlotOutcome.EMPTY)


@dataclass
class Gen2Inventory:
    """A Gen2 inventory engine with the floating-point Q algorithm.

    Parameters
    ----------
    initial_q:
        Starting slot-count exponent (Gen2 default 4).
    q_step:
        The C constant of the Q algorithm; 0.1-0.5 per the standard.
    timing:
        Link timing (Tari/BLF/encoding) used for slot-duration
        accounting; defaults to a Miller-4 dense-reader profile.
    rng:
        Randomness for tag slot draws and RN16s.
    """

    initial_q: int = 4
    q_step: float = 0.3
    timing: LinkTiming = DEFAULT_LINK_TIMING
    rng: RngLike = None

    def __post_init__(self) -> None:
        if not 0 <= self.initial_q <= 15:
            raise ProtocolError(f"initial Q must be in [0, 15], got {self.initial_q}")
        if not 0.0 < self.q_step <= 1.0:
            raise ProtocolError(f"Q step must be in (0, 1], got {self.q_step}")
        self._generator = ensure_rng(self.rng)
        self._q_float = float(self.initial_q)

    @property
    def current_q(self) -> int:
        """The integer Q the next Query will advertise."""
        return int(round(self._q_float))

    def run_round(self, tags: Sequence[Tag], start_time_s: float = 0.0) -> InventoryRound:
        """Execute one Query round over ``tags``.

        Tags that were already inventoried in this round do not answer
        again (flag semantics are reduced to per-round participation).
        """
        q = self.current_q
        num_slots = 2**q
        draws: Dict[int, List[Tag]] = {}
        for tag in tags:
            slot = tag.draw_slot(q, self._generator)
            draws.setdefault(slot, []).append(tag)

        outcomes: List[SlotOutcome] = []
        reads: List[TagRead] = []
        clock = start_time_s
        for slot in range(num_slots):
            contenders = draws.get(slot, [])
            if not contenders:
                outcomes.append(SlotOutcome.EMPTY)
                clock += self.timing.empty_slot_s
            elif len(contenders) == 1:
                tag = contenders[0]
                outcomes.append(SlotOutcome.SINGLETON)
                clock += self.timing.singleton_slot_s
                reads.append(
                    TagRead(
                        epc=tag.epc,
                        slot=slot,
                        rn16=tag.rn16(self._generator),
                        timestamp_s=clock,
                        frame=encode_epc(tag.epc),
                    )
                )
            else:
                outcomes.append(SlotOutcome.COLLISION)
                clock += self.timing.collision_slot_s

        self._adapt_q(outcomes)
        return InventoryRound(
            q=q, outcomes=outcomes, reads=reads, duration_s=clock - start_time_s
        )

    def inventory_all(
        self, tags: Sequence[Tag], max_rounds: int = 32
    ) -> List[InventoryRound]:
        """Run rounds until every tag has been read (or rounds exhausted).

        Returns the executed rounds; tags already read stop contending,
        mimicking the inventoried-flag behaviour of session S0 with a
        per-cycle reset.
        """
        remaining = list(tags)
        rounds: List[InventoryRound] = []
        clock = 0.0
        for _ in range(max_rounds):
            if not remaining:
                break
            round_result = self.run_round(remaining, start_time_s=clock)
            rounds.append(round_result)
            clock += round_result.duration_s
            read_epcs = {read.epc for read in round_result.reads}
            remaining = [tag for tag in remaining if tag.epc not in read_epcs]
        return rounds

    def _adapt_q(self, outcomes: Sequence[SlotOutcome]) -> None:
        """Standard floating Q update: +C on collision, -C on empty."""
        qfp = self._q_float
        for outcome in outcomes:
            if outcome is SlotOutcome.COLLISION:
                qfp = min(15.0, qfp + self.q_step)
            elif outcome is SlotOutcome.EMPTY:
                qfp = max(0.0, qfp - self.q_step)
        self._q_float = qfp
