"""LLRP-style tag reports: the reader-to-server interface.

The paper's server talks to the readers over the Low Level Reader
Protocol; every successful backscatter read arrives as a tag report
carrying the EPC, the antenna that heard it, an RSSI, and the measured
phase.  D-Watch's localization engine consumes only these reports — it
never touches raw RF — so this module is the seam between the hardware
substrate and the algorithm stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.errors import ProtocolError


@dataclass(frozen=True)
class TagReportData:
    """One per-antenna observation of one tag read.

    Attributes
    ----------
    epc:
        The tag's EPC identifier.
    reader_name:
        Which reader produced the report.
    antenna_index:
        Array element (0-based) that captured this sample.
    rssi_dbm:
        Received signal strength in dBm.
    phase_rad:
        Measured carrier phase in radians (wrapped), including the RF
        front end's uncalibrated offset.
    iq:
        The complex baseband sample behind the RSSI/phase pair.
    timestamp_s:
        Read time relative to the start of the collection.
    """

    epc: str
    reader_name: str
    antenna_index: int
    rssi_dbm: float
    phase_rad: float
    iq: complex
    timestamp_s: float = 0.0


@dataclass
class RoReport:
    """A batch of tag reports, grouped like an LLRP RO_ACCESS_REPORT."""

    reader_name: str
    reports: List[TagReportData] = field(default_factory=list)

    def for_tag(self, epc: str) -> List[TagReportData]:
        """All observations of one tag, antenna-major then time order."""
        selected = [r for r in self.reports if r.epc == epc]
        return sorted(selected, key=lambda r: (r.antenna_index, r.timestamp_s))

    def epcs(self) -> List[str]:
        """Distinct EPCs present in this report, in first-seen order."""
        seen: Dict[str, None] = {}
        for report in self.reports:
            seen.setdefault(report.epc, None)
        return list(seen)

    def snapshot_matrix(self, epc: str, num_antennas: int) -> np.ndarray:
        """Reassemble the ``(M, N)`` snapshot matrix for one tag.

        Raises
        ------
        ProtocolError
            If any antenna contributed a different number of samples
            (a torn sweep), since a ragged matrix cannot feed MUSIC.
        """
        per_antenna: Dict[int, List[complex]] = {m: [] for m in range(num_antennas)}
        for report in self.for_tag(epc):
            if report.antenna_index >= num_antennas:
                raise ProtocolError(
                    f"report references antenna {report.antenna_index} beyond array"
                )
            per_antenna[report.antenna_index].append(report.iq)
        lengths = {len(samples) for samples in per_antenna.values()}
        if len(lengths) != 1:
            raise ProtocolError(f"torn sweep: per-antenna sample counts {lengths}")
        n = lengths.pop()
        if n == 0:
            raise ProtocolError(f"no observations for tag {epc}")
        matrix = np.zeros((num_antennas, n), dtype=complex)
        for antenna, samples in per_antenna.items():
            matrix[antenna, :] = samples
        return matrix


def build_report(
    reader_name: str,
    epc: str,
    snapshots: np.ndarray,
    start_time_s: float = 0.0,
    sweep_duration_s: float = 1.6e-3,
) -> RoReport:
    """Wrap raw snapshots into per-antenna tag reports.

    The inverse of :meth:`RoReport.snapshot_matrix`: each snapshot
    column becomes one TDM sweep, each row one antenna observation.
    """
    x = np.asarray(snapshots, dtype=complex)
    if x.ndim != 2:
        raise ProtocolError("snapshots must be a 2-D (M, N) array")
    m, n = x.shape
    reports: List[TagReportData] = []
    for t in range(n):
        sweep_start = start_time_s + t * sweep_duration_s
        for antenna in range(m):
            iq = complex(x[antenna, t])
            power = abs(iq) ** 2
            rssi = 10.0 * np.log10(max(power, 1e-18)) + 30.0
            reports.append(
                TagReportData(
                    epc=epc,
                    reader_name=reader_name,
                    antenna_index=antenna,
                    rssi_dbm=float(rssi),
                    phase_rad=float(np.angle(iq)),
                    iq=iq,
                    timestamp_s=sweep_start + antenna * (sweep_duration_s / m),
                )
            )
    return RoReport(reader_name=reader_name, reports=reports)
