"""The Impinj antenna hub: many antennas on one RF port, time-divided.

The Speedway R420 has only four RF ports, so the paper attaches an
antenna hub to reach eight array elements.  Antennas share the port in
fixed time-division slots of roughly 200 microseconds; one full array
snapshot therefore takes ``M`` slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.constants import ANTENNA_TDM_SLOT_S
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TdmSchedule:
    """The time-division schedule of one snapshot sweep.

    Attributes
    ----------
    slots:
        ``(antenna_index, start_time_s, end_time_s)`` triples in sweep
        order.
    """

    slots: Tuple[Tuple[int, float, float], ...]

    @property
    def duration(self) -> float:
        """Total sweep duration in seconds."""
        return self.slots[-1][2] if self.slots else 0.0

    def antenna_at(self, time_s: float) -> int:
        """Which antenna is active at ``time_s`` into the sweep.

        Slots are half-open ``[start, end)`` except the final one, which
        is end-inclusive: reader timestamps quantize to the slot grid,
        so the last read of a sweep can land exactly on ``duration`` and
        still belongs to the final slot rather than outside the sweep.

        Raises
        ------
        ConfigurationError
            If ``time_s`` falls outside ``[0, duration]``.
        """
        antenna = self.try_antenna_at(time_s)
        if antenna is None:
            raise ConfigurationError(f"time {time_s} outside the sweep duration")
        return antenna

    def try_antenna_at(self, time_s: float) -> Optional[int]:
        """Like :meth:`antenna_at`, but ``None`` for out-of-sweep times.

        The non-raising lookup the streaming assembler uses: a read
        whose timestamp falls outside every slot (clock skew, a glitched
        report) should be counted and dropped by the caller, not crash
        the ingest loop.
        """
        for antenna, start, end in self.slots:
            if start <= time_s < end:
                return antenna
        if self.slots and time_s == self.slots[-1][2]:
            return self.slots[-1][0]
        return None


@dataclass(frozen=True)
class AntennaHub:
    """An antenna hub multiplexing ``num_antennas`` onto one RF port."""

    num_antennas: int
    slot_duration_s: float = ANTENNA_TDM_SLOT_S

    def __post_init__(self) -> None:
        if self.num_antennas < 1:
            raise ConfigurationError("hub needs at least one antenna")
        if self.slot_duration_s <= 0.0:
            raise ConfigurationError("TDM slot duration must be positive")

    def sweep_schedule(self) -> TdmSchedule:
        """The TDM schedule of one full antenna sweep."""
        slots: List[Tuple[int, float, float]] = []
        for index in range(self.num_antennas):
            start = index * self.slot_duration_s
            slots.append((index, start, start + self.slot_duration_s))
        return TdmSchedule(slots=tuple(slots))

    @property
    def sweep_duration_s(self) -> float:
        """Duration of one complete snapshot sweep (seconds)."""
        return self.num_antennas * self.slot_duration_s
