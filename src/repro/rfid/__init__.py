"""COTS RFID substrate: tags, readers, EPC Gen2 inventory, LLRP reports."""

from repro.rfid.epc import (
    crc16_ccitt,
    random_epc,
    encode_epc,
    decode_epc,
    validate_epc_frame,
)
from repro.rfid.tag import Tag
from repro.rfid.hub import AntennaHub, TdmSchedule
from repro.rfid.reader import Reader, RfPort
from repro.rfid.gen2 import Gen2Inventory, InventoryRound, SlotOutcome, TagRead
from repro.rfid.llrp import TagReportData, RoReport, build_report
from repro.rfid.timing import LinkTiming, TagEncoding, DEFAULT_LINK_TIMING

__all__ = [
    "crc16_ccitt",
    "random_epc",
    "encode_epc",
    "decode_epc",
    "validate_epc_frame",
    "Tag",
    "AntennaHub",
    "TdmSchedule",
    "Reader",
    "RfPort",
    "Gen2Inventory",
    "InventoryRound",
    "SlotOutcome",
    "TagRead",
    "TagReportData",
    "RoReport",
    "build_report",
    "LinkTiming",
    "TagEncoding",
    "DEFAULT_LINK_TIMING",
]
