"""Passive UHF RFID tag model (Alien ALN-9634 class).

Tags are battery-free: they harvest the reader's carrier and answer by
modulating their backscatter.  For localization only three properties
matter: where the tag is, how strongly it backscatters, and that it
participates in the Gen2 slotted-ALOHA inventory.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.rfid.epc import random_epc
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class Tag:
    """One passive tag placed in the monitoring area.

    Parameters
    ----------
    position:
        The tag's 2-D location (metres).  D-Watch never *uses* tag
        locations for localization; they exist so the simulator can
        compute true propagation geometry (and so calibration scenes can
        compute known LoS angles).
    epc:
        96-bit EPC identifier as 24 hex digits; random when omitted.
    backscatter_gain:
        Complex amplitude of the tag's modulated reflection.
    height_m:
        Height above the floor; used by the tag-array height-difference
        experiment (Fig. 18).
    """

    position: Point
    epc: str = field(default_factory=random_epc)
    backscatter_gain: complex = 1.0 + 0.0j
    height_m: float = 1.25

    def __post_init__(self) -> None:
        if abs(self.backscatter_gain) <= 0.0:
            raise ConfigurationError("tag backscatter gain must be non-zero")
        if self.height_m < 0.0:
            raise ConfigurationError("tag height cannot be negative")

    def draw_slot(self, q: int, rng: RngLike = None) -> int:
        """Pick a Gen2 inventory slot uniformly in ``[0, 2**q)``."""
        if not 0 <= q <= 15:
            raise ConfigurationError(f"Gen2 Q must be in [0, 15], got {q}")
        return int(ensure_rng(rng).integers(0, 2**q))

    def rn16(self, rng: RngLike = None) -> int:
        """A fresh 16-bit random handle for the Query/ACK exchange."""
        return int(ensure_rng(rng).integers(0, 2**16))
