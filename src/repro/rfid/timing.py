"""EPC Gen2 link timing, derived from the air-interface parameters.

The inventory simulator needs slot durations; rather than hard-coding
them, this module computes them from the quantities the standard
actually negotiates:

* **Tari** — the reader's data-0 symbol length (6.25-25 us);
* **RTcal / TRcal** — reader-to-tag and tag-to-reader calibration
  intervals sent in the preamble;
* **DR** (divide ratio) and the **BLF** = DR / TRcal backscatter link
  frequency the tag derives from them;
* **M** — the tag's FM0/Miller-2/4/8 modulation (M subcarrier cycles
  per bit, trading speed for robustness).

Timings follow the Class-1 Generation-2 standard's Annex A formulas:
tag bit time = M / BLF, T1 = max(RTcal, 10/BLF), T2 = 10/BLF,
T3 >= 0 (we use T1 again as the no-reply timeout allowance).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ProtocolError


class TagEncoding(enum.IntEnum):
    """Tag backscatter modulation: subcarrier cycles per bit."""

    FM0 = 1
    MILLER_2 = 2
    MILLER_4 = 4
    MILLER_8 = 8


#: Reader command lengths in bits (fixed fields of the Gen2 commands).
QUERY_BITS = 22
QUERY_REP_BITS = 4
ACK_BITS = 18

#: Tag reply lengths in bits, including the standard preambles.
RN16_BITS = 16 + 6
EPC_REPLY_BITS = 128 + 6  # PC + EPC-96 + CRC-16 + preamble


@dataclass(frozen=True)
class LinkTiming:
    """One negotiated Gen2 link configuration.

    Parameters
    ----------
    tari_s:
        Reader data-0 length in seconds (6.25-25 us per the standard).
    divide_ratio:
        DR: 8 or 64/3.
    trcal_s:
        Tag-to-reader calibration interval; BLF = DR / TRcal.
    encoding:
        Tag modulation (FM0 fastest, Miller-8 most robust).
    """

    tari_s: float = 12.5e-6
    divide_ratio: float = 64.0 / 3.0
    trcal_s: float = 66.7e-6
    encoding: TagEncoding = TagEncoding.MILLER_4

    def __post_init__(self) -> None:
        if not 6.25e-6 <= self.tari_s <= 25e-6:
            raise ProtocolError(
                f"Tari must be 6.25-25 us, got {self.tari_s * 1e6:.2f} us"
            )
        if self.divide_ratio not in (8.0, 64.0 / 3.0):
            raise ProtocolError("divide ratio must be 8 or 64/3")
        if self.trcal_s <= 0.0:
            raise ProtocolError("TRcal must be positive")
        blf = self.divide_ratio / self.trcal_s
        if not 40e3 <= blf <= 640e3:
            raise ProtocolError(
                f"BLF {blf / 1e3:.0f} kHz outside the 40-640 kHz range"
            )

    @property
    def blf_hz(self) -> float:
        """Backscatter link frequency the tag derives: DR / TRcal."""
        return self.divide_ratio / self.trcal_s

    @property
    def rtcal_s(self) -> float:
        """Reader-to-tag calibration: the standard's nominal 2.75 Tari."""
        return 2.75 * self.tari_s

    @property
    def reader_bit_s(self) -> float:
        """Average reader symbol length (data-0 and data-1 mean)."""
        # data-1 is 1.5-2 Tari; use the PIE midpoint of 1.75.
        return (1.0 + 1.75) / 2.0 * self.tari_s

    @property
    def tag_bit_s(self) -> float:
        """Tag bit duration: M subcarrier cycles at the BLF."""
        return float(self.encoding) / self.blf_hz

    @property
    def t1_s(self) -> float:
        """Reader-command to tag-reply turnaround."""
        return max(self.rtcal_s, 10.0 / self.blf_hz)

    @property
    def t2_s(self) -> float:
        """Tag-reply to reader-command turnaround."""
        return 10.0 / self.blf_hz

    @property
    def t3_s(self) -> float:
        """No-reply wait after T1 before the reader moves on."""
        return self.t1_s

    def reader_command_s(self, bits: int) -> float:
        """Duration of a reader command of ``bits`` payload bits."""
        if bits < 1:
            raise ProtocolError("command must carry at least one bit")
        # Preamble/frame-sync ~ 12.5 us + RTcal, then the payload.
        return 12.5e-6 + self.rtcal_s + bits * self.reader_bit_s

    def tag_reply_s(self, bits: int) -> float:
        """Duration of a tag backscatter reply of ``bits`` bits."""
        if bits < 1:
            raise ProtocolError("reply must carry at least one bit")
        return bits * self.tag_bit_s

    @property
    def empty_slot_s(self) -> float:
        """QueryRep, then silence through T1 + T3."""
        return self.reader_command_s(QUERY_REP_BITS) + self.t1_s + self.t3_s

    @property
    def collision_slot_s(self) -> float:
        """QueryRep, colliding RN16s, no ACK."""
        return (
            self.reader_command_s(QUERY_REP_BITS)
            + self.t1_s
            + self.tag_reply_s(RN16_BITS)
            + self.t2_s
        )

    @property
    def singleton_slot_s(self) -> float:
        """The full QueryRep/RN16/ACK/EPC exchange."""
        return (
            self.reader_command_s(QUERY_REP_BITS)
            + self.t1_s
            + self.tag_reply_s(RN16_BITS)
            + self.t2_s
            + self.reader_command_s(ACK_BITS)
            + self.t1_s
            + self.tag_reply_s(EPC_REPLY_BITS)
            + self.t2_s
        )

    def reads_per_second(self, efficiency: float = 0.35) -> float:
        """Rough sustained read rate.

        ``efficiency`` is the fraction of slots that are singletons in
        a well-adapted frame (theory: ~1/e collisions/empties around an
        optimal Q; 0.35 matches field reports for Impinj readers).
        """
        if not 0.0 < efficiency <= 1.0:
            raise ProtocolError("efficiency must be in (0, 1]")
        mean_slot = (
            efficiency * self.singleton_slot_s
            + (1.0 - efficiency) * (self.empty_slot_s + self.collision_slot_s) / 2.0
        )
        return efficiency / mean_slot


#: The configuration used by the paper's deployment class of readers:
#: Miller-4 at ~320 kHz BLF, the Impinj "AutoSet Dense Reader" profile.
DEFAULT_LINK_TIMING = LinkTiming()
