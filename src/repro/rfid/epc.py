"""EPC-96 identifier handling and the Gen2 CRC-16.

EPC Gen2 frames protect the PC + EPC words with CRC-16/X.25 as defined
in the EPCglobal Class-1 Gen-2 air interface (poly 0x1021, init 0xFFFF,
reflected, xorout 0xFFFF).  The implementation below is bit-exact
against the standard's test vectors.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import ProtocolError
from repro.utils.rng import RngLike, ensure_rng

EPC_BITS = 96
EPC_BYTES = EPC_BITS // 8


def crc16_ccitt(data: bytes) -> int:
    """CRC-16/X.25 over ``data`` (the Gen2 frame CRC).

    Reflected polynomial 0x8408 (bit-reversed 0x1021), init 0xFFFF,
    final complement.
    """
    crc = 0xFFFF
    for byte in data:
        crc ^= byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ 0x8408
            else:
                crc >>= 1
    return crc ^ 0xFFFF


def random_epc(rng: RngLike = None) -> str:
    """A random 96-bit EPC as a 24-hex-digit uppercase string."""
    generator = ensure_rng(rng)
    raw = generator.integers(0, 256, size=EPC_BYTES, dtype=int)
    return bytes(int(b) for b in raw).hex().upper()


def encode_epc(epc_hex: str) -> bytes:
    """Encode an EPC string into a framed payload ``EPC || CRC16``."""
    payload = _epc_bytes(epc_hex)
    crc = crc16_ccitt(payload)
    return payload + crc.to_bytes(2, "big")


def decode_epc(frame: bytes) -> str:
    """Decode and CRC-check a framed EPC payload.

    Raises
    ------
    ProtocolError
        If the frame is the wrong length or the CRC check fails.
    """
    if len(frame) != EPC_BYTES + 2:
        raise ProtocolError(
            f"EPC frame must be {EPC_BYTES + 2} bytes, got {len(frame)}"
        )
    payload, crc_bytes = frame[:-2], frame[-2:]
    expected = crc16_ccitt(payload)
    received = int.from_bytes(crc_bytes, "big")
    if expected != received:
        raise ProtocolError(
            f"EPC CRC mismatch: computed {expected:#06x}, frame carries {received:#06x}"
        )
    return payload.hex().upper()


def validate_epc_frame(frame: bytes) -> bool:
    """Whether ``frame`` is a well-formed EPC || CRC16 payload."""
    try:
        decode_epc(frame)
    except ProtocolError:
        return False
    return True


def corrupt_frame(frame: bytes, bit_index: int) -> bytes:
    """Flip one bit of a frame (used by link-error tests)."""
    if not 0 <= bit_index < len(frame) * 8:
        raise ProtocolError(f"bit index {bit_index} outside frame")
    data = bytearray(frame)
    data[bit_index // 8] ^= 1 << (bit_index % 8)
    return bytes(data)


def _epc_bytes(epc_hex: str) -> bytes:
    if len(epc_hex) != EPC_BYTES * 2:
        raise ProtocolError(
            f"EPC must be {EPC_BYTES * 2} hex digits, got {len(epc_hex)}"
        )
    try:
        return bytes.fromhex(epc_hex)
    except ValueError as exc:
        raise ProtocolError(f"invalid EPC hex string {epc_hex!r}") from exc


def epc_pair() -> Tuple[str, bytes]:
    """A convenience (epc, framed bytes) pair with a fresh random EPC."""
    epc = random_epc()
    return epc, encode_epc(epc)
