"""Cross-process checkpoint hand-off: SIGKILL a shard, resume bit-identically.

The serving layer's crash-safety claim, pinned end to end: a
process-mode shard is killed with SIGKILL mid-stream, a *fresh*
supervisor restores the deployment from the on-disk checkpoint, and
the concatenated fix stream is bit-identical to an uninterrupted run —
with the resumed fixes' provenance chaining the checkpoint identity.

Module-scoped: the reference run and the interrupted run share one
scenario build.
"""

import pytest

from repro.serve.registry import DeploymentRegistry, DeploymentSpec
from repro.serve.supervisor import ShardSupervisor
from repro.sim.environments import hall_scene
from repro.stream.synthetic import SyntheticStreamConfig, synthetic_reads

FIXES = 4

SPEC = DeploymentSpec(
    deployment_id="dep-00",
    seed=11,
    num_tags=3,
    num_antennas=3,
    num_readers=2,
)


def fresh_supervisor(checkpoint_dir):
    registry = DeploymentRegistry()
    registry.register(SPEC)
    return ShardSupervisor(
        registry, checkpoint_dir=checkpoint_dir, workers="process"
    )


def strip_provenance(records):
    """Fix payloads minus provenance (lineage differs by construction)."""
    return [
        {key: value for key, value in record.items() if key != "provenance"}
        for record in records
    ]


@pytest.fixture(scope="module")
def handoff(tmp_path_factory):
    scene = hall_scene(
        rng=SPEC.seed,
        num_tags=SPEC.num_tags,
        num_antennas=SPEC.num_antennas,
        num_readers=SPEC.num_readers,
    )
    reads = list(
        synthetic_reads(
            scene, SyntheticStreamConfig(fixes=FIXES), rng=SPEC.seed + 3
        )
    )
    half = len(reads) // 2

    # Uninterrupted reference run.
    reference = fresh_supervisor(tmp_path_factory.mktemp("reference"))
    reference.start()
    reference.route(SPEC.deployment_id, reads)
    reference.stop(drain=True)
    reference_records = reference.shard(SPEC.deployment_id).fix_records()

    # Interrupted run: half the stream, checkpoint, SIGKILL.
    checkpoint_dir = tmp_path_factory.mktemp("crash")
    first = fresh_supervisor(checkpoint_dir)
    first.start()
    first.route(SPEC.deployment_id, reads[:half])
    checkpoint_id = first.checkpoint(SPEC.deployment_id)
    before_records = first.shard(SPEC.deployment_id).fix_records()
    first.kill(SPEC.deployment_id)
    state_after_kill = first.shard(SPEC.deployment_id).state

    # A fresh supervisor — a different OS process tree — restores the
    # deployment from disk and finishes the stream.
    second = fresh_supervisor(checkpoint_dir)
    second.start_deployment(SPEC.deployment_id, restore_latest=True)
    second.route(SPEC.deployment_id, reads[half:])
    second.stop(drain=True)
    after_records = second.shard(SPEC.deployment_id).fix_records()

    return {
        "reference": reference_records,
        "before": before_records,
        "after": after_records,
        "checkpoint_id": checkpoint_id,
        "state_after_kill": state_after_kill,
    }


class TestCrossProcessHandoff:
    def test_reference_run_completes(self, handoff):
        assert len(handoff["reference"]) == FIXES

    def test_sigkill_marks_shard_failed(self, handoff):
        assert handoff["state_after_kill"] == "failed"

    def test_fix_stream_bit_identical_across_handoff(self, handoff):
        combined = handoff["before"] + handoff["after"]
        assert strip_provenance(combined) == strip_provenance(
            handoff["reference"]
        )

    def test_resumed_fixes_chain_the_checkpoint(self, handoff):
        assert handoff["after"], "no fixes after restore"
        for record in handoff["after"]:
            lineage = record["provenance"]["checkpoint_lineage"]
            assert handoff["checkpoint_id"] in lineage

    def test_pre_kill_fixes_have_no_lineage(self, handoff):
        for record in handoff["before"]:
            assert record["provenance"]["checkpoint_lineage"] == []
