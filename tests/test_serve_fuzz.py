"""Fuzz the ``dwatch-ingest`` wire protocol (hypothesis).

The protocol's whole contract under hostile input is: every byte
sequence yields a JSON object, a clean EOF, or a *typed*
:class:`~repro.errors.IngestProtocolError` — never a hang, never a
bare ``JSONDecodeError``/``UnicodeDecodeError``, never an unbounded
read.  Three layers of attack:

* raw random bytes against :func:`~repro.serve.protocol.read_frame`;
* structured mutations (truncation, corruption, oversize prefixes) of
  *valid* frames, the shapes a crashed writer or flaky wire produces;
* the same garbage thrown at a **live** :class:`IngestServer` socket,
  which must answer with a typed error ack or close, within its
  timeout, and keep serving the next connection.
"""

import io
import socket

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IngestProtocolError
from repro.serve import protocol
from repro.serve.registry import DeploymentRegistry, DeploymentSpec
from repro.serve.server import IngestServer
from repro.serve.supervisor import ShardSupervisor

# -- offline framing fuzz --------------------------------------------------


def drain_frames(data: bytes, limit: int = 64) -> None:
    """Read frames off ``data`` until EOF or the first typed error."""
    stream = io.BytesIO(data)
    for _ in range(limit):
        frame = protocol.read_frame(stream)
        if frame is None:
            return
        assert isinstance(frame, dict)


class TestReadFrameFuzz:
    @settings(max_examples=200, deadline=None)
    @given(st.binary(max_size=512))
    def test_random_bytes_yield_dict_eof_or_typed_error(self, data):
        try:
            drain_frames(data)
        except IngestProtocolError as exc:
            assert exc.code in protocol.ERROR_CODES

    @settings(max_examples=100, deadline=None)
    @given(
        payload=st.dictionaries(
            st.text(max_size=8), st.integers(), max_size=4
        ),
        cut=st.integers(min_value=0, max_value=200),
    )
    def test_truncated_valid_frames_are_typed(self, payload, cut):
        wire = protocol.encode_frame(payload)
        if cut >= len(wire):
            assert protocol.read_frame(io.BytesIO(wire)) == payload
            return
        try:
            drain_frames(wire[:cut])
        except IngestProtocolError as exc:
            assert exc.code in ("truncated", "malformed")

    @settings(max_examples=100, deadline=None)
    @given(
        payload=st.dictionaries(
            st.text(max_size=8), st.integers(), max_size=4
        ),
        position=st.integers(min_value=0, max_value=10_000),
        flip=st.integers(min_value=1, max_value=255),
    )
    def test_corrupted_valid_frames_never_escape_untyped(
        self, payload, position, flip
    ):
        wire = bytearray(protocol.encode_frame(payload))
        wire[position % len(wire)] ^= flip
        try:
            drain_frames(bytes(wire))
        except IngestProtocolError as exc:
            assert exc.code in protocol.ERROR_CODES

    def test_oversized_length_prefix_is_refused_without_reading_it(self):
        wire = (
            str(protocol.MAX_FRAME_BYTES + 1).encode() + b" " + b"{}" + b"\n"
        )
        with pytest.raises(IngestProtocolError) as excinfo:
            protocol.read_frame(io.BytesIO(wire))
        assert excinfo.value.code == "oversized"

    def test_absurd_prefix_digits_are_malformed_not_oom(self):
        wire = b"9" * 40 + b" {}\n"
        with pytest.raises(IngestProtocolError) as excinfo:
            protocol.read_frame(io.BytesIO(wire))
        assert excinfo.value.code == "malformed"


# -- live-socket fuzz ------------------------------------------------------


@pytest.fixture(scope="module")
def live_ingest():
    """A real ingest server over an *unstarted* supervisor.

    Handshakes validate against the registry and reads hit the
    supervisor, which answers ``not-accepting`` for the missing shard —
    the full network path without paying for a pipeline build.
    """
    registry = DeploymentRegistry()
    registry.register(
        DeploymentSpec(
            deployment_id="dep-fuzz",
            seed=5,
            num_tags=2,
            num_antennas=2,
            num_readers=2,
        )
    )
    supervisor = ShardSupervisor(registry)
    server = IngestServer(supervisor, timeout_s=2.0)
    server.start()
    try:
        yield server
    finally:
        server.stop()


def poke_server(server: IngestServer, data: bytes) -> None:
    """Throw ``data`` at the server; demand an answer or a close, fast."""
    with socket.create_connection(
        (server.host, server.port), timeout=5.0
    ) as sock:
        sock.settimeout(5.0)
        try:
            sock.sendall(data)
            sock.shutdown(socket.SHUT_WR)
            while True:
                # Bounded by the socket timeout: a hang fails the test.
                if sock.recv(4096) == b"":
                    return
        except OSError:
            return  # reset mid-conversation is an acceptable refusal


class TestLiveServerFuzz:
    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=1, max_size=256))
    def test_garbage_never_hangs_the_server(self, live_ingest, data):
        poke_server(live_ingest, data)

    @settings(max_examples=25, deadline=None)
    @given(
        position=st.integers(min_value=0, max_value=10_000),
        flip=st.integers(min_value=1, max_value=255),
    )
    def test_corrupted_hello_gets_a_typed_refusal(
        self, live_ingest, position, flip
    ):
        hello = protocol.IngestHello(
            deployment="dep-fuzz", readers=("reader-0",)
        )
        wire = bytearray(protocol.encode_frame(hello.to_dict()))
        wire[position % len(wire)] ^= flip
        poke_server(live_ingest, bytes(wire))

    def test_valid_hello_then_reads_gets_not_accepting(self, live_ingest):
        hello = protocol.IngestHello(
            deployment="dep-fuzz", readers=("reader-0",)
        )
        with socket.create_connection(
            (live_ingest.host, live_ingest.port), timeout=5.0
        ) as sock:
            sock.settimeout(5.0)
            rfile = sock.makefile("rb")
            wfile = sock.makefile("wb")
            protocol.write_frame(wfile, hello.to_dict())
            ack = protocol.read_frame(rfile)
            assert ack is not None and ack["status"] == "ok"
            protocol.write_frame(wfile, protocol.reads_frame(1, []))
            reply = protocol.read_frame(rfile)
            assert reply is not None
            assert reply.get("code") == "not-accepting"

    def test_server_survives_the_fuzz_and_still_handshakes(self, live_ingest):
        hello = protocol.IngestHello(deployment="dep-fuzz")
        with socket.create_connection(
            (live_ingest.host, live_ingest.port), timeout=5.0
        ) as sock:
            sock.settimeout(5.0)
            rfile = sock.makefile("rb")
            wfile = sock.makefile("wb")
            protocol.write_frame(wfile, hello.to_dict())
            ack = protocol.read_frame(rfile)
            assert ack is not None and ack["status"] == "ok"
