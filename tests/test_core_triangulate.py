"""Tests for repro.core.triangulate."""

import math

import pytest

from repro.core.triangulate import Bearing, triangulate
from repro.errors import EstimationError
from repro.geometry.point import Point

from tests.test_core_likelihood import make_reader


@pytest.fixture
def arrays():
    south = make_reader("south", Point(3.0, 0.05), 0.0).array
    west = make_reader("west", Point(0.05, 3.0), math.pi / 2.0).array
    north = make_reader("north", Point(3.0, 5.95), math.pi).array
    return south, west, north


def exact_bearings(arrays, target):
    return [
        Bearing(array=array, angle=array.angle_to(target)) for array in arrays
    ]


class TestTriangulate:
    def test_converges_to_truth_from_offset_start(self, arrays):
        target = Point(2.4, 3.6)
        result = triangulate(
            exact_bearings(arrays, target), initial=Point(2.0, 3.0)
        )
        assert result.position.distance_to(target) < 1e-4
        assert result.rms_residual_rad < 1e-5

    def test_two_bearings_sufficient(self, arrays):
        south, west, _ = arrays
        target = Point(4.2, 2.1)
        result = triangulate(
            exact_bearings((south, west), target), initial=Point(3.5, 2.5)
        )
        assert result.position.distance_to(target) < 1e-3

    def test_noisy_bearings_small_residual(self, arrays, rng):
        target = Point(3.1, 4.4)
        noisy = [
            Bearing(array=a.array if hasattr(a, "array") else a,
                    angle=a.angle_to(target) + rng.normal(0, math.radians(0.5)))
            for a in arrays
        ]
        result = triangulate(noisy, initial=Point(3.0, 4.0))
        # Sub-decimeter from half-degree bearing noise at ~3 m ranges.
        assert result.position.distance_to(target) < 0.12

    def test_weights_prioritize_confident_bearings(self, arrays):
        south, west, north = arrays
        target = Point(2.0, 2.0)
        bearings = [
            Bearing(array=south, angle=south.angle_to(target), weight=1.0),
            Bearing(array=west, angle=west.angle_to(target), weight=1.0),
            # A wildly wrong bearing with negligible weight.
            Bearing(
                array=north,
                angle=north.angle_to(Point(5.0, 5.0)),
                weight=1e-6,
            ),
        ]
        result = triangulate(bearings, initial=Point(2.2, 2.2))
        assert result.position.distance_to(target) < 0.05

    def test_single_bearing_rejected(self, arrays):
        south = arrays[0]
        with pytest.raises(EstimationError):
            triangulate(
                [Bearing(array=south, angle=1.0)], initial=Point(3, 3)
            )

    def test_reports_iterations(self, arrays):
        target = Point(3.0, 3.0)
        result = triangulate(
            exact_bearings(arrays, target), initial=Point(2.9, 2.9)
        )
        assert 1 <= result.iterations <= 12


class TestLocalizerRefinement:
    def test_refinement_tightens_clean_fix(self):
        from repro.core.likelihood import LikelihoodMap
        from repro.core.localizer import DWatchLocalizer
        from tests.test_core_likelihood import ROOM, evidence_for_target

        readers = {
            "south": make_reader("south", Point(3.0, 0.05), 0.0),
            "west": make_reader("west", Point(0.05, 3.0), math.pi / 2.0),
        }
        lmap = LikelihoodMap(room=ROOM, readers=readers, cell_size=0.05)
        refined = DWatchLocalizer(likelihood_map=lmap)
        coarse = DWatchLocalizer(
            likelihood_map=lmap, refine_by_triangulation=False
        )
        target = Point(2.43, 3.61)  # deliberately off-grid
        evidence = evidence_for_target(readers, target)
        error_refined = refined.localize(evidence).position.distance_to(target)
        error_coarse = coarse.localize(evidence).position.distance_to(target)
        assert error_refined <= error_coarse + 1e-9
        assert error_refined < 0.03