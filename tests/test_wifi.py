"""Tests for the Wi-Fi/CSI extension."""

import math

import numpy as np
import pytest

from repro.constants import SPEED_OF_LIGHT
from repro.errors import ConfigurationError, EstimationError
from repro.geometry.point import Point
from repro.geometry.segment import Segment
from repro.rf.array import UniformLinearArray
from repro.rf.channel import MultipathChannel
from repro.rf.propagation import PropagationPath
from repro.wifi import (
    CsiConfig,
    WidebandPMusic,
    WIFI_CENTER_FREQUENCY_HZ,
    csi_matrix,
    csi_snapshots,
    wifi_office_scene,
)
from repro.wifi.scene import WIFI_WAVELENGTH_M


@pytest.fixture
def wifi_array():
    return UniformLinearArray(
        reference=Point(0, 0),
        num_antennas=8,
        spacing_m=WIFI_WAVELENGTH_M / 2.0,
        wavelength_m=WIFI_WAVELENGTH_M,
    )


def wifi_path(array, angle_deg, gain, distance=5.0):
    angle = math.radians(angle_deg)
    source = array.centroid + Point(math.cos(angle), math.sin(angle)) * distance
    return PropagationPath(
        tag_id="tx",
        aoa=angle,
        gain=gain,
        legs=(Segment(source, array.centroid),),
    )


@pytest.fixture
def wifi_channel(wifi_array):
    return MultipathChannel(
        array=wifi_array,
        paths=[
            wifi_path(wifi_array, 60.0, 0.010, distance=4.0),
            wifi_path(wifi_array, 95.0, 0.007, distance=7.0),
            wifi_path(wifi_array, 135.0, 0.005, distance=10.0),
        ],
    )


class TestCsiConfig:
    def test_subcarrier_offsets_span_bandwidth(self):
        config = CsiConfig(num_subcarriers=30, bandwidth_hz=40e6)
        offsets = config.subcarrier_offsets()
        assert offsets[0] == -20e6
        assert offsets[-1] == 20e6

    def test_single_subcarrier_is_zero_offset(self):
        assert CsiConfig(num_subcarriers=1).subcarrier_offsets()[0] == 0.0

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError):
            CsiConfig(num_subcarriers=0)
        with pytest.raises(ConfigurationError):
            CsiConfig(bandwidth_hz=0.0)


class TestCsiMatrix:
    def test_shape(self, wifi_channel):
        csi = csi_matrix(wifi_channel, CsiConfig(num_subcarriers=30))
        assert csi.shape == (8, 30)

    def test_delay_rotates_across_subcarriers(self, wifi_array):
        # A single path: the inter-subcarrier phase step must equal
        # 2*pi*delta_f*tau.
        path = wifi_path(wifi_array, 90.0, 0.01, distance=6.0)
        channel = MultipathChannel(array=wifi_array, paths=[path])
        config = CsiConfig(num_subcarriers=8, bandwidth_hz=40e6)
        csi = csi_matrix(channel, config)
        delay = path.length / SPEED_OF_LIGHT
        step_truth = -2.0 * math.pi * (40e6 / 7) * delay
        steps = np.angle(csi[0, 1:] / csi[0, :-1])
        assert np.allclose(steps, ((step_truth + math.pi) % (2 * math.pi)) - math.pi, atol=1e-6)

    def test_zero_bandwidth_limit_matches_narrowband(self, wifi_channel):
        narrow = csi_matrix(wifi_channel, CsiConfig(num_subcarriers=1))
        response = wifi_channel.array_response()
        assert np.allclose(narrow[:, 0], response)


class TestCsiSnapshots:
    def test_shape(self, wifi_channel):
        reports = csi_snapshots(
            wifi_channel, 5, CsiConfig(num_subcarriers=16), rng=1
        )
        assert reports.shape == (8, 16, 5)

    def test_phase_offsets_applied(self, wifi_channel):
        offsets = np.linspace(0.0, 1.4, 8)
        clean = csi_snapshots(wifi_channel, 1, snr_db=300.0, rng=2)
        shifted = csi_snapshots(
            wifi_channel, 1, snr_db=300.0, phase_offsets=offsets, rng=2
        )
        ratio = shifted[:, 0, 0] / clean[:, 0, 0]
        assert np.allclose(np.angle(ratio), offsets, atol=1e-6)

    def test_invalid_packets_rejected(self, wifi_channel):
        with pytest.raises(ConfigurationError):
            csi_snapshots(wifi_channel, 0)


class TestWidebandPMusic:
    def test_resolves_coherent_paths_at_full_aperture(self, wifi_array, wifi_channel):
        reports = csi_snapshots(wifi_channel, 4, snr_db=30, rng=3)
        estimator = WidebandPMusic(
            spacing_m=wifi_array.spacing_m,
            wavelength_m=wifi_array.wavelength_m,
        )
        peaks = estimator.estimate_paths(reports, max_peaks=3)
        found = sorted(math.degrees(p.angle) for p in peaks)
        assert found == pytest.approx([60, 95, 135], abs=2.0)

    def test_power_ordering(self, wifi_array, wifi_channel):
        reports = csi_snapshots(wifi_channel, 6, snr_db=35, rng=4)
        estimator = WidebandPMusic(
            spacing_m=wifi_array.spacing_m,
            wavelength_m=wifi_array.wavelength_m,
        )
        peaks = estimator.estimate_paths(reports, max_peaks=3)
        by_angle = {round(math.degrees(p.angle) / 5) * 5: p.value for p in peaks}
        assert by_angle[60] > by_angle[95] > by_angle[135]

    def test_blocked_path_detected(self, wifi_array):
        paths = [
            wifi_path(wifi_array, 60.0, 0.010, distance=4.0),
            wifi_path(wifi_array, 120.0, 0.007, distance=7.0),
        ]
        base_channel = MultipathChannel(array=wifi_array, paths=paths)
        blocked_channel = MultipathChannel(
            array=wifi_array, paths=[paths[0].attenuated(0.14), paths[1]]
        )
        estimator = WidebandPMusic(
            spacing_m=wifi_array.spacing_m,
            wavelength_m=wifi_array.wavelength_m,
        )
        base = estimator.spectrum(csi_snapshots(base_channel, 4, rng=5))
        after = estimator.spectrum(csi_snapshots(blocked_channel, 4, rng=6))
        window = math.radians(2.5)
        drop_blocked = 1 - after.max_in_window(
            math.radians(60), window
        ) / base.max_in_window(math.radians(60), window)
        drop_other = 1 - after.max_in_window(
            math.radians(120), window
        ) / base.max_in_window(math.radians(120), window)
        assert drop_blocked > 0.8
        assert abs(drop_other) < 0.5

    def test_rejects_bad_rank(self, wifi_array):
        estimator = WidebandPMusic(
            spacing_m=wifi_array.spacing_m,
            wavelength_m=wifi_array.wavelength_m,
        )
        with pytest.raises(EstimationError):
            estimator.spectrum(np.zeros(8, dtype=complex))


class TestWifiScene:
    def test_preset_structure(self):
        scene = wifi_office_scene(rng=1)
        assert scene.frequency_hz == WIFI_CENTER_FREQUENCY_HZ
        assert len(scene.readers) == 2
        # The whole 8-element array fits in ~21 cm at 5.18 GHz.
        array = scene.readers[0].array
        span = (array.num_antennas - 1) * array.spacing_m
        assert span < 0.25

    def test_transmitters_in_range(self):
        scene = wifi_office_scene(rng=2)
        for reader in scene.readers:
            assert len(scene.tags_in_range(reader)) == len(scene.tags)
