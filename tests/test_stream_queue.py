"""Bounded ingest queue: policies, counters and failure paths."""

import threading

import pytest

from repro.errors import BackpressureError, ConfigurationError, QueueClosedError
from repro.stream.events import TagRead
from repro.stream.queue import DROP_POLICIES, BoundedReadQueue


def read(n, t=0.0):
    return TagRead(reader_name="r", epc=f"tag-{n}", time_s=t, iq=1.0 + 0.0j)


class TestConstruction:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError, match="capacity"):
            BoundedReadQueue(0)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ConfigurationError, match="drop policy"):
            BoundedReadQueue(4, policy="drop-random")

    def test_rejects_negative_timeout(self):
        with pytest.raises(ConfigurationError, match="timeout"):
            BoundedReadQueue(4, policy="block", block_timeout_s=-1.0)

    def test_policies_are_documented(self):
        assert DROP_POLICIES == ("block", "drop-oldest", "drop-newest")


class TestFifoBasics:
    def test_put_get_preserves_order(self):
        queue = BoundedReadQueue(8)
        for n in range(5):
            assert queue.put(read(n))
        assert [r.epc for r in queue.drain()] == [f"tag-{n}" for n in range(5)]

    def test_get_on_empty_returns_none(self):
        assert BoundedReadQueue(2).get() is None

    def test_drain_limit(self):
        queue = BoundedReadQueue(8)
        for n in range(5):
            queue.put(read(n))
        assert len(queue.drain(limit=2)) == 2
        assert len(queue) == 3


class TestDropOldest:
    def test_overflow_evicts_head_and_counts(self):
        queue = BoundedReadQueue(2, policy="drop-oldest")
        assert queue.put(read(0))
        assert queue.put(read(1))
        assert queue.put(read(2))  # evicts tag-0
        remaining = [r.epc for r in queue.drain()]
        assert remaining == ["tag-1", "tag-2"]
        stats = queue.stats
        assert stats.offered == 3
        assert stats.accepted == 3
        assert stats.dropped_oldest == 1
        assert stats.dropped == 1


class TestDropNewest:
    def test_overflow_rejects_incoming_and_counts(self):
        queue = BoundedReadQueue(2, policy="drop-newest")
        assert queue.put(read(0))
        assert queue.put(read(1))
        assert not queue.put(read(2))  # rejected
        remaining = [r.epc for r in queue.drain()]
        assert remaining == ["tag-0", "tag-1"]
        stats = queue.stats
        assert stats.offered == 3
        assert stats.accepted == 2
        assert stats.dropped_newest == 1


class TestBlock:
    def test_timeout_raises_backpressure_error(self):
        queue = BoundedReadQueue(1, policy="block", block_timeout_s=0.02)
        queue.put(read(0))
        with pytest.raises(BackpressureError, match="queue full"):
            queue.put(read(1))
        assert queue.stats.block_timeouts == 1
        # The queued read survived the failed offer.
        assert [r.epc for r in queue.drain()] == ["tag-0"]

    def test_consumer_unblocks_producer(self):
        queue = BoundedReadQueue(1, policy="block", block_timeout_s=5.0)
        queue.put(read(0))
        accepted = []

        def producer():
            accepted.append(queue.put(read(1)))

        thread = threading.Thread(target=producer)
        thread.start()
        assert queue.get().epc == "tag-0"
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert accepted == [True]
        assert queue.get().epc == "tag-1"
        assert queue.stats.block_timeouts == 0


class TestClose:
    def test_put_on_closed_queue_raises_with_context(self):
        queue = BoundedReadQueue(4)
        queue.close()
        assert queue.closed
        with pytest.raises(QueueClosedError, match="closed") as excinfo:
            queue.put(read(0, t=1.5))
        # Structured context survives on the exception object.
        assert excinfo.value.reader == "r"
        assert excinfo.value.epc == "tag-0"
        assert excinfo.value.time_s == 1.5

    def test_close_is_idempotent_and_keeps_queued_reads(self):
        queue = BoundedReadQueue(4)
        queue.put(read(0))
        queue.put(read(1))
        queue.close()
        queue.close()
        assert [r.epc for r in queue.drain()] == ["tag-0", "tag-1"]

    def test_close_wakes_a_blocked_producer(self):
        # A producer stuck waiting for space must fail fast on close,
        # not burn its full timeout against a consumer that is gone.
        queue = BoundedReadQueue(1, policy="block", block_timeout_s=30.0)
        queue.put(read(0))
        outcome = []

        def producer():
            try:
                queue.put(read(1))
                outcome.append("accepted")
            except QueueClosedError:
                outcome.append("closed")

        thread = threading.Thread(target=producer)
        thread.start()
        # Give the producer time to enter the wait before closing.
        for _ in range(100):
            if not thread.is_alive():
                break
            queue.close()
            thread.join(timeout=0.05)
            if not thread.is_alive():
                break
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert outcome == ["closed"]
        assert queue.stats.block_timeouts == 0

    def test_export_import_round_trip(self):
        queue = BoundedReadQueue(4, policy="drop-newest")
        for n in range(5):
            queue.put(read(n))
        items, stats = queue.export_state()
        assert stats.dropped_newest == 1
        other = BoundedReadQueue(4, policy="drop-newest")
        other.import_state(items, stats)
        assert other.stats == stats
        assert [r.epc for r in other.drain()] == [r.epc for r in items]


class TestLabeledDropCounters:
    def _dropped_samples(self, state):
        return [
            metric
            for metric in state.registry.snapshot()
            if metric["name"] == "stream.queue.dropped"
        ]

    def test_labeled_queue_counts_drops_per_deployment(self):
        from repro import obs

        with obs.observed() as state:
            queue = BoundedReadQueue(
                2, policy="drop-oldest", deployment="dep-07"
            )
            for n in range(4):
                queue.put(read(n))
            samples = self._dropped_samples(state)
        assert len(samples) == 1
        assert samples[0]["labels"] == {
            "deployment": "dep-07",
            "policy": "drop-oldest",
        }
        assert samples[0]["value"] == 2.0

    def test_unlabeled_queue_emits_no_labeled_series(self):
        from repro import obs

        with obs.observed() as state:
            queue = BoundedReadQueue(2, policy="drop-newest")
            for n in range(4):
                queue.put(read(n))
            samples = self._dropped_samples(state)
        assert samples == []
