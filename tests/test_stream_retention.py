"""Retention: kind sniffing, pure planning, and careful application."""

import json
import os

import pytest

from repro.errors import ConfigurationError, RetentionError
from repro.stream import (
    RETAINABLE_KINDS,
    RetentionPolicy,
    apply_retention,
    plan_retention,
    scan_artefacts,
    sniff_kind,
)
from repro.stream.retention import _SNIFF_BYTES

NOW = 1_000_000.0


def make_artefact(directory, name, kind, size=64, age_s=0.0):
    """One recognisable artefact file with a controlled size and mtime."""
    path = directory / name
    header = json.dumps({"kind": kind, "schema": 1})
    body = header + "\n" + "x" * max(0, size - len(header) - 1)
    path.write_text(body[:size] if size >= len(header) + 1 else body)
    os.utime(path, (NOW - age_s, NOW - age_s))
    return path


class TestSniff:
    def test_recognises_every_retainable_kind(self, tmp_path):
        for kind in RETAINABLE_KINDS:
            path = make_artefact(tmp_path, f"{kind}.jsonl", kind)
            assert sniff_kind(path) == kind

    def test_foreign_files_are_none(self, tmp_path):
        text = tmp_path / "notes.txt"
        text.write_text("just some notes\n")
        foreign_json = tmp_path / "foreign.jsonl"
        foreign_json.write_text('{"kind": "other-format"}\n')
        binary = tmp_path / "blob.bin"
        binary.write_bytes(b"\x00\x01\x02\x03")
        empty = tmp_path / "empty"
        empty.write_text("")
        for path in (text, foreign_json, binary, empty):
            assert sniff_kind(path) is None

    def test_large_single_line_checkpoint_is_recognised(self, tmp_path):
        # Checkpoints are one sorted-key JSON document on a single line;
        # "kind" routinely lands beyond the sniff window.  Regression:
        # these classified as foreign and retention never deleted them.
        path = tmp_path / "big.checkpoint.json"
        document = {"aaa_bulk": "x" * (4 * _SNIFF_BYTES), "kind": "dwatch-checkpoint"}
        path.write_text(json.dumps(document, sort_keys=True) + "\n")
        assert sniff_kind(path) == "dwatch-checkpoint"

    def test_large_single_line_foreign_json_stays_foreign(self, tmp_path):
        path = tmp_path / "big-foreign.json"
        document = {"aaa_bulk": "x" * (4 * _SNIFF_BYTES), "kind": "theirs"}
        path.write_text(json.dumps(document, sort_keys=True) + "\n")
        assert sniff_kind(path) is None

    def test_truncated_large_document_is_foreign(self, tmp_path):
        path = tmp_path / "cut.json"
        path.write_text('{"aaa": "' + "x" * (2 * _SNIFF_BYTES))
        assert sniff_kind(path) is None


class TestPolicy:
    def test_unbounded_policy_is_flagged(self):
        assert not RetentionPolicy().bounded
        assert RetentionPolicy(max_count=3).bounded

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            RetentionPolicy(max_age_s=-1.0)
        with pytest.raises(ConfigurationError):
            RetentionPolicy(max_count=-1)
        RetentionPolicy(max_count=0)  # "keep nothing" is a valid bound


class TestScanAndPlan:
    def test_scan_is_newest_first_and_skips_foreign(self, tmp_path):
        make_artefact(tmp_path, "old.jsonl", "dwatch-reads", age_s=300.0)
        make_artefact(tmp_path, "new.jsonl", "dwatch-fixes", age_s=10.0)
        (tmp_path / "README.md").write_text("docs\n")
        artefacts = scan_artefacts(tmp_path)
        assert [a.path.name for a in artefacts] == ["new.jsonl", "old.jsonl"]

    def test_scan_missing_directory_raises(self, tmp_path):
        with pytest.raises(RetentionError, match="directory"):
            scan_artefacts(tmp_path / "absent")

    def test_age_expiry(self, tmp_path):
        make_artefact(tmp_path, "stale.jsonl", "dwatch-reads", age_s=7200.0)
        keep = make_artefact(tmp_path, "fresh.jsonl", "dwatch-reads", age_s=60.0)
        plan = plan_retention(
            scan_artefacts(tmp_path), RetentionPolicy(max_age_s=3600.0), now_s=NOW
        )
        assert [a.path for a in plan.keep] == [keep]
        assert [(d.artefact.path.name, d.reason) for d in plan.delete] == [
            ("stale.jsonl", "expired")
        ]

    def test_count_cap_keeps_newest(self, tmp_path):
        for i in range(4):
            make_artefact(
                tmp_path, f"log{i}.jsonl", "dwatch-fixes", age_s=100.0 * i
            )
        plan = plan_retention(
            scan_artefacts(tmp_path), RetentionPolicy(max_count=2), now_s=NOW
        )
        assert [a.path.name for a in plan.keep] == ["log0.jsonl", "log1.jsonl"]
        assert {d.reason for d in plan.delete} == {"over-count"}

    def test_byte_budget_keeps_newest(self, tmp_path):
        for i in range(3):
            make_artefact(
                tmp_path,
                f"log{i}.jsonl",
                "dwatch-reads",
                size=100,
                age_s=100.0 * i,
            )
        plan = plan_retention(
            scan_artefacts(tmp_path),
            RetentionPolicy(max_total_bytes=250),
            now_s=NOW,
        )
        assert [a.path.name for a in plan.keep] == ["log0.jsonl", "log1.jsonl"]
        assert plan.bytes_kept == 200
        assert plan.bytes_freed == 100

    def test_planning_is_pure(self, tmp_path):
        paths = [
            make_artefact(tmp_path, f"l{i}.jsonl", "dwatch-reads", age_s=10.0 * i)
            for i in range(3)
        ]
        plan_retention(
            scan_artefacts(tmp_path), RetentionPolicy(max_count=1), now_s=NOW
        )
        assert all(p.exists() for p in paths)


class TestApply:
    def test_apply_deletes_only_the_plan(self, tmp_path):
        make_artefact(tmp_path, "goes.jsonl", "dwatch-reads", age_s=500.0)
        stays = make_artefact(tmp_path, "stays.jsonl", "dwatch-reads", age_s=1.0)
        foreign = tmp_path / "keep.txt"
        foreign.write_text("mine\n")
        plan = plan_retention(
            scan_artefacts(tmp_path), RetentionPolicy(max_count=1), now_s=NOW
        )
        deleted = apply_retention(plan)
        assert [p.name for p in deleted] == ["goes.jsonl"]
        assert stays.exists() and foreign.exists()
        assert not (tmp_path / "goes.jsonl").exists()

    def test_already_gone_files_are_tolerated(self, tmp_path):
        make_artefact(tmp_path, "a.jsonl", "dwatch-reads", age_s=500.0)
        make_artefact(tmp_path, "b.jsonl", "dwatch-reads", age_s=1.0)
        plan = plan_retention(
            scan_artefacts(tmp_path), RetentionPolicy(max_count=1), now_s=NOW
        )
        (tmp_path / "a.jsonl").unlink()
        # The goal state is reached either way: no error, path reported.
        assert [p.name for p in apply_retention(plan)] == ["a.jsonl"]
