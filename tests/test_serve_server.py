"""TCP ingest: handshake enforcement, typed refusals, and survival.

A one-deployment thread-mode fleet sits behind a real
:class:`IngestServer`; well-behaved publishers stream reads end to
end, and every flavour of bad client gets a typed error ack — after
which the server must still accept the next good connection.
"""

import socket
import time

import pytest

from repro.errors import IngestProtocolError
from repro.serve import protocol
from repro.serve.publisher import ReadPublisher
from repro.serve.registry import DeploymentRegistry, DeploymentSpec
from repro.serve.server import IngestServer
from repro.serve.supervisor import ShardSupervisor
from repro.sim.environments import hall_scene
from repro.stream.synthetic import SyntheticStreamConfig, synthetic_reads

SPEC = DeploymentSpec(
    deployment_id="dep-00",
    seed=11,
    num_tags=3,
    num_antennas=3,
    num_readers=2,
)


@pytest.fixture(scope="module")
def served():
    registry = DeploymentRegistry()
    registry.register(SPEC)
    supervisor = ShardSupervisor(registry, workers="thread")
    supervisor.start()
    server = IngestServer(supervisor, timeout_s=5.0)
    server.start()
    yield server
    server.stop()
    supervisor.stop(drain=True)


def raw_exchange(server, *frames):
    """Send raw frames, return the first reply frame (or the error)."""
    with socket.create_connection(server.address, timeout=5.0) as sock:
        wfile = sock.makefile("wb")
        rfile = sock.makefile("rb")
        for frame in frames:
            wfile.write(frame)
        wfile.flush()
        return protocol.read_frame(rfile)


class TestHappyPath:
    def test_publish_and_track_over_tcp(self, served):
        scene = hall_scene(
            rng=SPEC.seed,
            num_tags=SPEC.num_tags,
            num_antennas=SPEC.num_antennas,
            num_readers=SPEC.num_readers,
        )
        reads = list(
            synthetic_reads(
                scene, SyntheticStreamConfig(fixes=2), rng=SPEC.seed + 3
            )
        )
        host, port = served.address
        with ReadPublisher(
            host, port, SPEC.deployment_id, SPEC.reader_names
        ) as publisher:
            accepted, dropped = publisher.publish(reads, batch_size=128)
        assert accepted == len(reads)
        assert dropped == 0
        assert publisher.rtts_ms  # every acked batch left a latency sample
        deadline = time.time() + 60
        supervisor = served.supervisor
        while time.time() < deadline and supervisor.fixes_emitted("dep-00") < 1:
            time.sleep(0.1)
        assert supervisor.fixes_emitted("dep-00") >= 1


class TestTypedRefusals:
    def test_unknown_deployment(self, served):
        host, port = served.address
        publisher = ReadPublisher(host, port, "ghost", ("reader-0",))
        with pytest.raises(IngestProtocolError) as excinfo:
            publisher.connect()
        assert excinfo.value.code == "unknown-deployment"

    def test_reader_mismatch(self, served):
        host, port = served.address
        publisher = ReadPublisher(
            host, port, SPEC.deployment_id, ("reader-0", "reader-9")
        )
        with pytest.raises(IngestProtocolError) as excinfo:
            publisher.connect()
        assert excinfo.value.code == "reader-mismatch"

    def test_version_mismatch(self, served):
        hello = protocol.IngestHello(
            deployment=SPEC.deployment_id, readers=SPEC.reader_names
        )
        stale = dict(hello.to_dict(), schema=99)
        reply = raw_exchange(served, protocol.encode_frame(stale))
        assert reply["status"] == "error"
        assert reply["code"] == "version-mismatch"

    def test_malformed_frame(self, served):
        reply = raw_exchange(served, b"banana {}\n")
        assert reply["status"] == "error"
        assert reply["code"] == "malformed"

    def test_truncated_frame_never_hangs(self, served):
        # A client that dies mid-frame: the server times the read out
        # or sees EOF, refuses with "truncated", and moves on.
        with socket.create_connection(served.address, timeout=5.0) as sock:
            sock.sendall(b"100 {\"kind\":")
        # The refusal has no reader left to reach; survival is the
        # contract, checked below.

    def test_unknown_op_refused_after_handshake(self, served):
        hello = protocol.IngestHello(
            deployment=SPEC.deployment_id, readers=SPEC.reader_names
        )
        with socket.create_connection(served.address, timeout=5.0) as sock:
            wfile = sock.makefile("wb")
            rfile = sock.makefile("rb")
            protocol.write_frame(wfile, hello.to_dict())
            assert protocol.read_frame(rfile)["status"] == "ok"
            protocol.write_frame(wfile, {"op": "self-destruct"})
            reply = protocol.read_frame(rfile)
        assert reply["status"] == "error"
        assert reply["code"] == "malformed"

    def test_server_survives_all_of_the_above(self, served):
        # After every refusal the next good handshake must still work.
        host, port = served.address
        with ReadPublisher(
            host, port, SPEC.deployment_id, SPEC.reader_names
        ) as publisher:
            assert publisher.connected
