"""Invariance tests for the consensus localizer."""

import math

import pytest

from repro.core.detector import _evidence_from_events
from repro.core.likelihood import LikelihoodMap
from repro.core.localizer import DWatchLocalizer
from repro.dsp.spectrum import default_angle_grid
from repro.geometry.point import Point

from tests.test_core_likelihood import ROOM, evidence_for_target, make_reader


@pytest.fixture
def setup():
    readers = {
        "south": make_reader("south", Point(3.0, 0.05), 0.0),
        "west": make_reader("west", Point(0.05, 3.0), math.pi / 2.0),
        "north": make_reader("north", Point(3.0, 5.95), math.pi),
    }
    localizer = DWatchLocalizer(
        likelihood_map=LikelihoodMap(room=ROOM, readers=readers, cell_size=0.05)
    )
    return readers, localizer


class TestLocalizerInvariants:
    def test_evidence_order_irrelevant(self, setup):
        readers, localizer = setup
        target = Point(2.3, 3.7)
        evidence = evidence_for_target(readers, target)
        forward = localizer.localize(list(evidence))
        backward = localizer.localize(list(reversed(evidence)))
        assert forward.position.distance_to(backward.position) < 1e-6

    def test_silent_reader_is_neutral(self, setup):
        readers, localizer = setup
        target = Point(4.1, 2.2)
        evidence = evidence_for_target(
            {k: readers[k] for k in ("south", "west")}, target
        )
        baseline = localizer.localize(evidence)
        padded = evidence + [
            _evidence_from_events("north", [], default_angle_grid())
        ]
        with_silent = localizer.localize(padded)
        assert baseline.position.distance_to(with_silent.position) < 1e-6

    def test_uniform_drop_scaling_preserves_position(self, setup):
        readers, localizer = setup
        target = Point(2.8, 4.2)
        # Both above the confident-support threshold; a uniform drop
        # rescaling must not move the position.
        strong = evidence_for_target(readers, target, drop=0.99)
        weak = evidence_for_target(readers, target, drop=0.75)
        strong_fix = localizer.localize(strong)
        weak_fix = localizer.localize(weak)
        assert strong_fix.position.distance_to(weak_fix.position) < 0.1

    def test_estimate_inside_room(self, setup):
        readers, localizer = setup
        # Even for a target hugging the wall the estimate stays legal.
        target = Point(0.4, 5.6)
        estimate = localizer.localize(evidence_for_target(readers, target))
        assert ROOM.contains(estimate.position, margin=-1e-9)

    def test_deterministic(self, setup):
        readers, localizer = setup
        target = Point(3.3, 1.9)
        evidence = evidence_for_target(readers, target)
        first = localizer.localize(evidence)
        second = localizer.localize(evidence)
        assert first.position == second.position
        assert first.likelihood == second.likelihood
