"""Unit tests for the observability layer (spans, metrics, JSONL)."""

import json
import logging
import threading

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.obs.logging import StructuredFormatter, configure_logging, fields
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    load_snapshot_jsonl,
    render_snapshot,
)
from repro.obs.trace import load_trace_jsonl


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends with observability disabled."""
    obs.shutdown()
    yield
    obs.shutdown()


class TestDisabledFastPath:
    def test_disabled_by_default(self):
        assert not obs.is_enabled()

    def test_span_is_shared_noop(self):
        a = obs.span("anything", attr=1)
        b = obs.span("else")
        assert a is b  # the NullSpan singleton
        with a as sp:
            assert sp.set(more=2) is sp

    def test_counters_do_nothing_when_disabled(self):
        obs.count("x")
        obs.observe("y", 1.0)
        obs.gauge("z", 2.0)
        assert obs.snapshot() == []


class TestCounterGauge:
    def test_counter_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            Counter("c").inc(-1)

    def test_registry_kind_collision(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(ConfigurationError):
            registry.gauge("name")


class TestHistogram:
    def test_exact_aggregates(self):
        h = Histogram("h")
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        assert h.count == 4
        assert h.total == 10.0
        assert h.min_value == 1.0
        assert h.max_value == 4.0
        assert h.mean == 2.5

    def test_percentiles(self):
        h = Histogram("h")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert abs(h.percentile(50) - 50.0) <= 1.0
        assert abs(h.percentile(90) - 90.0) <= 1.0

    def test_percentile_range_check(self):
        with pytest.raises(ConfigurationError):
            Histogram("h").percentile(101)

    def test_decimation_keeps_exact_aggregates(self):
        h = Histogram("h", max_samples=64)
        n = 10_000
        for v in range(n):
            h.observe(float(v))
        assert h.count == n
        assert h.max_value == float(n - 1)
        assert len(h._samples) < 64
        # Percentiles stay approximately right on the decimated sample.
        assert abs(h.percentile(50) - n / 2) < n * 0.1

    def test_reset(self):
        h = Histogram("h")
        h.observe(5.0)
        h.reset()
        assert h.count == 0
        assert h.percentile(50) == 0.0


class TestRegistrySnapshot:
    def test_snapshot_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        registry.gauge("b").set(7.5)
        registry.histogram("c").observe(1.0)
        snap = {record["name"]: record for record in registry.snapshot()}
        assert snap["a"]["value"] == 3.0
        assert snap["b"]["value"] == 7.5
        assert snap["c"]["count"] == 1
        registry.reset()
        snap = {record["name"]: record for record in registry.snapshot()}
        assert snap["a"]["value"] == 0.0
        assert snap["c"]["count"] == 0

    def test_jsonl_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("fixes").inc(12)
        registry.histogram("lat").observe(4.0)
        path = str(tmp_path / "metrics.jsonl")
        written = registry.write_jsonl(path)
        assert written == 2
        records = load_snapshot_jsonl(path)
        assert records == registry.snapshot()

    def test_render_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("fixes").inc(2)
        registry.histogram("lat").observe(3.0)
        text = "\n".join(render_snapshot(registry.snapshot()))
        assert "fixes" in text
        assert "lat" in text
        assert "p90" in text

    def test_render_empty(self):
        assert render_snapshot([]) == ["(no metrics recorded)"]


class TestSpans:
    def test_nesting_parent_child(self, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        with obs.observed(trace_file=trace):
            with obs.span("outer") as outer:
                with obs.span("inner") as inner:
                    assert inner.parent_id == outer.span_id
                    assert inner.trace_id == outer.trace_id
        records = {r["name"]: r for r in load_trace_jsonl(trace)}
        assert records["inner"]["parent_id"] == records["outer"]["span_id"]
        assert records["outer"]["parent_id"] is None

    def test_span_timing_feeds_latency_histogram(self):
        with obs.observed() as state:
            with obs.span("stage"):
                pass
            snap = {r["name"]: r for r in state.registry.snapshot()}
        assert snap["latency.stage"]["count"] == 1
        assert snap["latency.stage"]["max"] >= 0.0

    def test_span_attrs_and_set(self, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        with obs.observed(trace_file=trace):
            with obs.span("stage", static=1) as sp:
                sp.set(dynamic=2)
        (record,) = load_trace_jsonl(trace)
        assert record["attrs"] == {"static": 1, "dynamic": 2}

    def test_error_status_and_reraise(self, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        with obs.observed(trace_file=trace):
            with pytest.raises(ValueError):
                with obs.span("boom"):
                    raise ValueError("nope")
        (record,) = load_trace_jsonl(trace)
        assert record["status"] == "error"

    def test_sibling_spans_share_trace_only_via_root(self):
        with obs.observed() as state:
            with obs.span("root-1") as a:
                pass
            with obs.span("root-2") as b:
                pass
        assert a.trace_id != b.trace_id

    def test_threads_have_independent_stacks(self):
        seen = {}

        def worker():
            with obs.span("thread-root") as sp:
                seen["parent"] = sp.parent_id

        with obs.observed():
            with obs.span("main-root"):
                thread = threading.Thread(target=worker)
                thread.start()
                thread.join()
        assert seen["parent"] is None

    def test_observed_restores_previous_state(self):
        assert not obs.is_enabled()
        with obs.observed():
            assert obs.is_enabled()
            inner_registry = obs.get_registry()
        assert not obs.is_enabled()
        assert obs.get_registry() is not inner_registry

    def test_configure_shutdown_writes_metrics(self, tmp_path):
        metrics = str(tmp_path / "metrics.jsonl")
        obs.configure(metrics_file=metrics)
        obs.count("hits", 3)
        written = obs.shutdown()
        assert written == 1
        (record,) = load_snapshot_jsonl(metrics)
        assert record == {"name": "hits", "type": "counter", "value": 3.0}
        assert not obs.is_enabled()

    def test_trace_file_not_created_without_spans(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        with obs.observed(trace_file=str(trace)):
            pass
        assert not trace.exists()

    def test_trace_lines_are_valid_json(self, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        with obs.observed(trace_file=trace):
            for index in range(5):
                with obs.span("stage", index=index):
                    pass
        with open(trace) as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 5
        for line in lines:
            record = json.loads(line)
            assert record["type"] == "span"
            assert record["duration_ms"] >= 0.0


class TestStructuredLogging:
    def test_formatter_renders_fields(self):
        record = logging.LogRecord(
            "repro.cli", logging.INFO, __file__, 1, "calibrating", (), None
        )
        record.repro_fields = {"environment": "hall", "readers": 4}
        text = StructuredFormatter().format(record)
        assert "info repro.cli calibrating" in text
        assert "environment=hall" in text
        assert "readers=4" in text

    def test_fields_helper_shape(self):
        assert fields(a=1) == {"repro_fields": {"a": 1}}

    def test_configure_logging_quiet_and_idempotent(self):
        logger = configure_logging(quiet=True)
        assert logger.level == logging.WARNING
        logger = configure_logging(quiet=False)
        assert logger.level == logging.INFO
        assert len(logger.handlers) == 1
