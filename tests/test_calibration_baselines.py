"""Tests for the Phaser and wired calibration baselines."""

import math

import numpy as np
import pytest

from repro.calibration.offsets import PhaseOffsets, offset_error
from repro.calibration.phaser import PhaserCalibrator
from repro.calibration.wired import WiredCalibrator
from repro.errors import CalibrationError
from repro.rf.channel import MultipathChannel
from repro.rfid.reader import Reader

from tests.conftest import make_path


@pytest.fixture
def truth(rng):
    raw = rng.uniform(-np.pi, np.pi, size=8)
    raw[0] = 0.0
    return PhaseOffsets.referenced(raw)


class TestPhaserCalibrator:
    def test_exact_on_pure_los(self, array, truth, rng):
        channel = MultipathChannel(array=array, paths=[make_path(array, 60.0, 0.01)])
        x = channel.snapshots(100, snr_db=50, phase_offsets=truth.values, rng=rng)
        phaser = PhaserCalibrator(
            spacing_m=array.spacing_m, wavelength_m=array.wavelength_m
        )
        estimate = phaser.estimate([(x, math.radians(60.0))])
        assert offset_error(estimate, truth) < 0.02

    def test_multipath_biases_estimate(self, array, truth, rng):
        paths = [
            make_path(array, 60.0, 0.01),
            make_path(array, 120.0, 0.003 * np.exp(1j * 1.1)),
        ]
        channel = MultipathChannel(array=array, paths=paths)
        x = channel.snapshots(100, snr_db=50, phase_offsets=truth.values, rng=rng)
        phaser = PhaserCalibrator(
            spacing_m=array.spacing_m, wavelength_m=array.wavelength_m
        )
        estimate = phaser.estimate([(x, math.radians(60.0))])
        assert offset_error(estimate, truth) > 0.03

    def test_extra_observations_ignored(self, array, truth, rng):
        channel = MultipathChannel(array=array, paths=[make_path(array, 60.0, 0.01)])
        x = channel.snapshots(50, snr_db=40, phase_offsets=truth.values, rng=rng)
        phaser = PhaserCalibrator(
            spacing_m=array.spacing_m, wavelength_m=array.wavelength_m
        )
        solo = phaser.estimate([(x, math.radians(60.0))])
        padded = phaser.estimate(
            [(x, math.radians(60.0)), (x * 0.0 + 1.0, math.radians(90.0))]
        )
        assert np.allclose(solo.values, padded.values)

    def test_empty_rejected(self, array):
        phaser = PhaserCalibrator(
            spacing_m=array.spacing_m, wavelength_m=array.wavelength_m
        )
        with pytest.raises(CalibrationError):
            phaser.estimate([])


class TestWiredCalibrator:
    def test_reads_truth_with_small_noise(self, array):
        reader = Reader(array=array, rng=3)
        truth = PhaseOffsets.referenced(np.asarray(reader.phase_offsets))
        wired = WiredCalibrator(measurement_noise_rad=0.01)
        estimate = wired.estimate(reader, rng=4)
        assert offset_error(estimate, truth) < 0.03

    def test_noise_free_is_exact(self, array):
        reader = Reader(array=array, rng=5)
        truth = PhaseOffsets.referenced(np.asarray(reader.phase_offsets))
        wired = WiredCalibrator(measurement_noise_rad=0.0)
        estimate = wired.estimate(reader, rng=6)
        assert offset_error(estimate, truth) == pytest.approx(0.0, abs=1e-12)

    def test_flags_interruption(self):
        assert WiredCalibrator().interrupts_communication

    def test_negative_noise_rejected(self, array):
        reader = Reader(array=array, rng=7)
        with pytest.raises(CalibrationError):
            WiredCalibrator(measurement_noise_rad=-0.1).estimate(reader)
