"""Property-based tests (hypothesis) for event-time window assembly.

The assembler's contract is order-insensitivity within the lateness
bound: however reads are duplicated, permuted, or interleaved across
readers, the closed windows must carry identical snapshot matrices.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rfid.hub import AntennaHub
from repro.stream.events import TagRead
from repro.stream.window import WindowAssembler, WindowConfig

SCHEDULE = AntennaHub(num_antennas=3, slot_duration_s=0.001).sweep_schedule()
SWEEP = SCHEDULE.duration

antenna_counts = st.integers(min_value=0, max_value=2)
seeds = st.integers(min_value=0, max_value=2**31)


def grid_reads(reader, sweeps, epc="tag", scale=1.0):
    """One read per (sweep, antenna slot) on the exact TDM grid."""
    return [
        TagRead(
            reader_name=reader,
            epc=epc,
            time_s=s * SWEEP + start,
            iq=complex(scale * (s + 1), antenna),
        )
        for s in range(sweeps)
        for antenna, start, _ in SCHEDULE.slots
    ]


def assembler(readers=("r",), sweeps_per_window=4):
    """Single-window assembler: nothing closes before ``flush``."""
    return WindowAssembler(
        {name: SCHEDULE for name in readers},
        WindowConfig(sweeps_per_window=sweeps_per_window),
    )


def run(asm, reads):
    windows = []
    for read in reads:
        windows.extend(asm.push(read))
    windows.extend(asm.flush())
    return windows


def canonical(windows):
    """Windows as comparable values (matrices keyed by reader/tag)."""
    return [
        (
            w.index,
            w.start_s,
            w.end_s,
            w.sweeps,
            w.torn_sweeps,
            {
                (reader, epc): matrix.tolist()
                for reader, tags in w.measurement.snapshots.items()
                for epc, matrix in tags.items()
            },
        )
        for w in windows
    ]


class TestDuplicateReads:
    @given(seeds, st.integers(min_value=1, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_duplicates_leave_matrices_unchanged(self, seed, copies):
        reads = grid_reads("r", sweeps=4)
        rng = np.random.default_rng(seed)
        duplicated = list(reads)
        extras = [
            reads[i]
            for i in rng.integers(0, len(reads), size=copies)
        ]
        for extra in extras:
            duplicated.insert(int(rng.integers(0, len(duplicated))), extra)

        clean_asm, dup_asm = assembler(), assembler()
        clean = canonical(run(clean_asm, reads))
        dirty = canonical(run(dup_asm, sorted(duplicated, key=lambda r: r.time_s)))

        assert dirty == clean
        assert dup_asm.duplicate_reads == copies
        assert clean_asm.duplicate_reads == 0


class TestPermutedReads:
    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_any_order_yields_the_same_windows(self, seed):
        reads = grid_reads("r", sweeps=4)
        shuffled = list(reads)
        np.random.default_rng(seed).shuffle(shuffled)

        in_order = canonical(run(assembler(), reads))
        permuted = canonical(run(assembler(), shuffled))

        assert permuted == in_order
        assert in_order[0][3] == 4  # all four sweeps survived

    @given(seeds, st.integers(min_value=2, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_multiple_tags_commute(self, seed, num_tags):
        reads = [
            read
            for t in range(num_tags)
            for read in grid_reads("r", sweeps=3, epc=f"tag-{t}", scale=t + 1.0)
        ]
        shuffled = list(reads)
        np.random.default_rng(seed).shuffle(shuffled)

        in_order = run(assembler(sweeps_per_window=3), reads)
        permuted = run(assembler(sweeps_per_window=3), shuffled)

        assert canonical(permuted) == canonical(in_order)
        (window,) = in_order
        assert len(window.measurement.snapshots["r"]) == num_tags


class TestInterleavedReaders:
    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_interleaving_equals_grouped_pushes(self, seed):
        a = grid_reads("a", sweeps=4, scale=1.0)
        b = grid_reads("b", sweeps=4, scale=10.0)

        grouped = run(assembler(readers=("a", "b")), a + b)

        interleaved = a + b
        np.random.default_rng(seed).shuffle(interleaved)
        mixed = run(assembler(readers=("a", "b")), interleaved)

        assert canonical(mixed) == canonical(grouped)
        (window,) = grouped
        assert set(window.measurement.snapshots) == {"a", "b"}
