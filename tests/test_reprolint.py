"""The repo's own AST linter: one violating/clean/suppressed fixture per rule.

Fixture sources are linted with a path *inside* ``src/repro`` because
several rules are scoped to the library (RL002's raw-converter check) or
carry per-module whitelists (RL001 ignores ``utils/rng.py``, RL002
ignores ``utils/angles.py``).  The meta-test at the bottom is the
enforcement teeth: the shipped ``src/repro`` tree must stay
violation-free.
"""

import textwrap

from tools.reprolint import lint_paths, lint_source
from tools.reprolint.cli import main as reprolint_main
from tools.reprolint.rules import RULES

FAKE_PATH = "src/repro/dsp/example.py"


def codes_of(source, path=FAKE_PATH):
    return [f.code for f in lint_source(textwrap.dedent(source), path)]


class TestRL001LegacyRandomness:
    def test_flags_global_numpy_randomness(self):
        assert "RL001" in codes_of(
            """
            import numpy as np

            def jitter(n: int) -> object:
                return np.random.seed(n)
            """
        )

    def test_flags_legacy_randomstate(self):
        assert "RL001" in codes_of(
            """
            import numpy as np

            def make() -> object:
                return np.random.RandomState(7)
            """
        )

    def test_clean_when_routed_through_generator(self):
        assert codes_of(
            """
            from repro.utils.rng import ensure_rng

            def jitter(n: int) -> float:
                return float(ensure_rng(n).normal())
            """
        ) == []

    def test_rng_module_is_whitelisted(self):
        source = """
        import numpy as np

        def default() -> object:
            return np.random.default_rng()
        """
        assert codes_of(source, path="src/repro/utils/rng.py") == []

    def test_suppressed_with_disable_comment(self):
        assert codes_of(
            """
            import numpy as np

            def jitter(n: int) -> object:
                return np.random.seed(n)  # reprolint: disable=RL001
            """
        ) == []


class TestRL002AngleUnits:
    def test_flags_trig_on_degree_named_value(self):
        assert "RL002" in codes_of(
            """
            import numpy as np

            def gain(theta_deg: float) -> float:
                return float(np.cos(theta_deg))
            """
        )

    def test_flags_raw_converter_inside_repro(self):
        assert "RL002" in codes_of(
            """
            import numpy as np

            def convert(theta: float) -> float:
                return float(np.deg2rad(theta))
            """
        )

    def test_clean_via_sanctioned_helper(self):
        assert codes_of(
            """
            import numpy as np

            from repro.utils.angles import deg2rad

            def gain(theta_deg: float) -> float:
                return float(np.cos(deg2rad(theta_deg)))
            """
        ) == []

    def test_angles_module_is_whitelisted(self):
        source = """
        import numpy as np

        def deg2rad(value: float) -> float:
            return float(np.deg2rad(value))
        """
        assert codes_of(source, path="src/repro/utils/angles.py") == []

    def test_suppressed_with_disable_comment(self):
        assert codes_of(
            """
            import numpy as np

            def gain(theta_deg: float) -> float:
                return float(np.sin(theta_deg))  # reprolint: disable=RL002
            """
        ) == []


class TestRL003ComplexToRealLoss:
    def test_flags_real_attribute_on_covariance(self):
        assert "RL003" in codes_of(
            """
            def trace(cov_matrix) -> object:
                return cov_matrix.real
            """
        )

    def test_flags_float_cast_of_matmul(self):
        assert "RL003" in codes_of(
            """
            def power(a, b) -> float:
                return float(a @ b)
            """
        )

    def test_clean_when_magnitude_taken_first(self):
        assert codes_of(
            """
            import numpy as np

            def power(cov_matrix) -> float:
                return float(np.abs(np.trace(cov_matrix)))
            """
        ) == []

    def test_suppressed_with_disable_comment(self):
        assert codes_of(
            """
            def trace(cov_matrix) -> object:
                return cov_matrix.real  # reprolint: disable=RL003
            """
        ) == []


class TestRL004MissingReturnAnnotation:
    def test_flags_public_function_without_annotation(self):
        assert "RL004" in codes_of(
            """
            def estimate(x):
                return x
            """
        )

    def test_private_function_is_exempt(self):
        assert codes_of(
            """
            def _helper(x):
                return x
            """
        ) == []

    def test_clean_with_annotation(self):
        assert codes_of(
            """
            def estimate(x: float) -> float:
                return x
            """
        ) == []

    def test_suppressed_with_disable_comment(self):
        assert codes_of(
            """
            def estimate(x):  # reprolint: disable=RL004
                return x
            """
        ) == []


class TestRL005MutableDefaultsAndBareExcept:
    def test_flags_mutable_default(self):
        assert "RL005" in codes_of(
            """
            def collect(items: list = []) -> list:
                return items
            """
        )

    def test_flags_bare_except(self):
        assert "RL005" in codes_of(
            """
            def load() -> object:
                try:
                    return open("x")
                except:
                    return None
            """
        )

    def test_flags_broad_exception(self):
        assert "RL005" in codes_of(
            """
            def load() -> object:
                try:
                    return open("x")
                except Exception:
                    return None
            """
        )

    def test_clean_with_none_default_and_narrow_except(self):
        assert codes_of(
            """
            def load(items: object = None) -> object:
                try:
                    return open("x")
                except OSError:
                    return None
            """
        ) == []

    def test_suppressed_with_disable_comment(self):
        assert codes_of(
            """
            def collect(items: list = []) -> list:  # reprolint: disable=RL005
                return items
            """
        ) == []


class TestRL006SwallowedExceptions:
    def test_flags_except_pass(self):
        assert "RL006" in codes_of(
            """
            def load() -> object:
                try:
                    return open("x")
                except OSError:
                    pass
            """
        )

    def test_flags_except_ellipsis(self):
        assert "RL006" in codes_of(
            """
            def load() -> object:
                try:
                    return open("x")
                except OSError:
                    ...
            """
        )

    def test_flags_docstring_only_body(self):
        assert "RL006" in codes_of(
            '''
            def load() -> object:
                try:
                    return open("x")
                except OSError:
                    """Nothing to do."""
            '''
        )

    def test_clean_when_handled(self):
        assert codes_of(
            """
            def load() -> object:
                try:
                    return open("x")
                except OSError:
                    return None
            """
        ) == []

    def test_clean_when_counted(self):
        assert codes_of(
            """
            from repro import obs

            def load() -> object:
                try:
                    return open("x")
                except OSError:
                    obs.count("io.failures")
                return None
            """
        ) == []

    def test_suppressed_with_disable_comment(self):
        assert codes_of(
            """
            def load() -> object:
                try:
                    return open("x")
                except OSError:  # reprolint: disable=RL006
                    pass
                return None
            """
        ) == []


class TestRL011DenseKernelsInDsp:
    DIRECT_EIGH = """
    import numpy as np

    def decompose(smoothed: object) -> object:
        return np.linalg.eigh(smoothed)
    """

    def test_flags_direct_eigh_in_dsp(self):
        assert "RL011" in codes_of(self.DIRECT_EIGH)

    def test_flags_direct_einsum_in_dsp(self):
        assert "RL011" in codes_of(
            """
            import numpy as np

            def power(a: object, product: object) -> object:
                return np.einsum("mg,mg->g", a, product)
            """
        )

    def test_flags_eigvalsh_imported_from_numpy_linalg(self):
        assert "RL011" in codes_of(
            """
            from numpy.linalg import eigvalsh

            def count(smoothed: object) -> object:
                return eigvalsh(smoothed)
            """
        )

    def test_backend_module_is_whitelisted(self):
        assert (
            codes_of(self.DIRECT_EIGH, path="src/repro/dsp/backend.py") == []
        )

    def test_outside_dsp_is_out_of_scope(self):
        assert (
            codes_of(self.DIRECT_EIGH, path="src/repro/stream/covariance.py")
            == []
        )

    def test_backend_dispatch_is_clean(self):
        assert codes_of(
            """
            from repro.dsp.backend import get_backend

            def decompose(smoothed: object) -> object:
                return get_backend().eigh(smoothed)
            """
        ) == []

    def test_suppressed_with_disable_comment(self):
        assert codes_of(
            """
            import numpy as np

            def decompose(smoothed: object) -> object:
                return np.linalg.eigh(smoothed)  # reprolint: disable=RL011
            """
        ) == []


class TestEngine:
    def test_syntax_error_becomes_rl000_finding(self):
        findings = lint_source("def broken(:\n", FAKE_PATH)
        assert [f.code for f in findings] == ["RL000"]

    def test_select_and_ignore_filters(self):
        source = textwrap.dedent(
            """
            def estimate(x, items=[]):
                return x
            """
        )
        assert codes_of(source) == ["RL004", "RL005"]
        only_004 = lint_source(source, FAKE_PATH, select={"RL004"})
        assert [f.code for f in only_004] == ["RL004"]
        without_005 = lint_source(source, FAKE_PATH, ignore={"RL005"})
        assert [f.code for f in without_005] == ["RL004"]

    def test_disable_all_suppresses_everything(self):
        assert codes_of(
            """
            def estimate(x, items=[]):  # reprolint: disable=all
                return x
            """
        ) == []

    def test_disable_next_line_form(self):
        assert codes_of(
            """
            # reprolint: disable-next-line=RL004
            def estimate(x):
                return x
            """
        ) == []

    def test_every_rule_has_code_and_message(self):
        assert set(RULES) == {
            "RL001", "RL002", "RL003", "RL004", "RL005", "RL006",
            "RL007", "RL008", "RL009", "RL010", "RL011",
        }
        for code, message in RULES.items():
            assert code.startswith("RL")
            assert message


class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text("def f(x: int) -> int:\n    return x\n")
        assert reprolint_main([str(target)]) == 0

    def test_exit_one_on_findings(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("def f(x, items=[]):\n    return x\n")
        assert reprolint_main([str(target)]) == 1
        assert "RL005" in capsys.readouterr().out

    def test_exit_two_on_unknown_code(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text("def f(x: int) -> int:\n    return x\n")
        assert reprolint_main([str(target), "--select", "RL999"]) == 2

    def test_exit_two_on_nonexistent_path(self, tmp_path, capsys):
        missing = tmp_path / "no_such_dir"
        assert reprolint_main([str(missing)]) == 2
        err = capsys.readouterr().err
        assert "path does not exist" in err
        assert str(missing) in err

    def test_json_statistics_document_is_deterministic(self, tmp_path, capsys):
        import json

        target = tmp_path / "dirty.py"
        target.write_text("def f(x, items=[]):\n    return x\n")
        assert reprolint_main([str(target), "--format", "json", "--statistics"]) == 1
        first = capsys.readouterr().out
        assert reprolint_main([str(target), "--format", "json", "--statistics"]) == 1
        second = capsys.readouterr().out
        assert first == second
        document = json.loads(first)
        assert set(document) == {"findings", "statistics"}
        assert document["statistics"] == {"RL005": 1}
        assert [f["code"] for f in document["findings"]] == ["RL005"]


class TestShippedTreeIsViolationFree:
    def test_src_repro_passes_reprolint(self):
        findings = lint_paths(["src/repro"])
        assert findings == [], "\n".join(f.format() for f in findings)
