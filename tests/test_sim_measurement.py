"""Tests for repro.sim.measurement."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.environments import hall_scene
from repro.sim.measurement import (
    Measurement,
    MeasurementConfig,
    MeasurementSession,
    measurement_from_reports,
)
from repro.sim.target import human_target


@pytest.fixture(scope="module")
def scene():
    return hall_scene(rng=11)


class TestMeasurementConfig:
    def test_defaults_match_paper(self):
        config = MeasurementConfig()
        assert config.num_snapshots == 10

    def test_invalid_snapshots_rejected(self):
        with pytest.raises(ConfigurationError):
            MeasurementConfig(num_snapshots=0)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ConfigurationError):
            MeasurementConfig(phase_jitter_rad=-0.1)


class TestCapture:
    def test_all_readers_and_tags_present(self, scene):
        session = MeasurementSession(scene, rng=1)
        capture = session.capture()
        assert set(capture.readers()) == {r.name for r in scene.readers}
        for reader in scene.readers:
            expected = {t.epc for t in scene.tags_in_range(reader)}
            assert set(capture.tags_for(reader.name)) == expected

    def test_matrix_shape(self, scene):
        session = MeasurementSession(
            scene, MeasurementConfig(num_snapshots=7), rng=2
        )
        capture = session.capture()
        reader = scene.readers[0]
        epc = capture.tags_for(reader.name)[0]
        assert capture.matrix(reader.name, epc).shape == (8, 7)

    def test_consecutive_captures_differ(self, scene):
        session = MeasurementSession(scene, rng=3)
        first = session.capture()
        second = session.capture()
        reader = scene.readers[0].name
        epc = first.tags_for(reader)[0]
        assert not np.allclose(first.matrix(reader, epc), second.matrix(reader, epc))

    def test_target_changes_blocked_tag_signal(self, scene):
        session = MeasurementSession(scene, rng=4)
        reader = scene.readers[0]
        tag = scene.tags_in_range(reader)[0]
        # Stand right on the tag-array line.
        midpoint = (tag.position + reader.array.centroid) / 2.0
        target = human_target(midpoint)
        empty = session.capture()
        occupied = session.capture([target])
        power_empty = np.mean(np.abs(empty.matrix(reader.name, tag.epc)) ** 2)
        power_occupied = np.mean(
            np.abs(occupied.matrix(reader.name, tag.epc)) ** 2
        )
        assert power_occupied < power_empty * 0.5

    def test_missing_pair_raises(self, scene):
        measurement = Measurement()
        with pytest.raises(ConfigurationError):
            measurement.matrix("nope", "F" * 24)


class TestProtocolPath:
    def test_reports_reassemble_into_capture(self, scene):
        session = MeasurementSession(scene, rng=5)
        reports = session.capture_reports()
        rebuilt = measurement_from_reports(reports, num_antennas=8)
        assert set(rebuilt.readers()) == {r.name for r in scene.readers}
        reader = scene.readers[0]
        for epc in rebuilt.tags_for(reader.name):
            assert rebuilt.matrix(reader.name, epc).shape[0] == 8

    def test_report_timestamps_reflect_inventory(self, scene):
        session = MeasurementSession(scene, rng=6)
        reports = session.capture_reports()
        for report in reports.values():
            assert all(r.timestamp_s >= 0.0 for r in report.reports)
