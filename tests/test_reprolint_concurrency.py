"""The concurrency rule family (RL007-RL010) of the repo's own linter.

One violating/clean/suppressed fixture per rule, plus the two analyses
the single-file rules cannot do alone: the cross-module RL008
lock-order cycle (which needs the project-wide second pass of
``lint_paths``) and the seeded lock-order-inversion fixture, which must
be caught **twice** — statically by RL008 and dynamically by the
runtime sanitizer executing the very same source.
"""

import textwrap

from repro.analysis import sanitizer
from tools.reprolint import lint_paths, lint_source

FAKE_PATH = "src/repro/stream/example.py"

#: One source, two detectors.  ``test_static_rule_flags_it`` lints this
#: string; ``test_runtime_sanitizer_flags_it`` executes it.  The locks
#: are forced-sanitized so the runtime path works without REPRO_DEBUG.
SEEDED_INVERSION = textwrap.dedent(
    """\
    from repro.analysis.sanitizer import sanitized_lock


    class Inverted:
        def __init__(self) -> None:
            self._a = sanitized_lock("fixture.a", force=True)
            self._b = sanitized_lock("fixture.b", force=True)
            self._log = []

        def forward(self) -> None:
            with self._a:
                with self._b:
                    self._log.append("f")

        def backward(self) -> None:
            with self._b:
                with self._a:
                    self._log.append("b")
    """
)


def codes_of(source, path=FAKE_PATH):
    return [f.code for f in lint_source(textwrap.dedent(source), path)]


def findings_of(source, path=FAKE_PATH):
    return lint_source(textwrap.dedent(source), path)


class TestRL007UnguardedSharedState:
    def test_flags_unguarded_mutation(self):
        assert "RL007" in codes_of(
            """
            import threading

            class Box:
                def __init__(self) -> None:
                    self._lock = threading.Lock()
                    self._items = []

                def add(self, value) -> None:
                    self._items.append(value)
            """
        )

    def test_clean_when_guarded(self):
        assert codes_of(
            """
            import threading

            class Box:
                def __init__(self) -> None:
                    self._lock = threading.Lock()
                    self._items = []

                def add(self, value) -> None:
                    with self._lock:
                        self._items.append(value)
            """
        ) == []

    def test_condition_alias_counts_as_the_lock(self):
        assert codes_of(
            """
            import threading

            class Box:
                def __init__(self) -> None:
                    self._lock = threading.Lock()
                    self._ready = threading.Condition(self._lock)
                    self._items = []

                def add(self, value) -> None:
                    with self._ready:
                        self._items.append(value)
            """
        ) == []

    def test_locked_suffix_methods_are_exempt(self):
        # ``*_locked`` is the repo's "caller holds the lock" convention.
        assert codes_of(
            """
            import threading

            class Box:
                def __init__(self) -> None:
                    self._lock = threading.Lock()
                    self._items = []

                def add(self, value) -> None:
                    with self._lock:
                        self._add_locked(value)

                def _add_locked(self, value) -> None:
                    self._items.append(value)
            """
        ) == []

    def test_lockfree_annotation_exempts_the_attribute(self):
        assert codes_of(
            """
            import threading

            class Box:
                def __init__(self) -> None:
                    self._lock = threading.Lock()
                    self._hits = 0  # reprolint: lockfree
                    self._items = []

                def bump(self) -> None:
                    self._hits += 1

                def add(self, value) -> None:
                    with self._lock:
                        self._items.append(value)
            """
        ) == []

    def test_lockless_class_is_out_of_scope(self):
        # RL007 applies only to classes that actually declare a lock.
        assert codes_of(
            """
            class Bag:
                def __init__(self) -> None:
                    self._items = []

                def add(self, value) -> None:
                    self._items.append(value)
            """
        ) == []

    def test_suppressed_with_disable_comment(self):
        assert codes_of(
            """
            import threading

            class Box:
                def __init__(self) -> None:
                    self._lock = threading.Lock()
                    self._items = []

                def add(self, value) -> None:
                    self._items.append(value)  # reprolint: disable=RL007
            """
        ) == []


class TestRL008LockOrder:
    def test_same_lock_nested_acquisition_flagged(self):
        assert "RL008" in codes_of(
            """
            import threading

            class Box:
                def __init__(self) -> None:
                    self._lock = threading.Lock()

                def deadlock(self) -> None:
                    with self._lock:
                        with self._lock:
                            pass
            """
        )

    def test_consistent_nesting_is_clean(self):
        assert codes_of(
            """
            import threading

            class Box:
                def __init__(self) -> None:
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def one(self) -> None:
                    with self._a:
                        with self._b:
                            pass

                def two(self) -> None:
                    with self._a:
                        with self._b:
                            pass
            """
        ) == []

    def test_single_file_inversion_flagged_in_both_directions(self):
        findings = [
            f for f in findings_of(SEEDED_INVERSION) if f.code == "RL008"
        ]
        assert len(findings) >= 2
        lines = {f.line for f in findings}
        assert len(lines) >= 2, "each conflicting site should be reported"

    def test_cross_module_inversion_needs_the_second_pass(self, tmp_path):
        forward = textwrap.dedent(
            """
            import threading

            class Pipeline:
                def __init__(self) -> None:
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self) -> None:
                    with self._a:
                        with self._b:
                            pass
            """
        )
        backward = textwrap.dedent(
            """
            import threading

            class Pipeline:
                def __init__(self) -> None:
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def backward(self) -> None:
                    with self._b:
                        with self._a:
                            pass
            """
        )
        (tmp_path / "forward.py").write_text(forward)
        (tmp_path / "backward.py").write_text(backward)
        # Each module alone is order-consistent...
        assert "RL008" not in codes_of(forward)
        assert "RL008" not in codes_of(backward)
        # ...the cycle only exists across the whole project.
        findings = lint_paths([str(tmp_path)])
        codes = [f.code for f in findings]
        assert "RL008" in codes
        assert {f.path for f in findings if f.code == "RL008"} == {
            str(tmp_path / "forward.py"),
            str(tmp_path / "backward.py"),
        }


class TestRL009BlockingUnderLock:
    def test_flags_sleep_while_holding(self):
        assert "RL009" in codes_of(
            """
            import threading
            import time

            class Box:
                def __init__(self) -> None:
                    self._lock = threading.Lock()

                def nap(self) -> None:
                    with self._lock:
                        time.sleep(0.1)
            """
        )

    def test_flags_file_io_while_holding(self):
        assert "RL009" in codes_of(
            """
            import threading

            class Box:
                def __init__(self) -> None:
                    self._lock = threading.Lock()

                def dump(self) -> None:
                    with self._lock:
                        handle = open("state.json")
                        handle.close()
            """
        )

    def test_flags_subprocess_while_holding(self):
        assert "RL009" in codes_of(
            """
            import subprocess
            import threading

            class Box:
                def __init__(self) -> None:
                    self._lock = threading.Lock()

                def shell(self) -> None:
                    with self._lock:
                        subprocess.run(["ls"])
            """
        )

    def test_clean_when_blocking_work_is_outside(self):
        assert codes_of(
            """
            import threading
            import time

            class Box:
                def __init__(self) -> None:
                    self._lock = threading.Lock()
                    self._stamp = 0.0

                def nap(self) -> None:
                    time.sleep(0.1)
                    with self._lock:
                        self._stamp = 1.0
            """
        ) == []

    def test_suppressed_with_disable_comment(self):
        assert codes_of(
            """
            import threading
            import time

            class Box:
                def __init__(self) -> None:
                    self._lock = threading.Lock()

                def nap(self) -> None:
                    with self._lock:
                        time.sleep(0.1)  # reprolint: disable=RL009
            """
        ) == []


class TestRL010ThreadHygiene:
    def test_flags_thread_without_explicit_daemon(self):
        assert "RL010" in codes_of(
            """
            import threading

            def start() -> None:
                worker = threading.Thread(target=print)
                worker.start()
                worker.join()
            """
        )

    def test_flags_daemon_thread_never_joined_or_registered(self):
        assert "RL010" in codes_of(
            """
            import threading

            def fire() -> None:
                runaway = threading.Thread(target=print, daemon=True)
                runaway.start()
            """
        )

    def test_clean_with_daemon_and_join(self):
        assert codes_of(
            """
            import threading

            def start() -> None:
                worker = threading.Thread(target=print, daemon=True)
                worker.start()
                worker.join()
            """
        ) == []

    def test_clean_when_registered_instead_of_joined(self):
        assert codes_of(
            """
            import threading

            def launch(pool) -> None:
                helper = threading.Thread(target=print, daemon=True)
                pool.register_thread(helper)
                helper.start()
            """
        ) == []

    def test_suppressed_with_disable_comment(self):
        assert codes_of(
            """
            import threading

            def fire() -> None:
                runaway = threading.Thread(target=print)  # reprolint: disable=RL010
                runaway.start()
            """
        ) == []


class TestSeededInversionCaughtByBothDetectors:
    def test_static_rule_flags_it(self):
        assert "RL008" in codes_of(SEEDED_INVERSION)

    def test_runtime_sanitizer_flags_it(self):
        sanitizer.reset()
        try:
            namespace = {}
            exec(  # noqa: S102 - executing our own fixture source
                compile(SEEDED_INVERSION, "seeded_inversion_fixture.py", "exec"),
                namespace,
            )
            box = namespace["Inverted"]()
            box.forward()
            box.backward()
            report = sanitizer.report()
            assert len(report["inversions"]) == 1
            inversion = report["inversions"][0]
            assert "fixture.a" in inversion["first"]
            assert "fixture.b" in inversion["first"]
            assert sorted(report["edges"]) == [
                "fixture.a -> fixture.b",
                "fixture.b -> fixture.a",
            ]
        finally:
            sanitizer.reset()
