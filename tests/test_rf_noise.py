"""Tests for repro.rf.noise."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rf.noise import awgn, noise_power_for_snr


class TestNoisePowerForSnr:
    def test_zero_db_equals_signal(self):
        assert noise_power_for_snr(2.0, 0.0) == pytest.approx(2.0)

    def test_ten_db(self):
        assert noise_power_for_snr(1.0, 10.0) == pytest.approx(0.1)

    def test_zero_signal_yields_zero_noise(self):
        assert noise_power_for_snr(0.0, 20.0) == 0.0

    def test_negative_signal_rejected(self):
        with pytest.raises(ConfigurationError):
            noise_power_for_snr(-1.0, 10.0)


class TestAwgn:
    def test_shape(self, rng):
        noise = awgn((4, 100), 1.0, rng)
        assert noise.shape == (4, 100)
        assert noise.dtype == complex

    def test_power_matches(self, rng):
        noise = awgn(200_000, 0.5, rng)
        assert np.mean(np.abs(noise) ** 2) == pytest.approx(0.5, rel=0.02)

    def test_circular_symmetry(self, rng):
        noise = awgn(200_000, 1.0, rng)
        assert np.var(noise.real) == pytest.approx(np.var(noise.imag), rel=0.05)

    def test_zero_power_is_silent(self):
        assert np.all(awgn(10, 0.0) == 0)

    def test_negative_power_rejected(self):
        with pytest.raises(ConfigurationError):
            awgn(10, -0.1)
