"""Per-reader health tracking: the quarantine/recovery state machine."""

import pytest

from repro.errors import ConfigurationError
from repro.stream.events import TagRead
from repro.stream.health import (
    HEALTH_STATES,
    HealthConfig,
    HealthTracker,
    ReaderHealth,
)


def read(reader, t=0.0):
    return TagRead(reader_name=reader, epc="tag", time_s=t, iq=1.0 + 0.0j)


def tracker(stale=2, recovery=2, readers=("a", "b")):
    return HealthTracker(
        readers, HealthConfig(stale_windows=stale, recovery_windows=recovery)
    )


class TestConfig:
    def test_defaults_are_valid(self):
        config = HealthConfig()
        assert config.stale_windows >= 1
        assert config.recovery_windows >= 1

    def test_rejects_non_positive_thresholds(self):
        with pytest.raises(ConfigurationError, match="stale_windows"):
            HealthConfig(stale_windows=0)
        with pytest.raises(ConfigurationError, match="recovery_windows"):
            HealthConfig(recovery_windows=0)

    def test_needs_at_least_one_reader(self):
        with pytest.raises(ConfigurationError, match="at least one reader"):
            HealthTracker([])


class TestReadAccounting:
    def test_reads_and_staleness(self):
        t = tracker()
        t.note_read(read("a", 1.0))
        t.note_read(read("a", 0.5))  # older read must not move last_read_s
        t.observe_window(["a", "b"])
        record = t.state_of("a")
        assert record == "healthy"
        report = {r.name: r for r in t.report()}
        assert report["a"].reads == 2
        assert report["a"].last_read_s == 1.0
        assert report["a"].read_rate == 2.0

    def test_unknown_reader_reads_are_ignored(self):
        t = tracker()
        t.note_read(read("ghost"))
        assert all(r.reads == 0 for r in t.report())

    def test_state_of_unknown_reader_raises(self):
        with pytest.raises(ConfigurationError, match="unknown reader"):
            tracker().state_of("ghost")


class TestQuarantineLadder:
    def test_one_miss_degrades_two_quarantine(self):
        t = tracker(stale=2)
        t.observe_window(["a", "b"])
        assert t.state_of("a") == "healthy"
        t.observe_window(["b"])
        assert t.state_of("a") == "degraded"
        assert t.quarantined() == frozenset()
        t.observe_window(["b"])
        assert t.state_of("a") == "quarantined"
        assert t.quarantined() == frozenset({"a"})
        assert t.healthy_count == 1
        assert t.total == 2

    def test_degraded_recovers_immediately(self):
        t = tracker(stale=2)
        t.observe_window(["b"])
        assert t.state_of("a") == "degraded"
        t.observe_window(["a", "b"])
        assert t.state_of("a") == "healthy"

    def test_recovery_needs_consecutive_windows(self):
        t = tracker(stale=1, recovery=2)
        t.observe_window(["b"])
        assert t.state_of("a") == "quarantined"
        # One good window is probation, not recovery.
        t.observe_window(["a", "b"])
        assert t.state_of("a") == "quarantined"
        # A relapse resets the probation counter.
        t.observe_window(["b"])
        t.observe_window(["a", "b"])
        assert t.state_of("a") == "quarantined"
        t.observe_window(["a", "b"])
        assert t.state_of("a") == "healthy"
        report = {r.name: r for r in t.report()}
        assert report["a"].recoveries == 1
        assert report["a"].quarantines == 1

    def test_violations_are_counted(self):
        t = tracker()
        t.note_violation("a", ValueError("boom"))
        t.note_violation("ghost", ValueError("ignored"))
        report = {r.name: r for r in t.report()}
        assert report["a"].violations == 1


class TestStateRoundTrip:
    def test_export_import_round_trip(self):
        t = tracker(stale=1)
        t.note_read(read("a", 0.25))
        t.observe_window(["b"])
        state = t.export_state()
        fresh = tracker(stale=1)
        fresh.import_state(state)
        assert fresh.export_state() == state
        assert fresh.state_of("a") == "quarantined"

    def test_import_rejects_unknown_reader(self):
        state = {"ghost": tracker().export_state()["a"]}
        with pytest.raises(ConfigurationError, match="unknown reader"):
            tracker().import_state(state)

    def test_import_rejects_unknown_state(self):
        state = tracker().export_state()
        state["a"]["state"] = "zombie"
        with pytest.raises(ConfigurationError, match="unknown health state"):
            tracker().import_state(state)

    def test_import_rejects_non_numeric_counter(self):
        state = tracker().export_state()
        state["a"]["reads"] = "many"
        with pytest.raises(ConfigurationError, match="expected a number"):
            tracker().import_state(state)


class TestInvariants:
    def test_states_are_documented(self):
        assert HEALTH_STATES == ("healthy", "degraded", "quarantined")

    def test_fresh_record_has_zero_rate(self):
        assert ReaderHealth(name="r").read_rate == 0.0
