"""Tests for repro.core.multitarget."""

import math

import pytest

from repro.core.detector import _evidence_from_events
from repro.core.likelihood import LikelihoodMap
from repro.core.localizer import DWatchLocalizer
from repro.core.multitarget import MultiTargetLocalizer
from repro.geometry.point import Point

from tests.test_core_likelihood import ROOM, evidence_for_target, make_reader


@pytest.fixture
def readers():
    return {
        "south": make_reader("south", Point(3.0, 0.05), 0.0),
        "west": make_reader("west", Point(0.05, 3.0), math.pi / 2.0),
        "north": make_reader("north", Point(3.0, 5.95), math.pi),
    }


@pytest.fixture
def multi(readers):
    localizer = DWatchLocalizer(
        likelihood_map=LikelihoodMap(room=ROOM, readers=readers, cell_size=0.05)
    )
    return MultiTargetLocalizer(localizer=localizer)


def merged_evidence(readers, targets):
    per_target = [evidence_for_target(readers, t) for t in targets]
    combined = []
    for items in zip(*per_target):
        events = [event for item in items for event in item.events]
        combined.append(
            _evidence_from_events(
                items[0].reader_name, events, items[0].drop.angles
            )
        )
    return combined


class TestMultiTarget:
    def test_two_sparse_targets_found(self, readers, multi):
        targets = [Point(1.5, 4.5), Point(4.5, 1.5)]
        estimates = multi.localize(merged_evidence(readers, targets))
        assert len(estimates) == 2
        for target in targets:
            assert any(
                e.position.distance_to(target) < 0.3 for e in estimates
            )

    def test_three_targets_triangle(self, readers, multi):
        targets = [Point(1.5, 1.5), Point(4.5, 1.8), Point(3.0, 4.5)]
        estimates = multi.localize(merged_evidence(readers, targets))
        found = sum(
            1
            for target in targets
            if any(e.position.distance_to(target) < 0.4 for e in estimates)
        )
        assert found >= 2

    def test_close_targets_merge(self, readers, multi):
        # Closer than min_separation: the paper's 20 cm failure case.
        targets = [Point(3.0, 3.0), Point(3.1, 3.1)]
        estimates = multi.localize(merged_evidence(readers, targets))
        assert len(estimates) == 1

    def test_single_target_single_estimate(self, readers, multi):
        estimates = multi.localize(
            merged_evidence(readers, [Point(2.0, 4.0)])
        )
        assert len(estimates) == 1

    def test_no_evidence_no_targets(self, readers, multi):
        from repro.dsp.spectrum import default_angle_grid

        empty = [
            _evidence_from_events(name, [], default_angle_grid())
            for name in readers
        ]
        assert multi.localize(empty) == []

    def test_respects_max_targets(self, readers, multi):
        multi.max_targets = 1
        targets = [Point(1.5, 4.5), Point(4.5, 1.5)]
        estimates = multi.localize(merged_evidence(readers, targets))
        assert len(estimates) == 1
