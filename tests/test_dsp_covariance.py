"""Tests for repro.dsp.covariance."""

import numpy as np
import pytest

from repro.dsp.covariance import (
    exchange_matrix,
    forward_backward_average,
    is_hermitian,
    sample_covariance,
)
from repro.errors import EstimationError


class TestSampleCovariance:
    def test_shape(self, rng):
        x = rng.normal(size=(8, 32)) + 1j * rng.normal(size=(8, 32))
        assert sample_covariance(x).shape == (8, 8)

    def test_hermitian(self, rng):
        x = rng.normal(size=(6, 40)) + 1j * rng.normal(size=(6, 40))
        assert is_hermitian(sample_covariance(x))

    def test_positive_semidefinite(self, rng):
        x = rng.normal(size=(6, 40)) + 1j * rng.normal(size=(6, 40))
        eigenvalues = np.linalg.eigvalsh(sample_covariance(x))
        assert np.all(eigenvalues >= -1e-12)

    def test_rank_one_for_single_snapshot(self, rng):
        x = rng.normal(size=(6, 1)) + 1j * rng.normal(size=(6, 1))
        r = sample_covariance(x)
        eigenvalues = np.sort(np.linalg.eigvalsh(r))
        assert eigenvalues[-2] == pytest.approx(0.0, abs=1e-10)

    def test_white_noise_converges_to_identity(self, rng):
        x = (rng.normal(size=(4, 200_000)) + 1j * rng.normal(size=(4, 200_000))) / np.sqrt(2)
        r = sample_covariance(x)
        assert np.allclose(r, np.eye(4), atol=0.02)

    def test_rejects_1d(self):
        with pytest.raises(EstimationError):
            sample_covariance(np.zeros(8))


class TestHelpers:
    def test_is_hermitian_rejects_rectangular(self):
        assert not is_hermitian(np.zeros((2, 3)))

    def test_exchange_matrix_is_antidiagonal(self):
        j = exchange_matrix(3)
        assert j[0, 2] == 1 and j[1, 1] == 1 and j[2, 0] == 1
        assert j.sum() == 3

    def test_exchange_is_involution(self):
        j = exchange_matrix(5)
        assert np.allclose(j @ j, np.eye(5))

    def test_forward_backward_preserves_hermitian(self, rng):
        x = rng.normal(size=(5, 30)) + 1j * rng.normal(size=(5, 30))
        fb = forward_backward_average(sample_covariance(x))
        assert is_hermitian(fb)

    def test_forward_backward_is_persymmetric(self, rng):
        x = rng.normal(size=(5, 30)) + 1j * rng.normal(size=(5, 30))
        fb = forward_backward_average(sample_covariance(x))
        j = exchange_matrix(5)
        assert np.allclose(fb, j @ fb.conj() @ j)

    def test_forward_backward_rejects_rectangular(self):
        with pytest.raises(EstimationError):
            forward_backward_average(np.zeros((2, 3)))
