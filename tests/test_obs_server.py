"""The ops endpoint: routes, payloads, lifecycle, and thread safety."""

import json
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.core.pipeline import DWatch
from repro.errors import ConfigurationError
from repro.obs import OpsServer, PROMETHEUS_CONTENT_TYPE, health_document_for
from repro.obs.export import validate_exposition
from repro.sim.environments import hall_scene
from repro.sim.measurement import MeasurementSession
from repro.stream import (
    FixQuality,
    ProvenanceRing,
    StreamRunner,
    SyntheticStreamConfig,
    TrackFix,
    synthetic_reads,
)


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.shutdown()
    yield
    obs.shutdown()


def fetch(url):
    """GET a URL; returns (status, content_type, body bytes)."""
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.status, response.headers["Content-Type"], response.read()


def fetch_error(url):
    """GET a URL expected to fail; returns (status, body json)."""
    try:
        with urllib.request.urlopen(url, timeout=5.0) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def some_fixes(n=3):
    return [
        TrackFix(
            index=i,
            time_s=float(i),
            position=None,
            quality=FixQuality(level="insufficient", confidence=0.0),
            predicted_only=True,
        )
        for i in range(n)
    ]


def snapshot_source():
    return [{"name": "stream.fixes", "type": "counter", "value": 4.0}]


class TestRoutes:
    def test_metrics_route_serves_valid_exposition(self):
        with OpsServer(port=0, snapshot_source=snapshot_source) as server:
            status, content_type, body = fetch(f"{server.url}/metrics")
        assert status == 200
        assert content_type == PROMETHEUS_CONTENT_TYPE
        families = validate_exposition(body.decode("utf-8"))
        assert families["repro_stream_fixes_total"].samples[0][2] == 4.0

    def test_healthz_without_provider_is_unknown(self):
        with OpsServer(port=0, snapshot_source=snapshot_source) as server:
            status, _, body = fetch(f"{server.url}/healthz")
        assert status == 200
        assert json.loads(body) == {"status": "unknown"}

    def test_provenance_route_serves_ring_with_limit(self):
        ring = ProvenanceRing(capacity=8)
        for fix in some_fixes(5):
            ring.push(fix)
        with OpsServer(
            port=0, snapshot_source=snapshot_source, ring=ring
        ) as server:
            _, _, body = fetch(f"{server.url}/provenance/recent?limit=2")
        document = json.loads(body)
        assert document["retained"] == 5
        assert [f["index"] for f in document["fixes"]] == [3, 4]

    def test_provenance_route_without_ring_is_empty(self):
        with OpsServer(port=0, snapshot_source=snapshot_source) as server:
            _, _, body = fetch(f"{server.url}/provenance/recent")
        assert json.loads(body) == {"fixes": [], "retained": 0}

    def test_unknown_route_404_lists_routes(self):
        with OpsServer(port=0, snapshot_source=snapshot_source) as server:
            status, document = fetch_error(f"{server.url}/nope")
        assert status == 404
        assert "/metrics" in document["routes"]

    def test_bad_limit_query_is_ignored(self):
        ring = ProvenanceRing(capacity=4)
        ring.push(some_fixes(1)[0])
        server = OpsServer(snapshot_source=snapshot_source, ring=ring)
        assert server.provenance_document("limit=bogus")["retained"] == 1


class TestLifecycle:
    def test_ephemeral_port_resolves_and_stop_releases(self):
        server = OpsServer(port=0, snapshot_source=snapshot_source)
        server.start()
        try:
            assert server.port != 0
            assert server.url.endswith(str(server.port))
        finally:
            server.stop()
        # The port is released: a fresh server can bind it again.
        rebound = OpsServer(port=server.port, snapshot_source=snapshot_source)
        with rebound:
            assert rebound.port != 0

    def test_double_start_raises(self):
        with OpsServer(port=0, snapshot_source=snapshot_source) as server:
            with pytest.raises(ConfigurationError, match="already running"):
                server.start()

    def test_stop_is_idempotent(self):
        server = OpsServer(port=0, snapshot_source=snapshot_source)
        server.start()
        server.stop()
        server.stop()

    def test_invalid_port_rejected(self):
        with pytest.raises(ConfigurationError, match="port"):
            OpsServer(port=70000)


class TestHealthDocument:
    def test_live_runner_health_payload(self):
        scene = hall_scene(rng=15, num_tags=4, num_antennas=4)
        dwatch = DWatch(scene, cell_size=0.1)
        dwatch.calibrate(rng=16)
        session = MeasurementSession(scene, rng=17)
        dwatch.collect_baseline([session.capture() for _ in range(2)])
        runner = StreamRunner(dwatch)
        reads = synthetic_reads(scene, SyntheticStreamConfig(fixes=2), rng=18)
        fixes = list(runner.run(iter(reads)))
        document = health_document_for(runner)
        assert document["status"] == "ok"
        assert document["quarantined"] == []
        assert set(document["readers"]) == {r.name for r in scene.readers}
        assert document["fixes_emitted"] == len(fixes)
        assert document["queue_depth"] == 0
        assert document["lineage"] == []
        # Schema 2: the same detail nests as a one-deployment fleet
        # (an unlabeled runner files under "default").
        assert document["schema"] == 2
        entry = document["deployments"]["default"]
        assert entry["state"] == "live"
        assert entry["fixes_emitted"] == len(fixes)
        # And the payload is JSON-serializable as /healthz must send it.
        json.dumps(document, sort_keys=True)


class TestFleetProvenance:
    def rings(self):
        ring_a = ProvenanceRing(capacity=8)
        ring_b = ProvenanceRing(capacity=8)
        for fix in some_fixes(3):
            ring_a.push(fix)
        for fix in some_fixes(2):
            ring_b.push(fix)
        return {"dep-a": ring_a, "dep-b": ring_b}

    def test_merged_feed_annotates_deployments(self):
        server = OpsServer(snapshot_source=snapshot_source, rings=self.rings())
        document = server.provenance_document("")
        assert document["retained"] == 5
        assert {fix["deployment"] for fix in document["fixes"]} == {
            "dep-a",
            "dep-b",
        }

    def test_deployment_filter(self):
        server = OpsServer(snapshot_source=snapshot_source, rings=self.rings())
        document = server.provenance_document("deployment=dep-b")
        assert document["retained"] == 2
        assert all(f["deployment"] == "dep-b" for f in document["fixes"])

    def test_unknown_deployment_names_the_fleet(self):
        server = OpsServer(snapshot_source=snapshot_source, rings=self.rings())
        document = server.provenance_document("deployment=ghost")
        assert document["fixes"] == []
        assert document["deployments"] == ["dep-a", "dep-b"]
        assert "unknown deployment" in document["error"]

    def test_limit_applies_after_merge(self):
        server = OpsServer(snapshot_source=snapshot_source, rings=self.rings())
        document = server.provenance_document("limit=2")
        assert len(document["fixes"]) == 2
        assert document["retained"] == 5
