"""Incremental spectral machinery: fingerprints, rank-1 eigh, the gate."""

import numpy as np
import pytest

from repro.dsp.batch import BatchPMusicConfig
from repro.dsp.incremental import (
    DEFAULT_DRIFT_TOLERANCE,
    CacheEntry,
    EigenState,
    SpectraCache,
    config_fingerprint,
    eigen_state_from_covariance,
    pmusic_spectrum_from_eigh,
    rank_one_eligible,
    reconstruction_drift,
    scaled_rank_one_eigh,
)
from repro.dsp.spectrum import AngularSpectrum
from repro.stream.covariance import pmusic_spectrum_from_covariance

SPACING = 0.163
WAVELENGTH = 2.0 * SPACING


def config(**overrides):
    return BatchPMusicConfig(
        spacing_m=SPACING, wavelength_m=WAVELENGTH, **overrides
    )


def random_covariance(rng, m, snapshots=32):
    x = rng.normal(size=(m, snapshots)) + 1j * rng.normal(size=(m, snapshots))
    r = (x @ x.conj().T) / snapshots
    return (r + r.conj().T) / 2.0


class TestConfigFingerprint:
    def test_equal_configs_share_a_fingerprint(self):
        assert config_fingerprint(config()) == config_fingerprint(config())

    def test_every_scalar_knob_changes_the_fingerprint(self):
        base = config_fingerprint(config())
        assert config_fingerprint(config(subarray_size=3)) != base
        assert config_fingerprint(config(forward_backward=False)) != base
        assert config_fingerprint(config(peak_min_separation=0.1)) != base

    def test_angle_grid_bytes_enter_the_fingerprint(self):
        grid_a = np.linspace(0.0, np.pi, 181)
        grid_b = np.linspace(0.0, np.pi, 181)
        grid_c = np.linspace(0.0, np.pi, 91)
        assert config_fingerprint(
            config(angle_grid=grid_a)
        ) == config_fingerprint(config(angle_grid=grid_b))
        assert config_fingerprint(
            config(angle_grid=grid_a)
        ) != config_fingerprint(config(angle_grid=grid_c))
        assert config_fingerprint(config(angle_grid=grid_a)) != (
            config_fingerprint(config())
        )

    def test_fingerprint_is_hashable(self):
        assert hash(config_fingerprint(config())) == hash(
            config_fingerprint(config())
        )


class TestRankOneEligibility:
    def test_three_antennas_keep_full_aperture(self):
        # default_subarray_size(3) == 3: smoothing is the identity.
        assert rank_one_eligible(config(), 3) is True

    def test_eight_antennas_smooth_and_are_ineligible(self):
        # default_subarray_size(8) == 6 < 8: smoothing breaks rank-1.
        assert rank_one_eligible(config(), 8) is False

    def test_explicit_full_subarray_is_eligible(self):
        assert rank_one_eligible(config(subarray_size=8), 8) is True

    def test_undecomposable_config_is_ineligible(self):
        # Fewer than 3 antennas cannot be smoothed at all.
        assert rank_one_eligible(config(), 2) is False


class TestScaledRankOneEigh:
    @pytest.mark.parametrize("m", [3, 4, 8])
    def test_matches_full_eigh_through_the_gate(self, rng, m):
        r = random_covariance(rng, m)
        state = eigen_state_from_covariance(r, revision=0)
        column = rng.normal(size=m) + 1j * rng.normal(size=m)
        scale, gain = 0.9, 0.1
        updated = scale * r + gain * np.outer(column, column.conj())
        updated = (updated + updated.conj().T) / 2.0
        result = scaled_rank_one_eigh(
            state.values, state.vectors, scale, gain, column
        )
        assert result is not None
        values, vectors = result
        assert np.all(np.diff(values) >= 0.0), "eigenvalues stay ascending"
        assert reconstruction_drift(values, vectors, updated) < (
            DEFAULT_DRIFT_TOLERANCE
        )
        np.testing.assert_allclose(
            values, np.linalg.eigvalsh(updated), rtol=1e-9, atol=1e-12
        )

    def test_chained_updates_stay_inside_the_tolerance(self, rng):
        m = 3
        r = random_covariance(rng, m)
        state = eigen_state_from_covariance(r, revision=0)
        values, vectors = state.values, state.vectors
        current = r
        for _ in range(100):
            column = rng.normal(size=m) + 1j * rng.normal(size=m)
            current = 0.9 * current + 0.1 * np.outer(column, column.conj())
            current = (current + current.conj().T) / 2.0
            result = scaled_rank_one_eigh(values, vectors, 0.9, 0.1, column)
            assert result is not None
            values, vectors = result
            assert reconstruction_drift(values, vectors, current) < (
                DEFAULT_DRIFT_TOLERANCE
            )

    def test_degenerate_spectrum_deflates_to_none(self, rng):
        # Identical eigenvalues: the gap guard must reject the update.
        values = np.array([1.0, 1.0, 1.0])
        vectors = np.eye(3, dtype=np.complex128)
        column = rng.normal(size=3) + 1j * rng.normal(size=3)
        assert scaled_rank_one_eigh(values, vectors, 0.9, 0.1, column) is None

    def test_vanishing_component_deflates_to_none(self):
        # A column orthogonal to an eigenvector zeroes one zeta entry.
        values = np.array([1.0, 2.0, 4.0])
        vectors = np.eye(3, dtype=np.complex128)
        column = np.array([1.0, 1.0, 0.0], dtype=np.complex128)
        assert scaled_rank_one_eigh(values, vectors, 0.9, 0.1, column) is None

    def test_non_positive_coefficients_are_rejected(self, rng):
        r = random_covariance(rng, 3)
        state = eigen_state_from_covariance(r, revision=0)
        column = rng.normal(size=3) + 1j * rng.normal(size=3)
        assert scaled_rank_one_eigh(
            state.values, state.vectors, 0.0, 0.1, column
        ) is None
        assert scaled_rank_one_eigh(
            state.values, state.vectors, 0.9, -0.1, column
        ) is None


class TestSpectrumFromEigh:
    def test_matches_the_covariance_domain_chain(self, rng):
        # m=3 keeps smoothing the identity, the eligible configuration.
        r = random_covariance(rng, 3)
        cfg = config()
        assert rank_one_eligible(cfg, 3)
        state = eigen_state_from_covariance(r, revision=0)
        spectrum = pmusic_spectrum_from_eigh(
            r, state.values[::-1], state.vectors[:, ::-1], cfg
        )
        reference = pmusic_spectrum_from_covariance(
            r, spacing_m=SPACING, wavelength_m=WAVELENGTH
        )
        np.testing.assert_allclose(
            spectrum.values, reference.values, rtol=1e-9, atol=1e-12
        )


class TestSpectraCache:
    def entry(self, revision, fingerprint):
        spectrum = AngularSpectrum(
            np.linspace(0.0, np.pi, 5), np.ones(5, dtype=np.float64)
        )
        return CacheEntry(
            revision=revision, fingerprint=fingerprint, spectrum=spectrum
        )

    def test_lookup_requires_matching_revision_and_fingerprint(self):
        cache = SpectraCache()
        fp = config_fingerprint(config())
        cache.store(("r1", "epc-1"), self.entry(3, fp))
        assert cache.lookup(("r1", "epc-1"), 3, fp) is not None
        assert cache.lookup(("r1", "epc-1"), 4, fp) is None
        other = config_fingerprint(config(subarray_size=3))
        assert cache.lookup(("r1", "epc-1"), 3, other) is None
        assert cache.lookup(("r2", "epc-1"), 3, fp) is None

    def test_store_replaces_and_len_counts_pairs(self):
        cache = SpectraCache()
        fp = config_fingerprint(config())
        cache.store(("r1", "t"), self.entry(1, fp))
        cache.store(("r1", "t"), self.entry(2, fp))
        cache.store(("r2", "t"), self.entry(1, fp))
        assert len(cache) == 2
        entry = cache.get(("r1", "t"))
        assert entry is not None and entry.revision == 2

    def test_eigen_state_rides_along(self, rng):
        cache = SpectraCache()
        fp = config_fingerprint(config())
        r = random_covariance(rng, 3)
        state = eigen_state_from_covariance(r, revision=5)
        entry = self.entry(5, fp)
        entry.eigen = state
        cache.store(("r1", "t"), entry)
        hit = cache.lookup(("r1", "t"), 5, fp)
        assert hit is not None and isinstance(hit.eigen, EigenState)
        assert hit.eigen.revision == 5
