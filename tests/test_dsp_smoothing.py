"""Tests for repro.dsp.smoothing (coherent-source decorrelation)."""

import numpy as np
import pytest

from repro.dsp.covariance import is_hermitian
from repro.dsp.smoothing import default_subarray_size, spatially_smoothed_covariance
from repro.errors import EstimationError


class TestSpatialSmoothing:
    def test_output_shape(self, three_path_channel):
        x = three_path_channel.snapshots(32, rng=0)
        smoothed = spatially_smoothed_covariance(x, subarray_size=6)
        assert smoothed.shape == (6, 6)

    def test_hermitian_output(self, three_path_channel):
        x = three_path_channel.snapshots(32, rng=1)
        assert is_hermitian(spatially_smoothed_covariance(x, 6))

    def test_restores_rank_for_coherent_sources(self, three_path_channel):
        # Coherent multipath makes the full covariance effectively
        # rank-1; smoothing must spread energy over >= 3 eigenvalues.
        x = three_path_channel.snapshots(64, snr_db=40, rng=2)
        full = x @ x.conj().T / x.shape[1]
        full_eigs = np.sort(np.linalg.eigvalsh(full))[::-1]
        assert full_eigs[1] / full_eigs[0] < 0.05  # rank-1 before

        smoothed = spatially_smoothed_covariance(x, 6)
        eigs = np.sort(np.linalg.eigvalsh(smoothed))[::-1]
        assert eigs[2] / eigs[0] > 0.01  # three signal directions after

    def test_invalid_subarray_rejected(self, three_path_channel):
        x = three_path_channel.snapshots(8, rng=3)
        with pytest.raises(EstimationError):
            spatially_smoothed_covariance(x, 1)
        with pytest.raises(EstimationError):
            spatially_smoothed_covariance(x, 9)

    def test_full_size_subarray_equals_plain_covariance(self, three_path_channel):
        x = three_path_channel.snapshots(16, rng=4)
        smoothed = spatially_smoothed_covariance(x, 8, forward_backward=False)
        plain = x @ x.conj().T / x.shape[1]
        assert np.allclose(smoothed, plain)


class TestDefaultSubarraySize:
    def test_paper_configuration(self):
        # 8 antennas, up to 5 dominant paths -> subarray of 6.
        assert default_subarray_size(8) == 6

    def test_small_array(self):
        assert default_subarray_size(4) >= 3

    def test_too_small_rejected(self):
        with pytest.raises(EstimationError):
            default_subarray_size(2)
