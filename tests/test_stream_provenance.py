"""Per-fix provenance: records, the fix-log format, the ring, the runner."""

import dataclasses
import json

import pytest

from repro.core.pipeline import DWatch
from repro.errors import RecordingError
from repro.faults import FaultInjector, chaos_plan, scene_schedules
from repro.geometry.point import Point
from repro.sim.environments import hall_scene
from repro.sim.measurement import MeasurementSession
from repro.stream import (
    FIXLOG_KIND,
    FIXLOG_SCHEMA,
    READER_ROLES,
    SPECTRAL_PATHS,
    FixLogHeader,
    FixProvenance,
    FixQuality,
    ProvenanceRing,
    ReaderProvenance,
    StreamRunner,
    SyntheticStreamConfig,
    TrackFix,
    checkpoint_id,
    checkpoint_state,
    read_fix_log,
    read_fix_log_header,
    restore_state,
    synthetic_reads,
    write_fix_log,
)

PROVENANCE = FixProvenance(
    window_index=4,
    readers=(
        ReaderProvenance(name="r0", health="healthy", role="contributed"),
        ReaderProvenance(name="r1", health="quarantined", role="excluded"),
    ),
    active_faults=("outage",),
    watermark_s=1.25,
    lateness_s=0.02,
    spectral_path="mixed",
    scalar_fallbacks=("r1",),
    checkpoint_lineage=("abc123def456",),
)


def some_fix(index=0, provenance=None):
    return TrackFix(
        index=index,
        time_s=0.5 * index,
        position=Point(1.0 + index, 2.0),
        quality=FixQuality(level="full", confidence=1.0),
        provenance=provenance,
    )


class TestRecords:
    def test_vocabularies_are_closed(self):
        assert PROVENANCE.spectral_path in SPECTRAL_PATHS
        assert all(r.role in READER_ROLES for r in PROVENANCE.readers)

    def test_round_trip_through_dict(self):
        assert FixProvenance.from_dict(PROVENANCE.to_dict()) == PROVENANCE

    def test_contributing_names(self):
        assert PROVENANCE.contributing == ("r0",)

    def test_provenance_is_metadata_not_identity(self):
        fix = some_fix(provenance=PROVENANCE)
        assert dataclasses.replace(fix, provenance=None) == fix
        assert "provenance" not in repr(fix)


class TestFixLog:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "fixes.jsonl"
        fixes = [some_fix(0, PROVENANCE), some_fix(1)]
        assert write_fix_log(path, fixes) == 2
        loaded = list(read_fix_log(path))
        assert [f.index for f in loaded] == [0, 1]
        assert loaded[0].provenance == PROVENANCE
        assert loaded[1].provenance is None
        assert loaded[0].position == (1.0, 2.0)
        assert loaded[0].quality_level == "full"

    def test_header_survives(self, tmp_path):
        path = tmp_path / "fixes.jsonl"
        header = FixLogHeader(environment="hall", seed=9, description="run")
        write_fix_log(path, [some_fix()], header)
        assert read_fix_log_header(path) == header

    def test_first_line_is_a_versioned_header(self, tmp_path):
        path = tmp_path / "fixes.jsonl"
        write_fix_log(path, [])
        first = json.loads(path.read_text().splitlines()[0])
        assert first["kind"] == FIXLOG_KIND
        assert first["schema"] == FIXLOG_SCHEMA

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(RecordingError, match="cannot open"):
            list(read_fix_log(tmp_path / "absent.jsonl"))

    def test_foreign_header_raises(self, tmp_path):
        path = tmp_path / "foreign.jsonl"
        path.write_text('{"kind": "something-else", "schema": 1}\n')
        with pytest.raises(RecordingError, match="header"):
            read_fix_log_header(path)

    def test_future_schema_raises(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps({"kind": FIXLOG_KIND, "schema": 99}) + "\n")
        with pytest.raises(RecordingError, match="unsupported schema"):
            list(read_fix_log(path))

    def test_truncated_line_names_its_number(self, tmp_path):
        path = tmp_path / "cut.jsonl"
        write_fix_log(path, [some_fix(0, PROVENANCE)])
        lines = path.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(RecordingError, match="line 2"):
            list(read_fix_log(path))

    def test_crash_leaves_parseable_prefix(self, tmp_path):
        # Header goes to disk eagerly: a writer that never appends (a
        # crash before the first fix) still leaves a valid, empty log.
        from repro.stream import FixLogWriter

        path = tmp_path / "crash.jsonl"
        FixLogWriter(path).close()
        assert list(read_fix_log(path)) == []


class TestRing:
    def test_capacity_evicts_oldest(self):
        ring = ProvenanceRing(capacity=3)
        for i in range(5):
            ring.push(some_fix(i))
        assert len(ring) == 3
        assert [r["index"] for r in ring.recent()] == [2, 3, 4]
        assert [r["index"] for r in ring.recent(limit=1)] == [4]

    def test_capacity_must_be_positive(self):
        with pytest.raises(RecordingError, match="capacity"):
            ProvenanceRing(capacity=0)


@pytest.fixture(scope="module")
def deployment():
    scene = hall_scene(rng=25, num_tags=4, num_antennas=4)
    dwatch = DWatch(scene, cell_size=0.1)
    dwatch.calibrate(rng=26)
    session = MeasurementSession(scene, rng=27)
    dwatch.collect_baseline([session.capture() for _ in range(2)])
    return scene, dwatch


class TestRunnerIntegration:
    def test_every_fix_carries_provenance(self, deployment):
        scene, dwatch = deployment
        runner = StreamRunner(dwatch)
        reads = synthetic_reads(scene, SyntheticStreamConfig(fixes=3), rng=28)
        fixes = list(runner.run(iter(reads)))
        assert fixes
        for fix in fixes:
            assert fix.provenance is not None
            assert fix.provenance.window_index == fix.index
            assert fix.provenance.spectral_path in SPECTRAL_PATHS
            names = [r.name for r in fix.provenance.readers]
            assert names == sorted(r.name for r in scene.readers)
            assert all(r.role in READER_ROLES for r in fix.provenance.readers)

    def test_healthy_stream_contributes_all_readers_batched(self, deployment):
        scene, dwatch = deployment
        runner = StreamRunner(dwatch)
        reads = synthetic_reads(scene, SyntheticStreamConfig(fixes=2), rng=29)
        fixes = list(runner.run(iter(reads)))
        final = fixes[-1].provenance
        assert final.spectral_path == "batch"
        assert final.scalar_fallbacks == ()
        assert final.active_faults == ()
        assert set(final.contributing) == {r.name for r in scene.readers}
        assert final.checkpoint_lineage == ()
        assert final.watermark_s is not None

    def test_chaos_faults_are_stamped(self, deployment):
        scene, dwatch = deployment
        plan = chaos_plan("reader-loss", scene, fixes=3, seed=3)
        injector = FaultInjector(plan, scene_schedules(scene))
        runner = StreamRunner(dwatch)
        runner.fault_probe = injector.active_kinds
        reads = synthetic_reads(scene, SyntheticStreamConfig(fixes=3), rng=30)
        fixes = list(runner.run(injector.inject(reads)))
        stamped = [f for f in fixes if "outage" in f.provenance.active_faults]
        assert stamped  # the outage overlapped at least one fix window

    def test_restored_runner_stamps_lineage(self, deployment):
        scene, dwatch = deployment
        runner = StreamRunner(dwatch)
        reads = synthetic_reads(scene, SyntheticStreamConfig(fixes=2), rng=31)
        list(runner.run(iter(reads)))
        state = checkpoint_state(runner)
        resumed = StreamRunner(dwatch)
        restore_state(resumed, state)
        more = synthetic_reads(scene, SyntheticStreamConfig(fixes=1), rng=32)
        fixes = list(resumed.run(iter(more)))
        expected = (checkpoint_id(state),)
        for fix in fixes:
            assert fix.provenance.checkpoint_lineage == expected
