"""Tests for repro.dsp.doppler."""


import numpy as np
import pytest

from repro.constants import DEFAULT_WAVELENGTH_M
from repro.dsp.doppler import (
    estimate_doppler,
    phase_stream,
    speed_track,
    synthesize_moving_reflection,
)
from repro.errors import EstimationError

DT = 0.1  # the paper's 0.1 s transmission interval


class TestEstimateDoppler:
    def test_recovers_known_speed(self):
        stream = synthesize_moving_reflection(
            0.5, 50, DT, DEFAULT_WAVELENGTH_M
        )
        estimate = estimate_doppler(stream, DT, DEFAULT_WAVELENGTH_M)
        assert estimate.radial_speed_mps == pytest.approx(0.5, rel=0.02)
        assert estimate.coherence > 0.99

    def test_sign_distinguishes_direction(self):
        approaching = synthesize_moving_reflection(0.4, 50, DT, DEFAULT_WAVELENGTH_M)
        receding = synthesize_moving_reflection(-0.4, 50, DT, DEFAULT_WAVELENGTH_M)
        est_a = estimate_doppler(approaching, DT, DEFAULT_WAVELENGTH_M)
        est_r = estimate_doppler(receding, DT, DEFAULT_WAVELENGTH_M)
        assert est_a.radial_speed_mps > 0 > est_r.radial_speed_mps

    def test_stationary_target_zero_speed(self):
        stream = synthesize_moving_reflection(0.0, 50, DT, DEFAULT_WAVELENGTH_M)
        estimate = estimate_doppler(stream, DT, DEFAULT_WAVELENGTH_M)
        assert abs(estimate.radial_speed_mps) < 1e-9

    def test_noise_lowers_coherence(self, rng):
        noisy = synthesize_moving_reflection(
            0.5, 50, DT, DEFAULT_WAVELENGTH_M, noise_std=1.5, rng=rng
        )
        estimate = estimate_doppler(noisy, DT, DEFAULT_WAVELENGTH_M)
        assert estimate.coherence < 0.8

    def test_backscatter_doubles_shift(self):
        stream = synthesize_moving_reflection(
            0.5, 50, DT, DEFAULT_WAVELENGTH_M, backscatter=False
        )
        one_way = estimate_doppler(
            stream, DT, DEFAULT_WAVELENGTH_M, backscatter=False
        )
        two_way = estimate_doppler(
            stream, DT, DEFAULT_WAVELENGTH_M, backscatter=True
        )
        assert one_way.radial_speed_mps == pytest.approx(
            2 * two_way.radial_speed_mps
        )

    def test_aliasing_limit(self):
        # Half a wavelength per interval aliases; below it we are fine.
        max_unaliased = DEFAULT_WAVELENGTH_M / (2 * 2 * DT) * 0.9
        stream = synthesize_moving_reflection(
            max_unaliased, 60, DT, DEFAULT_WAVELENGTH_M
        )
        estimate = estimate_doppler(stream, DT, DEFAULT_WAVELENGTH_M)
        assert estimate.radial_speed_mps == pytest.approx(max_unaliased, rel=0.05)

    def test_too_short_stream_rejected(self):
        with pytest.raises(EstimationError):
            estimate_doppler(np.ones(2, dtype=complex), DT, DEFAULT_WAVELENGTH_M)

    def test_silent_stream_rejected(self):
        with pytest.raises(EstimationError):
            estimate_doppler(np.zeros(10, dtype=complex), DT, DEFAULT_WAVELENGTH_M)


class TestSpeedTrack:
    def test_picks_largest_radial_projection(self):
        streams = [
            synthesize_moving_reflection(0.2, 50, DT, DEFAULT_WAVELENGTH_M),
            synthesize_moving_reflection(0.45, 50, DT, DEFAULT_WAVELENGTH_M),
            synthesize_moving_reflection(0.1, 50, DT, DEFAULT_WAVELENGTH_M),
        ]
        speed, coherence = speed_track(streams, DT, DEFAULT_WAVELENGTH_M)
        assert speed == pytest.approx(0.45, rel=0.05)
        assert coherence > 0.9

    def test_all_unreliable_raises(self, rng):
        junk = [
            (rng.normal(size=30) + 1j * rng.normal(size=30)) for _ in range(3)
        ]
        with pytest.raises(EstimationError):
            speed_track(junk, DT, DEFAULT_WAVELENGTH_M)


class TestPhaseStream:
    def test_shape_and_bounds(self, three_path_channel):
        x = three_path_channel.snapshots(20, rng=1)
        phases = phase_stream(x, antenna=0)
        assert phases.shape == (20,)
        assert np.all(np.abs(phases) <= np.pi)

    def test_invalid_antenna_rejected(self, three_path_channel):
        x = three_path_channel.snapshots(5, rng=2)
        with pytest.raises(EstimationError):
            phase_stream(x, antenna=8)
