"""Watchdog: hung-shard detection, kill+restart, lineage and budgets.

One module-scoped scenario pays the pipeline-build cost once: a
single-deployment thread fleet is fed halfway, checkpointed, then
*stalled* (the worker wedges but neither its thread nor its state
dies) — the watchdog's scan must declare the hang, recycle the shard
through the supervisor's restart budget, and the resumed shard must
finish the stream with its lineage chained through the checkpoint.
"""

import time

import pytest

from repro.errors import ShardError
from repro.serve.registry import DeploymentRegistry, DeploymentSpec
from repro.serve.supervisor import ShardSupervisor
from repro.serve.watchdog import ShardWatchdog
from repro.sim.environments import hall_scene
from repro.stream.synthetic import SyntheticStreamConfig, synthetic_reads

SPEC = DeploymentSpec(
    deployment_id="dep-w",
    seed=17,
    num_tags=3,
    num_antennas=3,
    num_readers=2,
)


def _reads():
    scene = hall_scene(
        rng=SPEC.seed,
        num_tags=SPEC.num_tags,
        num_antennas=SPEC.num_antennas,
        num_readers=SPEC.num_readers,
    )
    return list(
        synthetic_reads(scene, SyntheticStreamConfig(fixes=3), rng=SPEC.seed + 3)
    )


@pytest.fixture(scope="module")
def hang_drill(tmp_path_factory):
    registry = DeploymentRegistry()
    registry.register(SPEC)
    supervisor = ShardSupervisor(
        registry,
        checkpoint_dir=tmp_path_factory.mktemp("ckpt"),
        workers="thread",
    )
    watchdog = ShardWatchdog(supervisor, hang_after_s=0.3)
    supervisor.start()
    result = {"supervisor": supervisor, "watchdog": watchdog}
    try:
        reads = _reads()
        half = len(reads) // 2
        supervisor.route(SPEC.deployment_id, reads[:half])
        result["checkpoint_id"] = supervisor.checkpoint(SPEC.deployment_id)
        shard = supervisor.shard(SPEC.deployment_id)
        shard.stall(30.0)
        # Give the stalled worker a beat to freeze its heartbeat, and
        # capture the hallmark of a *hang*: live state, no failure.
        time.sleep(0.6)
        result["state_during_stall"] = shard.state
        result["failure_during_stall"] = shard.failure
        result["age_during_stall"] = shard.liveness_age()
        # Deterministic scan instead of the background loop.
        recycled = []
        deadline = time.monotonic() + 15.0
        while not recycled and time.monotonic() < deadline:
            recycled = watchdog.scan_once()
            time.sleep(0.05)
        result["recycled"] = recycled
        # The replacement must finish the stream.
        deadline = time.monotonic() + 15.0
        while (
            supervisor.shard(SPEC.deployment_id).state != "live"
            and time.monotonic() < deadline
        ):
            time.sleep(0.05)
        supervisor.route(SPEC.deployment_id, reads[half:])
    finally:
        supervisor.stop(drain=True)
    result["records"] = supervisor.shard(SPEC.deployment_id).fix_records()
    result["health"] = supervisor.health_document()
    return result


class TestHangDetection:
    def test_stalled_shard_reads_as_live_not_failed(self, hang_drill):
        assert hang_drill["state_during_stall"] == "live"
        assert hang_drill["failure_during_stall"] is None

    def test_liveness_age_grows_past_deadline(self, hang_drill):
        assert hang_drill["age_during_stall"] > 0.3

    def test_watchdog_recycles_the_hung_shard(self, hang_drill):
        assert hang_drill["recycled"] == [SPEC.deployment_id]
        assert hang_drill["watchdog"].hangs_declared >= 1
        assert hang_drill["watchdog"].restarts_triggered >= 1

    def test_fixes_resume_after_recycle(self, hang_drill):
        # The pre-stall fix lives on the recycled shard; the restored
        # shard still owns the rest of the stream.
        assert len(hang_drill["records"]) >= 2

    def test_lineage_chains_through_the_checkpoint(self, hang_drill):
        lineages = [
            record["provenance"]["checkpoint_lineage"]
            for record in hang_drill["records"]
        ]
        assert any(
            hang_drill["checkpoint_id"] in lineage for lineage in lineages
        )

    def test_restart_is_accounted_in_health(self, hang_drill):
        deployment = hang_drill["health"]["deployments"][SPEC.deployment_id]
        assert deployment["restarts"] >= 1


class TestWatchdogLoop:
    def test_background_loop_starts_and_stops(self):
        registry = DeploymentRegistry()
        supervisor = ShardSupervisor(registry)
        watchdog = ShardWatchdog(supervisor, hang_after_s=1.0)
        with watchdog:
            time.sleep(0.05)
        assert watchdog.scans >= 1

    def test_supervisor_owns_a_watchdog_when_configured(self):
        registry = DeploymentRegistry()
        supervisor = ShardSupervisor(registry, hang_after_s=1.0)
        supervisor.start()
        try:
            assert supervisor.watchdog is not None
        finally:
            supervisor.stop()
        assert supervisor.watchdog is None

    def test_invalid_deadline_rejected(self):
        registry = DeploymentRegistry()
        supervisor = ShardSupervisor(registry)
        with pytest.raises(ShardError):
            ShardWatchdog(supervisor, hang_after_s=0.0)
