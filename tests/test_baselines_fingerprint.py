"""Tests for the RSSI fingerprinting baseline."""

import pytest

from repro.baselines.fingerprint import FingerprintLocalizer, rssi_features
from repro.errors import ConfigurationError, LocalizationError
from repro.geometry.point import Point
from repro.sim.environments import hall_scene
from repro.sim.measurement import MeasurementSession
from repro.sim.target import human_target


@pytest.fixture(scope="module")
def deployment():
    scene = hall_scene(rng=61)
    session = MeasurementSession(scene, rng=62)
    localizer = FingerprintLocalizer(training_spacing=1.0, samples_per_location=1)
    locations = [
        Point(x, y)
        for x in (1.5, 3.5, 5.5)
        for y in (2.0, 5.0, 8.0)
    ]
    localizer.train(scene, session, locations=locations)
    return scene, session, localizer, locations


class TestFeatures:
    def test_vector_covers_all_pairs(self, deployment):
        scene, session, _, _ = deployment
        vector, keys = rssi_features(session.capture())
        assert vector.shape == (len(keys),)
        assert len(keys) > 0

    def test_fixed_key_order_respected(self, deployment):
        scene, session, _, _ = deployment
        _, keys = rssi_features(session.capture())
        reordered = list(reversed(keys))
        vector, out_keys = rssi_features(session.capture(), reordered)
        assert out_keys == reordered
        assert vector.shape == (len(reordered),)

    def test_missing_pairs_floor(self, deployment):
        scene, session, _, _ = deployment
        fake_keys = [("ghost-reader", "F" * 24)]
        vector, _ = rssi_features(session.capture(), fake_keys)
        assert vector[0] == -100.0


class TestTrainingAndMatching:
    def test_training_capture_count(self, deployment):
        _, _, localizer, locations = deployment
        assert localizer.training_captures == len(locations)

    def test_matches_trained_location(self, deployment):
        scene, session, localizer, locations = deployment
        target = human_target(locations[4])
        estimate = localizer.localize(session.capture([target]))
        assert estimate.distance_to(locations[4]) < 1.5

    def test_accuracy_bounded_by_grid(self, deployment):
        scene, session, localizer, _ = deployment
        target = human_target(Point(3.0, 4.5))
        estimate = localizer.localize(session.capture([target]))
        # Coarse but sane: within a couple of grid cells.
        assert estimate.distance_to(target.position) < 3.0

    def test_untrained_rejects(self, deployment):
        scene, session, _, _ = deployment
        fresh = FingerprintLocalizer()
        with pytest.raises(LocalizationError):
            fresh.localize(session.capture())

    def test_environment_change_degrades_match(self, deployment):
        # The paper's core complaint: move furniture and the database
        # goes stale.  Re-captured signatures in a modified scene must
        # sit farther from the database than same-scene captures.
        import numpy as np

        scene, session, localizer, locations = deployment
        from repro.sim.environments import hall_scene

        changed_scene = hall_scene(rng=61, num_reflectors=6)
        changed_session = MeasurementSession(changed_scene, rng=63)

        target = human_target(locations[4])
        same = session.capture([target])
        changed = changed_session.capture([target])
        same_vec, keys = rssi_features(same, localizer._keys)
        changed_vec, _ = rssi_features(changed, keys)
        db = localizer._signatures
        same_distance = np.min(np.linalg.norm(db - same_vec, axis=1))
        changed_distance = np.min(np.linalg.norm(db - changed_vec, axis=1))
        assert changed_distance > same_distance


class TestValidation:
    def test_bad_k_rejected(self):
        with pytest.raises(ConfigurationError):
            FingerprintLocalizer(k=0)

    def test_empty_training_rejected(self, deployment):
        scene, session, _, _ = deployment
        fresh = FingerprintLocalizer()
        with pytest.raises(ConfigurationError):
            fresh.train(scene, session, locations=[])
