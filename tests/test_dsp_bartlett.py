"""Tests for repro.dsp.bartlett (align-and-sum power, Eq. 12-13)."""

import math

import numpy as np
import pytest

from repro.dsp.bartlett import bartlett_power_at, bartlett_power_spectrum
from repro.errors import EstimationError
from repro.rf.channel import MultipathChannel

from tests.conftest import make_path


class TestBartlettPower:
    def test_single_path_power_recovered(self, array):
        gain = 0.01
        channel = MultipathChannel(array=array, paths=[make_path(array, 80.0, gain)])
        x = channel.snapshots(200, snr_db=40, rng=0)
        power = bartlett_power_at(
            x, math.radians(80.0), array.spacing_m, array.wavelength_m
        )
        assert power == pytest.approx(gain**2, rel=0.1)

    def test_matches_direct_equation(self, array, three_path_channel):
        # The covariance formulation must equal the paper's literal
        # "weight, sum, square, average" form.
        x = three_path_channel.snapshots(20, snr_db=25, rng=1)
        theta = math.radians(64.0)
        m = x.shape[0]
        omega = (
            np.arange(m)
            * (2 * math.pi * array.spacing_m / array.wavelength_m)
            * math.cos(theta)
        )
        aligned = (x * np.exp(1j * omega)[:, None]).sum(axis=0)
        direct = float(np.mean(np.abs(aligned) ** 2)) / m**2
        assert bartlett_power_at(
            x, theta, array.spacing_m, array.wavelength_m
        ) == pytest.approx(direct, rel=1e-9)

    def test_power_ordering_tracks_gain_ordering(self, array, three_path_channel):
        x = three_path_channel.snapshots(200, snr_db=30, rng=2)
        spectrum = bartlett_power_spectrum(x, array.spacing_m, array.wavelength_m)
        p50 = spectrum.max_in_window(math.radians(50), math.radians(3))
        p90 = spectrum.max_in_window(math.radians(90), math.radians(3))
        p130 = spectrum.max_in_window(math.radians(130), math.radians(3))
        assert p50 > p90 > p130

    def test_nonnegative_everywhere(self, array, three_path_channel):
        x = three_path_channel.snapshots(30, rng=3)
        spectrum = bartlett_power_spectrum(x, array.spacing_m, array.wavelength_m)
        assert np.all(spectrum.values >= 0.0)

    def test_rejects_1d_input(self, array):
        with pytest.raises(EstimationError):
            bartlett_power_spectrum(
                np.zeros(8), array.spacing_m, array.wavelength_m
            )
