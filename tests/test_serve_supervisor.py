"""Shard supervisor: routing isolation, fleet health, crash auto-restart.

One module-scoped scenario pays the pipeline-build cost once: a
two-deployment thread-mode fleet with differing reader rosters is fed
directly through ``route()``, one shard is checkpointed and killed
mid-load, further routing must auto-restart it from the checkpoint,
and the drained fleet's fixes/health/lineage are asserted from the
collected result.
"""

import pytest

from repro.errors import RegistryError, ShardError
from repro.serve.registry import DeploymentRegistry, DeploymentSpec
from repro.serve.supervisor import ShardSupervisor
from repro.sim.environments import hall_scene
from repro.stream.synthetic import SyntheticStreamConfig, synthetic_reads

FIXES = 3

SPECS = (
    DeploymentSpec(
        deployment_id="dep-a",
        seed=11,
        num_tags=3,
        num_antennas=3,
        num_readers=2,
    ),
    DeploymentSpec(
        deployment_id="dep-b",
        seed=31,
        num_tags=3,
        num_antennas=3,
        num_readers=3,
    ),
)


def reads_for(spec):
    scene = hall_scene(
        rng=spec.seed,
        num_tags=spec.num_tags,
        num_antennas=spec.num_antennas,
        num_readers=spec.num_readers,
    )
    return list(
        synthetic_reads(
            scene, SyntheticStreamConfig(fixes=FIXES), rng=spec.seed + 3
        )
    )


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    """Run the whole scenario once; tests assert on the outcome."""
    registry = DeploymentRegistry()
    for spec in SPECS:
        registry.register(spec)
    supervisor = ShardSupervisor(
        registry,
        checkpoint_dir=tmp_path_factory.mktemp("checkpoints"),
        workers="thread",
    )
    supervisor.start()
    result = {"registry": registry, "supervisor": supervisor}
    try:
        reads = {spec.deployment_id: reads_for(spec) for spec in SPECS}
        # dep-b streams straight through; dep-a is killed halfway.
        supervisor.route("dep-b", reads["dep-b"])
        half = len(reads["dep-a"]) // 2
        supervisor.route("dep-a", reads["dep-a"][:half])
        result["checkpoint_id"] = supervisor.checkpoint("dep-a")
        supervisor.kill("dep-a")
        result["state_after_kill"] = supervisor.shard("dep-a").state
        # Routing to the dead shard must transparently restart it.
        supervisor.route("dep-a", reads["dep-a"][half:])
    finally:
        supervisor.stop(drain=True)
    result["health"] = supervisor.health_document()
    result["records"] = {
        spec.deployment_id: supervisor.shard(spec.deployment_id).fix_records()
        for spec in SPECS
    }
    return result


class TestFleetRouting:
    def test_both_deployments_emit_fixes(self, fleet):
        # dep-b never crashed: it must deliver every window.  dep-a's
        # pre-kill fix lives on the replaced shard; the restored shard
        # still owns the rest of the stream.
        assert len(fleet["records"]["dep-b"]) == FIXES
        assert len(fleet["records"]["dep-a"]) >= FIXES - 1

    def test_zero_cross_shard_leakage(self, fleet):
        for spec in SPECS:
            roster = set(spec.reader_names)
            for record in fleet["records"][spec.deployment_id]:
                named = {
                    reader["name"]
                    for reader in record["provenance"]["readers"]
                }
                assert named <= roster, (
                    f"{spec.deployment_id} fix {record['index']} names "
                    f"foreign readers {sorted(named - roster)}"
                )

    def test_unknown_deployment_raises_registry_error(self, fleet):
        with pytest.raises(RegistryError, match="unknown deployment"):
            fleet["supervisor"].route("ghost", [])


class TestCrashRestart:
    def test_kill_marks_shard_failed(self, fleet):
        assert fleet["state_after_kill"] == "failed"

    def test_restart_restores_from_checkpoint_with_lineage(self, fleet):
        lineages = [
            record["provenance"]["checkpoint_lineage"]
            for record in fleet["records"]["dep-a"]
        ]
        assert any(fleet["checkpoint_id"] in lineage for lineage in lineages)

    def test_restart_recorded_in_registry(self, fleet):
        assert fleet["registry"].snapshot()["dep-a"]["restarts"] >= 1


class TestFleetHealth:
    def test_schema_two_fleet_document(self, fleet):
        health = fleet["health"]
        assert health["schema"] == 2
        assert set(health["deployments"]) == {"dep-a", "dep-b"}
        assert health["total"] == 2

    def test_per_deployment_entries(self, fleet):
        entry = fleet["health"]["deployments"]["dep-b"]
        assert entry["fixes_emitted"] == FIXES
        assert entry["readers"] == list(SPECS[1].reader_names)
        assert entry["environment"] == "hall"


class TestSupervisorGuards:
    def test_unknown_worker_mode_rejected(self):
        with pytest.raises(ShardError, match="worker mode"):
            ShardSupervisor(DeploymentRegistry(), workers="fiber")
