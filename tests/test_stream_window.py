"""Event-time window assembly: reassembly, lateness, torn sweeps."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, StreamError
from repro.rfid.hub import AntennaHub
from repro.sim.environments import hall_scene
from repro.sim.measurement import MeasurementConfig, MeasurementSession
from repro.stream.events import TagRead
from repro.stream.synthetic import measurement_reads
from repro.stream.window import SnapshotWindow, WindowAssembler, WindowConfig

NUM_ANTENNAS = 4
SCHEDULE = AntennaHub(num_antennas=NUM_ANTENNAS).sweep_schedule()
SWEEP_S = SCHEDULE.duration
SLOT_S = AntennaHub(num_antennas=NUM_ANTENNAS).slot_duration_s


def make_assembler(sweeps_per_window=2, lateness_s=None):
    return WindowAssembler(
        {"r": SCHEDULE},
        WindowConfig(sweeps_per_window=sweeps_per_window, lateness_s=lateness_s),
    )


def sweep_reads(sweep_index, epc="tag", value=None):
    """One full sweep of reads for ``epc``, slot-timestamped."""
    return [
        TagRead(
            reader_name="r",
            epc=epc,
            time_s=sweep_index * SWEEP_S + m * SLOT_S,
            iq=value if value is not None else complex(sweep_index, m),
        )
        for m in range(NUM_ANTENNAS)
    ]


class TestConfig:
    def test_rejects_empty_window(self):
        with pytest.raises(ConfigurationError):
            WindowConfig(sweeps_per_window=0)

    def test_rejects_negative_lateness(self):
        with pytest.raises(ConfigurationError):
            WindowConfig(lateness_s=-0.1)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ConfigurationError):
            WindowConfig(window_duration_s=0.0)

    def test_assembler_needs_readers(self):
        with pytest.raises(ConfigurationError):
            WindowAssembler({})


class TestAssembly:
    def test_in_order_stream_emits_complete_windows(self):
        assembler = make_assembler(sweeps_per_window=2)
        emitted = []
        for sweep in range(6):
            for read in sweep_reads(sweep):
                emitted.extend(assembler.push(read))
        # Watermark (one sweep of lateness by default) has passed the
        # first two windows; window 2 is still pending.
        assert [w.index for w in emitted] == [0, 1]
        window = emitted[0]
        assert isinstance(window, SnapshotWindow)
        assert window.sweeps == 2
        matrix = window.measurement.matrix("r", "tag")
        assert matrix.shape == (NUM_ANTENNAS, 2)
        # Column t, row m carries the sample of sweep t, antenna m.
        expected = np.array(
            [[complex(t, m) for t in range(2)] for m in range(NUM_ANTENNAS)]
        )
        np.testing.assert_array_equal(matrix, expected)

    def test_flush_emits_pending_windows(self):
        assembler = make_assembler(sweeps_per_window=2)
        for read in sweep_reads(0):
            assembler.push(read)
        windows = assembler.flush()
        assert [w.index for w in windows] == [0]
        assert windows[0].sweeps == 1  # only one sweep arrived

    def test_final_slot_boundary_read_stays_in_its_sweep(self):
        # A read stamped exactly at a sweep boundary belongs to the
        # *preceding* sweep's final antenna only if it lands inside the
        # half-open slot; exactly on the boundary starts the next sweep.
        assembler = make_assembler(sweeps_per_window=1)
        boundary = TagRead(reader_name="r", epc="tag", time_s=SWEEP_S, iq=1j)
        assembler.push(boundary)
        windows = assembler.flush()
        # One sweep (index 1) with one antenna: torn, so no matrix.
        assert windows == [] or all(w.sweeps == 0 for w in windows)
        assert assembler.torn_sweeps == 1

    def test_unknown_reader_raises_stream_error(self):
        assembler = make_assembler()
        with pytest.raises(StreamError, match="unknown reader"):
            assembler.push(
                TagRead(reader_name="ghost", epc="tag", time_s=0.0, iq=0j)
            )

    def test_negative_time_raises_stream_error(self):
        assembler = make_assembler()
        with pytest.raises(StreamError, match="negative"):
            assembler.push(
                TagRead(reader_name="r", epc="tag", time_s=-1e-3, iq=0j)
            )

    def test_duplicate_slot_reads_are_counted(self):
        assembler = make_assembler()
        first = sweep_reads(0)[0]
        assembler.push(first)
        assembler.push(first)
        assert assembler.duplicate_reads == 1


class TestLateness:
    def test_out_of_order_within_bound_is_admitted(self):
        assembler = make_assembler(sweeps_per_window=2, lateness_s=SWEEP_S)
        reads = sweep_reads(0) + sweep_reads(1)
        # Deliver the first sweep's reads *after* the second sweep's.
        reordered = reads[NUM_ANTENNAS:] + reads[:NUM_ANTENNAS]
        emitted = []
        for read in reordered:
            emitted.extend(assembler.push(read))
        emitted.extend(assembler.flush())
        assert assembler.late_reads == 0
        assert [w.index for w in emitted] == [0]
        assert emitted[0].sweeps == 2

    def test_reads_beyond_lateness_bound_are_dropped_and_counted(self):
        assembler = make_assembler(sweeps_per_window=1, lateness_s=0.0)
        emitted = []
        for read in sweep_reads(0) + sweep_reads(1):
            emitted.extend(assembler.push(read))
        # Window 0 has been emitted; a straggler from it is late.
        assert [w.index for w in emitted] == [0]
        straggler = sweep_reads(0)[1]
        assert assembler.push(straggler) == []
        assert assembler.late_reads == 1
        # Late reads never mutate already-emitted windows.
        assert emitted[0].measurement.matrix("r", "tag").shape == (NUM_ANTENNAS, 1)

    def test_torn_sweeps_are_counted_and_excluded(self):
        assembler = make_assembler(sweeps_per_window=2)
        reads = sweep_reads(0) + sweep_reads(1)[:-1]  # sweep 1 misses a slot
        for read in reads:
            assembler.push(read)
        windows = assembler.flush()
        assert windows[0].sweeps == 1
        assert windows[0].torn_sweeps == 1
        assert assembler.torn_sweeps == 1


class TestMeasurementRoundtrip:
    def test_synthetic_reads_reassemble_the_exact_capture(self):
        # The acid test: flatten a real multi-reader capture into
        # slot-timestamped reads, reassemble, and demand bit-identical
        # snapshot matrices.
        scene = hall_scene(rng=3, num_tags=5, num_antennas=6)
        session = MeasurementSession(
            scene, MeasurementConfig(num_snapshots=4), rng=4
        )
        measurement = session.capture()
        assembler = WindowAssembler.for_readers(
            {reader.name: reader for reader in scene.readers},
            WindowConfig(sweeps_per_window=4),
        )
        for read in measurement_reads(measurement, scene, 0.0):
            assembler.push(read)
        windows = assembler.flush()
        assert len(windows) == 1
        rebuilt = windows[0].measurement
        assert assembler.torn_sweeps == 0
        assert sorted(rebuilt.readers()) == sorted(measurement.readers())
        for reader_name in measurement.readers():
            for epc in measurement.tags_for(reader_name):
                np.testing.assert_array_equal(
                    rebuilt.matrix(reader_name, epc),
                    measurement.matrix(reader_name, epc),
                )
