"""Tests for repro.geometry.segment."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.segment import Segment


class TestBasics:
    def test_length(self):
        assert Segment(Point(0, 0), Point(3, 4)).length() == 5

    def test_direction_unit(self):
        direction = Segment(Point(0, 0), Point(0, 9)).direction()
        assert direction == Point(0, 1)

    def test_degenerate_direction_raises(self):
        with pytest.raises(GeometryError):
            Segment(Point(1, 1), Point(1, 1)).direction()

    def test_midpoint(self):
        assert Segment(Point(0, 0), Point(2, 2)).midpoint() == Point(1, 1)

    def test_point_at_parameter(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        assert segment.point_at(0.25) == Point(2.5, 0)

    def test_angle(self):
        assert Segment(Point(0, 0), Point(1, 1)).angle() == pytest.approx(math.pi / 4)


class TestClosestPoint:
    def test_projection_inside(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        assert segment.closest_point(Point(5, 3)) == Point(5, 0)

    def test_clamps_to_start(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        assert segment.closest_point(Point(-5, 3)) == Point(0, 0)

    def test_clamps_to_end(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        assert segment.closest_point(Point(15, 3)) == Point(10, 0)

    def test_distance_to_point(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        assert segment.distance_to_point(Point(5, 3)) == 3

    def test_degenerate_closest_is_endpoint(self):
        segment = Segment(Point(1, 1), Point(1, 1))
        assert segment.closest_point(Point(4, 5)) == Point(1, 1)


class TestIntersection:
    def test_crossing(self):
        a = Segment(Point(0, 0), Point(2, 2))
        b = Segment(Point(0, 2), Point(2, 0))
        crossing = a.intersection(b)
        assert crossing.x == pytest.approx(1.0)
        assert crossing.y == pytest.approx(1.0)

    def test_parallel_returns_none(self):
        a = Segment(Point(0, 0), Point(1, 0))
        b = Segment(Point(0, 1), Point(1, 1))
        assert a.intersection(b) is None

    def test_nonoverlapping_returns_none(self):
        a = Segment(Point(0, 0), Point(1, 0))
        b = Segment(Point(5, -1), Point(5, 1))
        assert a.intersection(b) is None

    def test_touching_at_endpoint(self):
        a = Segment(Point(0, 0), Point(1, 1))
        b = Segment(Point(1, 1), Point(2, 0))
        crossing = a.intersection(b)
        assert crossing is not None
        assert crossing.x == pytest.approx(1.0)

    def test_collinear_overlap_returns_none(self):
        a = Segment(Point(0, 0), Point(2, 0))
        b = Segment(Point(1, 0), Point(3, 0))
        assert a.intersection(b) is None


class TestProjectParameter:
    def test_unclamped_value(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        assert segment.project_parameter(Point(15, 2)) == pytest.approx(1.5)

    def test_degenerate_raises(self):
        with pytest.raises(GeometryError):
            Segment(Point(0, 0), Point(0, 0)).project_parameter(Point(1, 1))
