"""Tests for repro.rfid.gen2 (slotted-ALOHA inventory)."""

import pytest

from repro.errors import ProtocolError
from repro.geometry.point import Point
from repro.rfid.gen2 import Gen2Inventory, SlotOutcome
from repro.rfid.tag import Tag


def make_tags(count):
    return [Tag(position=Point(0, i)) for i in range(count)]


class TestSingleRound:
    def test_slot_count_is_two_to_q(self):
        inventory = Gen2Inventory(initial_q=3, rng=1)
        round_result = inventory.run_round(make_tags(5))
        assert len(round_result.outcomes) == 8

    def test_accounting_consistent(self):
        inventory = Gen2Inventory(initial_q=4, rng=2)
        tags = make_tags(10)
        round_result = inventory.run_round(tags)
        singles = sum(
            1 for o in round_result.outcomes if o is SlotOutcome.SINGLETON
        )
        assert singles == len(round_result.reads)
        assert (
            round_result.num_empty
            + round_result.num_collisions
            + singles
            == len(round_result.outcomes)
        )

    def test_reads_carry_valid_frames(self):
        from repro.rfid.epc import validate_epc_frame

        inventory = Gen2Inventory(initial_q=4, rng=3)
        round_result = inventory.run_round(make_tags(6))
        for read in round_result.reads:
            assert validate_epc_frame(read.frame)
            assert 0 <= read.rn16 < 2**16

    def test_timestamps_increase(self):
        inventory = Gen2Inventory(initial_q=4, rng=4)
        round_result = inventory.run_round(make_tags(8))
        times = [read.timestamp_s for read in round_result.reads]
        assert times == sorted(times)

    def test_q_zero_single_tag_always_read(self):
        inventory = Gen2Inventory(initial_q=0, rng=5)
        round_result = inventory.run_round(make_tags(1))
        assert len(round_result.reads) == 1

    def test_q_zero_two_tags_always_collide(self):
        inventory = Gen2Inventory(initial_q=0, rng=6)
        round_result = inventory.run_round(make_tags(2))
        assert round_result.num_collisions == 1
        assert not round_result.reads


class TestQAdaptation:
    def test_q_grows_under_collisions(self):
        inventory = Gen2Inventory(initial_q=1, q_step=0.5, rng=7)
        inventory.run_round(make_tags(30))
        assert inventory.current_q > 1

    def test_q_shrinks_when_empty(self):
        inventory = Gen2Inventory(initial_q=8, q_step=0.5, rng=8)
        inventory.run_round(make_tags(1))
        assert inventory.current_q < 8

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ProtocolError):
            Gen2Inventory(initial_q=16)
        with pytest.raises(ProtocolError):
            Gen2Inventory(q_step=0.0)


class TestInventoryAll:
    def test_reads_every_tag(self):
        inventory = Gen2Inventory(rng=9)
        tags = make_tags(21)
        rounds = inventory.inventory_all(tags)
        read_epcs = {read.epc for r in rounds for read in r.reads}
        assert read_epcs == {tag.epc for tag in tags}

    def test_duration_accumulates(self):
        inventory = Gen2Inventory(rng=10)
        rounds = inventory.inventory_all(make_tags(10))
        assert all(r.duration_s > 0 for r in rounds)

    def test_no_tags_no_rounds(self):
        inventory = Gen2Inventory(rng=11)
        assert inventory.inventory_all([]) == []
