"""Tests for repro.experiments.metrics and the deployment harness."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.metrics import (
    LocalizationResult,
    angular_error_deg,
    coverage_rate,
    detection_rate,
)


class TestLocalizationResult:
    def test_coverage(self):
        result = LocalizationResult(attempted=10, errors=[0.1] * 7)
        assert result.covered == 7
        assert result.coverage == pytest.approx(0.7)

    def test_summary_delegates(self):
        result = LocalizationResult(attempted=4, errors=[0.1, 0.2, 0.3, 0.4])
        assert result.summary().median == pytest.approx(0.25)

    def test_cdf_samples_sorted(self):
        result = LocalizationResult(attempted=3, errors=[0.3, 0.1, 0.2])
        assert list(result.cdf_samples()) == [0.1, 0.2, 0.3]

    def test_more_errors_than_attempts_rejected(self):
        with pytest.raises(ConfigurationError):
            LocalizationResult(attempted=1, errors=[0.1, 0.2])

    def test_zero_attempts_coverage(self):
        assert LocalizationResult(attempted=0).coverage == 0.0


class TestRates:
    def test_coverage_rate(self):
        assert coverage_rate(3, 4) == pytest.approx(0.75)

    def test_detection_rate_alias(self):
        assert detection_rate(1, 2) == coverage_rate(1, 2)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            coverage_rate(5, 4)
        with pytest.raises(ConfigurationError):
            coverage_rate(0, 0)


class TestAngularError:
    def test_degrees_conversion(self):
        assert angular_error_deg(np.pi / 2, np.pi / 4) == pytest.approx(45.0)

    def test_symmetric(self):
        assert angular_error_deg(0.2, 0.5) == angular_error_deg(0.5, 0.2)
