"""Tests for repro.rfid.hub (antenna hub TDM)."""

import pytest

from repro.constants import ANTENNA_TDM_SLOT_S
from repro.errors import ConfigurationError
from repro.rfid.hub import AntennaHub


class TestAntennaHub:
    def test_sweep_duration(self):
        hub = AntennaHub(num_antennas=8)
        assert hub.sweep_duration_s == pytest.approx(8 * ANTENNA_TDM_SLOT_S)

    def test_schedule_covers_all_antennas_in_order(self):
        hub = AntennaHub(num_antennas=4)
        schedule = hub.sweep_schedule()
        assert [slot[0] for slot in schedule.slots] == [0, 1, 2, 3]

    def test_slots_are_contiguous(self):
        hub = AntennaHub(num_antennas=4)
        schedule = hub.sweep_schedule()
        for (_, _, end), (_, start, _) in zip(schedule.slots, schedule.slots[1:]):
            assert end == pytest.approx(start)

    def test_antenna_at_time(self):
        hub = AntennaHub(num_antennas=4)
        schedule = hub.sweep_schedule()
        assert schedule.antenna_at(0.0) == 0
        assert schedule.antenna_at(2.5 * hub.slot_duration_s) == 2

    def test_antenna_at_final_boundary_is_end_inclusive(self):
        # Sweep boundaries land exactly on `duration` (reader timestamps
        # quantize to the slot grid); that instant belongs to the final
        # slot, not outside the sweep.
        hub = AntennaHub(num_antennas=4)
        schedule = hub.sweep_schedule()
        assert schedule.antenna_at(schedule.duration) == 3

    def test_interior_slot_boundaries_stay_half_open(self):
        hub = AntennaHub(num_antennas=4)
        schedule = hub.sweep_schedule()
        # The shared edge between slots 0 and 1 belongs to slot 1.
        assert schedule.antenna_at(hub.slot_duration_s) == 1

    def test_antenna_at_out_of_sweep_raises(self):
        hub = AntennaHub(num_antennas=2)
        schedule = hub.sweep_schedule()
        with pytest.raises(ConfigurationError):
            schedule.antenna_at(schedule.duration + 1.0)

    def test_zero_antennas_rejected(self):
        with pytest.raises(ConfigurationError):
            AntennaHub(num_antennas=0)
