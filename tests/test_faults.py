"""Fault models and the deterministic injector."""

import cmath
import math

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    CHAOS_SCENARIOS,
    DeadAntenna,
    EpcMisread,
    FaultInjector,
    FaultPlan,
    LateBurst,
    OverloadBurst,
    PhaseGlitch,
    ReaderOutage,
    chaos_plan,
    fix_window_s,
    scene_schedules,
)
from repro.rfid.hub import AntennaHub
from repro.stream.events import TagRead


SCHEDULE = AntennaHub(num_antennas=2, slot_duration_s=0.001).sweep_schedule()
SWEEP = SCHEDULE.duration


def grid_reads(reader="r", sweeps=4, epc="tag"):
    """One read per (sweep, antenna slot) on the exact TDM grid."""
    return [
        TagRead(
            reader_name=reader,
            epc=epc,
            time_s=s * SWEEP + start,
            iq=complex(s + 1, antenna),
        )
        for s in range(sweeps)
        for antenna, start, _ in SCHEDULE.slots
    ]


def inject(plan, reads, schedules=None):
    injector = FaultInjector(plan, schedules or {"r": SCHEDULE})
    return list(injector.inject(iter(reads))), injector


class TestModelValidation:
    def test_rejects_empty_interval(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            ReaderOutage(reader="r", start_s=1.0, end_s=1.0)

    def test_rejects_negative_start(self):
        with pytest.raises(ConfigurationError, match="finite"):
            ReaderOutage(reader="r", start_s=-0.5, end_s=1.0)

    def test_rejects_negative_antenna(self):
        with pytest.raises(ConfigurationError, match="antenna"):
            DeadAntenna(reader="r", antenna=-1)

    def test_rejects_bad_probability(self):
        with pytest.raises(ConfigurationError, match="probability"):
            EpcMisread(probability=1.5)

    def test_rejects_non_positive_delay(self):
        with pytest.raises(ConfigurationError, match="delay"):
            LateBurst(start_s=0.0, end_s=1.0, delay_s=0.0)

    def test_rejects_zero_copies(self):
        with pytest.raises(ConfigurationError, match="copy"):
            OverloadBurst(start_s=0.0, end_s=1.0, copies=0)

    def test_rejects_infinite_phase(self):
        with pytest.raises(ConfigurationError, match="finite"):
            PhaseGlitch(reader="r", offset_rad=math.inf)

    def test_empty_plan_is_disabled(self):
        assert not FaultPlan().enabled
        assert FaultPlan(faults=(EpcMisread(probability=0.1),)).enabled


class TestPassthrough:
    def test_empty_plan_yields_identical_objects(self):
        reads = grid_reads()
        out, injector = inject(FaultPlan(), reads)
        # Same objects, not copies: the disabled path must not touch
        # the stream at all (the CLI pins this byte-identical).
        assert all(a is b for a, b in zip(out, reads))
        assert injector.total_injected == 0


class TestReaderOutage:
    def test_drops_only_the_victims_interval(self):
        reads = grid_reads(sweeps=4)
        plan = FaultPlan(
            faults=(ReaderOutage(reader="r", start_s=SWEEP, end_s=2 * SWEEP),)
        )
        out, injector = inject(plan, reads)
        assert injector.stats["dropped_outage"] == len(SCHEDULE.slots)
        assert all(not SWEEP <= r.time_s < 2 * SWEEP for r in out)
        assert len(out) == len(reads) - len(SCHEDULE.slots)

    def test_other_readers_untouched(self):
        reads = grid_reads(reader="other")
        plan = FaultPlan(
            faults=(ReaderOutage(reader="r", start_s=0.0, end_s=100.0),)
        )
        out, _ = inject(plan, reads, schedules={"other": SCHEDULE, "r": SCHEDULE})
        assert len(out) == len(reads)


class TestDeadAntenna:
    def test_drops_exactly_one_slot_per_sweep(self):
        reads = grid_reads(sweeps=3)
        plan = FaultPlan(faults=(DeadAntenna(reader="r", antenna=1),))
        out, injector = inject(plan, reads)
        assert injector.stats["dropped_dead_antenna"] == 3
        # Surviving reads never sit in antenna 1's slot.
        from repro.stream.window import sweep_slot

        for r in out:
            _, antenna = sweep_slot(SCHEDULE, r.time_s)
            assert antenna == 0

    def test_requires_a_schedule_for_the_reader(self):
        plan = FaultPlan(faults=(DeadAntenna(reader="ghost", antenna=0),))
        with pytest.raises(ConfigurationError, match="no TDM schedule"):
            FaultInjector(plan, {"r": SCHEDULE})


class TestPhaseGlitch:
    def test_rotates_phase_preserves_magnitude(self):
        reads = grid_reads(sweeps=1)
        offset = math.pi / 3.0
        plan = FaultPlan(
            faults=(PhaseGlitch(reader="r", offset_rad=offset),)
        )
        out, injector = inject(plan, reads)
        assert injector.stats["phase_glitched"] == len(reads)
        for faulted, clean in zip(out, reads):
            assert faulted.iq == pytest.approx(
                clean.iq * cmath.exp(1j * offset)
            )
            assert abs(faulted.iq) == pytest.approx(abs(clean.iq))
            assert faulted.time_s == clean.time_s


class TestEpcMisread:
    def test_probability_one_corrupts_everything_deterministically(self):
        reads = grid_reads(sweeps=2)
        plan = FaultPlan(faults=(EpcMisread(probability=1.0),), seed=5)
        out1, _ = inject(plan, reads)
        out2, _ = inject(plan, reads)
        assert all(r.epc.startswith("MISREAD-") for r in out1)
        # Same plan, same stream: identical garbage.
        assert [r.epc for r in out1] == [r.epc for r in out2]

    def test_probability_zero_is_clean(self):
        reads = grid_reads(sweeps=1)
        out, injector = inject(
            FaultPlan(faults=(EpcMisread(probability=0.0),)), reads
        )
        assert injector.stats["misread"] == 0
        assert [r.epc for r in out] == [r.epc for r in reads]


class TestLateBurst:
    def test_burst_is_delivered_after_newer_reads(self):
        reads = grid_reads(sweeps=4)
        burst = LateBurst(start_s=SWEEP, end_s=2 * SWEEP, delay_s=SWEEP)
        out, injector = inject(FaultPlan(faults=(burst,)), reads)
        assert injector.stats["delayed"] == len(SCHEDULE.slots)
        assert len(out) == len(reads)  # nothing lost, only reordered
        assert sorted(r.time_s for r in out) == [r.time_s for r in reads]
        held_times = [r.time_s for r in reads if burst.covers(r.time_s)]
        positions = {r.time_s: i for i, r in enumerate(out)}
        # Every held read is delivered after every newer read that
        # passed through while it was buffered.
        newer_pos = max(
            i
            for i, r in enumerate(out)
            if burst.end_s <= r.time_s < burst.release_s
        )
        for t in held_times:
            assert positions[t] > newer_pos

    def test_end_of_stream_flushes_held_reads(self):
        reads = grid_reads(sweeps=2)
        burst = LateBurst(start_s=SWEEP, end_s=2 * SWEEP, delay_s=10.0)
        out, _ = inject(FaultPlan(faults=(burst,)), reads)
        assert len(out) == len(reads)
        # The held tail is flushed last, still carrying original times.
        assert out[-1].time_s == max(r.time_s for r in reads)


class TestOverloadBurst:
    def test_duplicates_reads_in_interval(self):
        reads = grid_reads(sweeps=2)
        plan = FaultPlan(
            faults=(OverloadBurst(start_s=0.0, end_s=SWEEP, copies=2),)
        )
        out, injector = inject(plan, reads)
        assert injector.stats["duplicated"] == 2 * len(SCHEDULE.slots)
        assert len(out) == len(reads) + 2 * len(SCHEDULE.slots)


class TestChaosPlans:
    @pytest.fixture(scope="class")
    def scene(self):
        from repro.sim.environments import hall_scene

        return hall_scene(rng=3, num_readers=3, num_tags=4)

    def test_scenario_names_are_stable(self):
        assert CHAOS_SCENARIOS == (
            "none",
            "reader-loss",
            "dead-antenna",
            "phase-glitch",
            "epc-misread",
            "overload",
            "late-burst",
        )

    def test_every_scenario_builds(self, scene):
        for name in CHAOS_SCENARIOS:
            plan = chaos_plan(name, scene, fixes=6)
            assert plan.enabled == (name != "none")

    def test_unknown_scenario_raises(self, scene):
        with pytest.raises(ConfigurationError, match="unknown chaos scenario"):
            chaos_plan("meteor-strike", scene, fixes=6)

    def test_reader_loss_targets_first_reader_mid_run(self, scene):
        plan = chaos_plan("reader-loss", scene, fixes=6)
        (outage,) = plan.faults
        window = fix_window_s(scene)
        assert outage.reader == sorted(r.name for r in scene.readers)[0]
        assert outage.start_s == pytest.approx(2 * window)
        assert outage.end_s == pytest.approx(4 * window)

    def test_scene_schedules_cover_every_reader(self, scene):
        schedules = scene_schedules(scene)
        assert set(schedules) == {r.name for r in scene.readers}
