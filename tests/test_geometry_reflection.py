"""Tests for repro.geometry.reflection (image method)."""


import pytest

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.reflection import (
    Reflector,
    mirror_point,
    specular_reflection_point,
)
from repro.geometry.segment import Segment


VERTICAL_PLATE = Segment(Point(2.0, -5.0), Point(2.0, 5.0))


class TestMirrorPoint:
    def test_across_vertical_line(self):
        assert mirror_point(Point(0, 1), VERTICAL_PLATE) == Point(4, 1)

    def test_point_on_line_is_fixed(self):
        mirrored = mirror_point(Point(2, 3), VERTICAL_PLATE)
        assert mirrored.x == pytest.approx(2.0)
        assert mirrored.y == pytest.approx(3.0)

    def test_involution(self):
        original = Point(0.7, -1.3)
        twice = mirror_point(mirror_point(original, VERTICAL_PLATE), VERTICAL_PLATE)
        assert twice.x == pytest.approx(original.x)
        assert twice.y == pytest.approx(original.y)


class TestSpecularReflection:
    def test_symmetric_bounce(self):
        bounce = specular_reflection_point(Point(0, 1), Point(0, -1), VERTICAL_PLATE)
        assert bounce is not None
        assert bounce.x == pytest.approx(2.0)
        assert bounce.y == pytest.approx(0.0)

    def test_equal_angles(self):
        source, receiver = Point(0, 2), Point(0, -1)
        bounce = specular_reflection_point(source, receiver, VERTICAL_PLATE)
        direction = VERTICAL_PLATE.direction()
        normal = direction.perpendicular()
        incident = (bounce - source).normalized()
        outgoing = (receiver - bounce).normalized()
        # Reflection preserves the along-plate component and flips the
        # normal component.
        assert incident.dot(direction) == pytest.approx(outgoing.dot(direction))
        assert incident.dot(normal) == pytest.approx(-outgoing.dot(normal))

    def test_opposite_sides_no_reflection(self):
        assert (
            specular_reflection_point(Point(0, 0), Point(4, 0), VERTICAL_PLATE)
            is None
        )

    def test_bounce_off_finite_plate_misses(self):
        short_plate = Segment(Point(2.0, 10.0), Point(2.0, 11.0))
        assert (
            specular_reflection_point(Point(0, 1), Point(0, -1), short_plate) is None
        )

    def test_path_length_equals_image_distance(self):
        source, receiver = Point(0, 1), Point(1, -2)
        bounce = specular_reflection_point(source, receiver, VERTICAL_PLATE)
        via_bounce = source.distance_to(bounce) + bounce.distance_to(receiver)
        image = mirror_point(source, VERTICAL_PLATE)
        assert via_bounce == pytest.approx(image.distance_to(receiver))


class TestReflector:
    def test_invalid_coefficient_rejected(self):
        with pytest.raises(GeometryError):
            Reflector(plate=VERTICAL_PLATE, coefficient=0.0)
        with pytest.raises(GeometryError):
            Reflector(plate=VERTICAL_PLATE, coefficient=1.5)

    def test_bounce_delegates(self):
        reflector = Reflector(plate=VERTICAL_PLATE, coefficient=0.9)
        assert reflector.bounce(Point(0, 1), Point(0, -1)) is not None
