"""Tests for repro.rf.channel."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry.shapes import Circle
from repro.rf.channel import MultipathChannel, merge_channels

from tests.conftest import make_path


class TestArrayResponse:
    def test_single_path_matches_steering(self, array):
        path = make_path(array, 90.0, 0.01)
        channel = MultipathChannel(array=array, paths=[path])
        response = channel.array_response()
        expected = path.gain * array.steering_vector(path.aoa)
        assert np.allclose(response, expected)

    def test_superposition(self, array, three_path_channel):
        total = three_path_channel.array_response()
        parts = sum(
            p.gain * array.steering_vector(p.aoa)
            for p in three_path_channel.paths
        )
        assert np.allclose(total, parts)


class TestSnapshots:
    def test_shape(self, three_path_channel):
        x = three_path_channel.snapshots(16, rng=0)
        assert x.shape == (8, 16)

    def test_deterministic_with_seed(self, three_path_channel):
        a = three_path_channel.snapshots(8, rng=5)
        b = three_path_channel.snapshots(8, rng=5)
        assert np.allclose(a, b)

    def test_phase_offsets_applied_per_antenna(self, three_path_channel):
        offsets = np.linspace(0, 1.0, 8)
        symbols = np.ones(4, dtype=complex)
        clean = three_path_channel.snapshots(
            4, snr_db=300.0, rng=1, source_symbols=symbols
        )
        shifted = three_path_channel.snapshots(
            4, snr_db=300.0, rng=1, phase_offsets=offsets, source_symbols=symbols
        )
        ratio = shifted / clean
        assert np.allclose(np.angle(ratio[:, 0]), offsets, atol=1e-6)

    def test_wrong_offset_shape_rejected(self, three_path_channel):
        with pytest.raises(ConfigurationError):
            three_path_channel.snapshots(4, phase_offsets=np.zeros(3))

    def test_wrong_symbol_shape_rejected(self, three_path_channel):
        with pytest.raises(ConfigurationError):
            three_path_channel.snapshots(4, source_symbols=np.ones(5))

    def test_zero_snapshots_rejected(self, three_path_channel):
        with pytest.raises(ConfigurationError):
            three_path_channel.snapshots(0)

    def test_snr_controls_noise_level(self, three_path_channel):
        clean = three_path_channel.snapshots(512, snr_db=60, rng=2)
        noisy = three_path_channel.snapshots(512, snr_db=0, rng=2)
        # SNR is referenced to the strongest path (|0.01|^2 = 1e-4 per
        # antenna), so 0 dB adds noise of exactly that power on top of
        # the essentially noise-free 60 dB capture.
        added = np.var(noisy) - np.var(clean)
        assert added == pytest.approx(1e-4, rel=0.3)


class TestBlocking:
    def test_with_targets_attenuates_blocked_only(self, array, three_path_channel):
        target_path = three_path_channel.paths[0]
        blocker = Circle(target_path.legs[0].midpoint(), 0.05)
        shadowed = three_path_channel.with_targets([blocker])
        # A small body centred on the ray shadows it by ~7 dB
        # (knife-edge with the tip just past the ray), floored at the
        # configured attenuation.
        assert abs(shadowed.paths[0].gain) < abs(target_path.gain) * 0.55
        assert abs(shadowed.paths[0].gain) >= abs(target_path.gain) * (
            three_path_channel.blocking_attenuation - 1e-12
        )
        # Far-away paths (tens of degrees off) are untouched.
        for original, after in zip(
            three_path_channel.paths[1:], shadowed.paths[1:]
        ):
            assert abs(after.gain) > 0.9 * abs(original.gain)

    def test_fresnel_grazing_partially_shadows(self, array, three_path_channel):
        target_path = three_path_channel.paths[0]
        midpoint = target_path.legs[0].midpoint()
        direction = target_path.legs[0].direction()
        # A body 10 cm clear of the ray still clips the Fresnel zone.
        offset = direction.perpendicular() * 0.15
        grazer = Circle(midpoint + offset, 0.05)
        shadowed = three_path_channel.with_targets([grazer])
        ratio = abs(shadowed.paths[0].gain) / abs(target_path.gain)
        assert 0.2 < ratio < 1.0

    def test_blocked_path_indices(self, three_path_channel):
        blocker = Circle(three_path_channel.paths[1].legs[0].midpoint(), 0.05)
        assert three_path_channel.blocked_path_indices([blocker]) == [1]

    def test_no_targets_is_identity(self, three_path_channel):
        same = three_path_channel.with_targets([])
        assert [p.gain for p in same.paths] == [
            p.gain for p in three_path_channel.paths
        ]

    def test_invalid_attenuation_rejected(self, array):
        with pytest.raises(ConfigurationError):
            MultipathChannel(array=array, paths=[], blocking_attenuation=1.0)


class TestMergeChannels:
    def test_concatenates_paths(self, array):
        a = MultipathChannel(array=array, paths=[make_path(array, 60, 0.01, "a")])
        b = MultipathChannel(array=array, paths=[make_path(array, 120, 0.01, "b")])
        merged = merge_channels([a, b])
        assert merged.num_paths == 2
        assert {p.tag_id for p in merged.paths} == {"a", "b"}

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            merge_channels([])
