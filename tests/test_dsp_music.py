"""Tests for repro.dsp.music."""

import math

import numpy as np
import pytest

from repro.dsp.covariance import sample_covariance
from repro.dsp.music import (
    MusicEstimator,
    eigendecompose,
    estimate_num_sources,
    mdl_num_sources,
    noise_subspace,
)
from repro.errors import EstimationError
from repro.rf.channel import MultipathChannel

from tests.conftest import make_path


class TestEigendecompose:
    def test_descending_order(self, rng):
        x = rng.normal(size=(6, 50)) + 1j * rng.normal(size=(6, 50))
        eigenvalues, _ = eigendecompose(sample_covariance(x))
        assert list(eigenvalues) == sorted(eigenvalues, reverse=True)

    def test_eigen_identity(self, rng):
        x = rng.normal(size=(5, 40)) + 1j * rng.normal(size=(5, 40))
        r = sample_covariance(x)
        eigenvalues, eigenvectors = eigendecompose(r)
        for k in range(5):
            assert np.allclose(
                r @ eigenvectors[:, k], eigenvalues[k] * eigenvectors[:, k]
            )

    def test_rejects_rectangular(self):
        with pytest.raises(EstimationError):
            eigendecompose(np.zeros((2, 3)))


class TestSourceCounting:
    def test_threshold_counting(self):
        eigenvalues = np.array([10.0, 8.0, 5.0, 0.01, 0.01, 0.01])
        assert estimate_num_sources(eigenvalues, threshold_ratio=0.03) == 3

    def test_never_consumes_whole_space(self):
        eigenvalues = np.ones(4)
        assert estimate_num_sources(eigenvalues) <= 3

    def test_at_least_one_source(self):
        eigenvalues = np.array([1.0, 1e-9, 1e-9])
        assert estimate_num_sources(eigenvalues) >= 1

    def test_single_element_array_is_rejected(self):
        # M == 1 leaves no noise subspace: min(1, M-1) would otherwise
        # silently report zero sources downstream.
        with pytest.raises(EstimationError, match="single-element array"):
            estimate_num_sources(np.array([1.0]))

    def test_empty_eigenvalues_rejected(self):
        with pytest.raises(EstimationError, match="no eigenvalues"):
            estimate_num_sources(np.array([]))

    def test_mdl_on_clear_spectrum(self, three_path_channel):
        x = three_path_channel.snapshots(200, snr_db=30, rng=3)
        from repro.dsp.smoothing import spatially_smoothed_covariance

        r = spatially_smoothed_covariance(x, 6)
        eigenvalues, _ = eigendecompose(r)
        estimated = mdl_num_sources(eigenvalues, num_snapshots=200)
        assert 2 <= estimated <= 4  # three paths, tolerating +/- 1


class TestNoiseSubspace:
    def test_shape(self, rng):
        x = rng.normal(size=(8, 40)) + 1j * rng.normal(size=(8, 40))
        un = noise_subspace(sample_covariance(x), num_sources=3)
        assert un.shape == (8, 5)

    def test_orthonormal_columns(self, rng):
        x = rng.normal(size=(8, 40)) + 1j * rng.normal(size=(8, 40))
        un = noise_subspace(sample_covariance(x), num_sources=3)
        assert np.allclose(un.conj().T @ un, np.eye(5), atol=1e-10)

    def test_invalid_source_count_rejected(self, rng):
        x = rng.normal(size=(4, 10)) + 1j * rng.normal(size=(4, 10))
        r = sample_covariance(x)
        with pytest.raises(EstimationError):
            noise_subspace(r, 0)
        with pytest.raises(EstimationError):
            noise_subspace(r, 4)


class TestMusicEstimator:
    def test_recovers_three_coherent_paths(self, array, three_path_channel):
        x = three_path_channel.snapshots(60, snr_db=25, rng=0)
        estimator = MusicEstimator(
            spacing_m=array.spacing_m, wavelength_m=array.wavelength_m
        )
        peaks = estimator.estimate_aoas(x, max_peaks=3)
        found = sorted(math.degrees(p.angle) for p in peaks)
        assert found == pytest.approx([50, 90, 130], abs=1.5)

    def test_single_path_high_accuracy(self, array):
        channel = MultipathChannel(array=array, paths=[make_path(array, 72.0, 0.01)])
        x = channel.snapshots(60, snr_db=30, rng=1)
        estimator = MusicEstimator(
            spacing_m=array.spacing_m, wavelength_m=array.wavelength_m
        )
        peaks = estimator.estimate_aoas(x, max_peaks=1)
        assert math.degrees(peaks[0].angle) == pytest.approx(72.0, abs=0.6)

    def test_without_smoothing_coherent_pair_grows_spurious_peaks(self, array):
        # Two equal-power fully coherent arrivals: the unsmoothed
        # covariance is rank-1, and MUSIC against its (M-1)-dimensional
        # "noise" subspace produces spurious extra peaks alongside the
        # true ones.  Smoothing restores a clean two-peak spectrum.
        channel = MultipathChannel(
            array=array,
            paths=[make_path(array, 80.0, 0.01), make_path(array, 100.0, 0.01)],
        )
        x = channel.snapshots(60, snr_db=25, rng=3)
        no_smoothing = MusicEstimator(
            spacing_m=array.spacing_m,
            wavelength_m=array.wavelength_m,
            subarray_size=8,
            forward_backward=False,
        )
        smoothed = MusicEstimator(
            spacing_m=array.spacing_m, wavelength_m=array.wavelength_m
        )
        clean = smoothed.estimate_aoas(x)
        assert sorted(math.degrees(p.angle) for p in clean) == pytest.approx(
            [80, 100], abs=1.5
        )
        dirty = no_smoothing.estimate_aoas(x)
        spurious = [
            math.degrees(p.angle)
            for p in dirty
            if min(abs(math.degrees(p.angle) - t) for t in (80, 100)) > 5.0
        ]
        assert spurious, "expected spurious coherent-source peaks"

    def test_fixed_num_sources_respected(self, array, three_path_channel):
        x = three_path_channel.snapshots(60, snr_db=25, rng=4)
        estimator = MusicEstimator(
            spacing_m=array.spacing_m,
            wavelength_m=array.wavelength_m,
            num_sources=3,
        )
        un = estimator.noise_subspace(x)
        assert un.shape[1] == un.shape[0] - 3
