"""Tests for repro.rfid.reader."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rfid.reader import Reader, random_phase_offsets


@pytest.fixture
def reader(array):
    return Reader(array=array, name="r0", rng=7)


class TestRandomPhaseOffsets:
    def test_reference_is_zero(self, rng):
        offsets = random_phase_offsets(8, rng)
        assert offsets[0] == 0.0

    def test_range(self, rng):
        offsets = random_phase_offsets(64, rng, reference_zero=False)
        assert np.all(offsets > -np.pi) and np.all(offsets <= np.pi)

    def test_zero_antennas_rejected(self):
        with pytest.raises(ConfigurationError):
            random_phase_offsets(0)


class TestReader:
    def test_offsets_drawn_at_power_on(self, reader):
        assert reader.phase_offsets.shape == (8,)
        assert reader.phase_offsets[0] == 0.0

    def test_gamma_is_diagonal_unit_modulus(self, reader):
        gamma = reader.gamma()
        assert gamma.shape == (8, 8)
        assert np.allclose(np.abs(np.diag(gamma)), 1.0)
        assert np.allclose(gamma - np.diag(np.diag(gamma)), 0.0)

    def test_power_cycle_changes_offsets(self, reader):
        before = reader.phase_offsets.copy()
        reader.power_cycle(rng=99)
        assert not np.allclose(before, reader.phase_offsets)

    def test_explicit_offsets_validated(self, array):
        with pytest.raises(ConfigurationError):
            Reader(array=array, phase_offsets=np.zeros(3))

    def test_sweep_duration_scales_with_antennas(self, array):
        full = Reader(array=array, rng=1)
        small = Reader(array=array.with_antennas(4), rng=1)
        assert full.snapshot_sweep_duration() == pytest.approx(
            2 * small.snapshot_sweep_duration()
        )

    def test_ports_exposed(self, reader):
        assert len(reader.ports()) == 4

    def test_invalid_range_rejected(self, array):
        with pytest.raises(ConfigurationError):
            Reader(array=array, max_range_m=0.0)
