"""Property-based tests (hypothesis) for the RFID substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.point import Point
from repro.rfid.epc import (
    corrupt_frame,
    crc16_ccitt,
    decode_epc,
    encode_epc,
    validate_epc_frame,
)
from repro.rfid.gen2 import Gen2Inventory, SlotOutcome
from repro.rfid.tag import Tag

epc_strings = st.text(alphabet="0123456789ABCDEF", min_size=24, max_size=24)


class TestEpcProperties:
    @given(epc_strings)
    def test_encode_decode_roundtrip(self, epc):
        assert decode_epc(encode_epc(epc)) == epc

    @given(epc_strings, st.integers(min_value=0, max_value=14 * 8 - 1))
    def test_any_single_bit_flip_detected(self, epc, bit):
        frame = encode_epc(epc)
        assert not validate_epc_frame(corrupt_frame(frame, bit))

    @given(st.binary(min_size=0, max_size=64))
    def test_crc_is_deterministic(self, payload):
        assert crc16_ccitt(payload) == crc16_ccitt(payload)

    @given(st.binary(min_size=1, max_size=64))
    def test_crc_range(self, payload):
        assert 0 <= crc16_ccitt(payload) <= 0xFFFF


class TestGen2Properties:
    @settings(max_examples=30)
    @given(
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=25),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_round_accounting_invariant(self, q, num_tags, seed):
        inventory = Gen2Inventory(initial_q=q, rng=seed)
        tags = [Tag(position=Point(0, i)) for i in range(num_tags)]
        outcome = inventory.run_round(tags)
        assert len(outcome.outcomes) == 2**q
        singles = sum(
            1 for o in outcome.outcomes if o is SlotOutcome.SINGLETON
        )
        assert singles == len(outcome.reads)
        # Every tag answers exactly one slot, so contenders add up.
        contenders = singles + outcome.num_collisions  # lower bound
        assert contenders <= num_tags

    @settings(max_examples=20)
    @given(
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_inventory_all_reads_everyone(self, num_tags, seed):
        inventory = Gen2Inventory(rng=seed)
        tags = [Tag(position=Point(0, i)) for i in range(num_tags)]
        rounds = inventory.inventory_all(tags, max_rounds=64)
        read = {r.epc for round_result in rounds for r in round_result.reads}
        assert read == {t.epc for t in tags}

    @settings(max_examples=30)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_q_stays_in_legal_range(self, seed):
        inventory = Gen2Inventory(initial_q=4, q_step=0.5, rng=seed)
        tags = [Tag(position=Point(0, i)) for i in range(40)]
        for _ in range(5):
            inventory.run_round(tags)
            assert 0 <= inventory.current_q <= 15
