"""Property-based tests (hypothesis) for the DSP substrate."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import DEFAULT_WAVELENGTH_M
from repro.dsp.covariance import (
    forward_backward_average,
    is_hermitian,
    sample_covariance,
)
from repro.dsp.spectrum import AngularSpectrum
from repro.rf.array import steering_vector
from repro.utils.angles import wrap_to_pi

HALF_WAVE = DEFAULT_WAVELENGTH_M / 2.0

angles = st.floats(min_value=0.0, max_value=math.pi)
antenna_counts = st.integers(min_value=2, max_value=16)
seeds = st.integers(min_value=0, max_value=2**31)


class TestSteeringVectorProperties:
    @given(angles, antenna_counts)
    def test_unit_modulus(self, theta, m):
        vec = steering_vector(theta, m, HALF_WAVE, DEFAULT_WAVELENGTH_M)
        assert np.allclose(np.abs(vec), 1.0)

    @given(angles, antenna_counts)
    def test_geometric_progression(self, theta, m):
        # Consecutive element ratios must all equal the first ratio.
        vec = steering_vector(theta, m, HALF_WAVE, DEFAULT_WAVELENGTH_M)
        if m < 3:
            return
        ratios = vec[1:] / vec[:-1]
        assert np.allclose(ratios, ratios[0])

    @given(angles, antenna_counts)
    def test_mirror_angle_conjugates(self, theta, m):
        vec = steering_vector(theta, m, HALF_WAVE, DEFAULT_WAVELENGTH_M)
        mirrored = steering_vector(
            math.pi - theta, m, HALF_WAVE, DEFAULT_WAVELENGTH_M
        )
        assert np.allclose(mirrored, vec.conj())

    @given(angles)
    def test_norm_is_sqrt_m(self, theta):
        vec = steering_vector(theta, 8, HALF_WAVE, DEFAULT_WAVELENGTH_M)
        assert math.isclose(float(np.linalg.norm(vec)), math.sqrt(8))


class TestCovarianceProperties:
    @settings(max_examples=40)
    @given(seeds, st.integers(min_value=2, max_value=10), st.integers(min_value=1, max_value=50))
    def test_sample_covariance_hermitian_psd(self, seed, m, n):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(m, n)) + 1j * rng.normal(size=(m, n))
        r = sample_covariance(x)
        assert is_hermitian(r)
        assert np.all(np.linalg.eigvalsh(r) >= -1e-10)

    @settings(max_examples=40)
    @given(seeds, st.integers(min_value=2, max_value=8))
    def test_forward_backward_trace_preserved(self, seed, m):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(m, 20)) + 1j * rng.normal(size=(m, 20))
        r = sample_covariance(x)
        fb = forward_backward_average(r)
        assert np.isclose(np.trace(fb).real, np.trace(r).real)

    @settings(max_examples=40)
    @given(seeds, st.integers(min_value=2, max_value=8))
    def test_scaling_equivariance(self, seed, m):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(m, 25)) + 1j * rng.normal(size=(m, 25))
        assert np.allclose(sample_covariance(3.0 * x), 9.0 * sample_covariance(x))


class TestSpectrumProperties:
    @settings(max_examples=40)
    @given(seeds)
    def test_drop_is_nonnegative_and_bounded(self, seed):
        rng = np.random.default_rng(seed)
        grid = np.linspace(0, math.pi, 64)
        base = AngularSpectrum(grid, rng.uniform(0.1, 1.0, size=64))
        online = AngularSpectrum(grid, rng.uniform(0.0, 1.0, size=64))
        drop = online.drop_relative_to(base)
        assert np.all(drop.values >= 0.0)
        assert np.all(drop.values <= base.values + 1e-12)

    @settings(max_examples=40)
    @given(seeds)
    def test_max_in_window_dominates_point_value(self, seed):
        rng = np.random.default_rng(seed)
        grid = np.linspace(0, math.pi, 128)
        spectrum = AngularSpectrum(grid, rng.uniform(0.0, 1.0, size=128))
        angle = float(rng.uniform(0.1, math.pi - 0.1))
        # The windowed max can only exceed (or match) any interior grid
        # sample's interpolated value.
        window_max = spectrum.max_in_window(angle, 0.2)
        assert window_max >= spectrum.value_at(angle) - 1e-9


class TestWrapProperties:
    @given(st.floats(min_value=-100, max_value=100, allow_nan=False))
    def test_wrap_idempotent(self, angle):
        once = wrap_to_pi(angle)
        assert math.isclose(float(wrap_to_pi(once)), float(once), abs_tol=1e-12)

    @given(st.floats(min_value=-100, max_value=100, allow_nan=False))
    def test_wrap_preserves_angle_mod_2pi(self, angle):
        wrapped = float(wrap_to_pi(angle))
        assert math.isclose(
            math.cos(wrapped), math.cos(angle), abs_tol=1e-9
        )
        assert math.isclose(
            math.sin(wrapped), math.sin(angle), abs_tol=1e-9
        )
