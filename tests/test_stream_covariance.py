"""Incremental covariance: EW updates, smoothing and P-MUSIC from R."""

import numpy as np
import pytest

from repro.dsp.bartlett import bartlett_power_spectrum, bartlett_spectrum_from_covariance
from repro.dsp.covariance import is_hermitian, sample_covariance
from repro.dsp.pmusic import PMusicEstimator
from repro.dsp.smoothing import spatially_smoothed_covariance
from repro.errors import ConfigurationError, EstimationError
from repro.stream.covariance import (
    CovarianceBank,
    EwCovariance,
    pmusic_spectrum_from_covariance,
    smoothed_covariance_from_full,
)

SPACING = 0.163
WAVELENGTH = 2.0 * SPACING


def snapshots(rng, m=8, n=32):
    return rng.normal(size=(m, n)) + 1j * rng.normal(size=(m, n))


class TestEwCovariance:
    def test_decay_one_reproduces_sample_covariance(self, rng):
        # The tier-1 equivalence the streaming engine stands on: with
        # no forgetting, the rank-1 recursion is exactly the batch
        # sample covariance of everything seen.
        x = snapshots(rng)
        est = EwCovariance(num_antennas=8, decay=1.0)
        est.update_matrix(x)
        np.testing.assert_allclose(
            est.covariance(), sample_covariance(x), atol=1e-10
        )

    def test_decay_one_streaming_across_windows(self, rng):
        # Feeding two windows sequentially equals one concatenated batch.
        a, b = snapshots(rng, n=16), snapshots(rng, n=24)
        est = EwCovariance(num_antennas=8, decay=1.0)
        est.update_matrix(a)
        est.update_matrix(b)
        np.testing.assert_allclose(
            est.covariance(),
            sample_covariance(np.hstack([a, b])),
            atol=1e-10,
        )

    def test_decay_discounts_old_snapshots(self, rng):
        old = np.ones(4, dtype=complex)
        new = 1j * np.ones(4, dtype=complex)
        est = EwCovariance(num_antennas=4, decay=0.5)
        est.update(old)
        for _ in range(16):
            est.update(new)
        # The surviving weight of the first snapshot is 0.5**16.
        r = est.covariance()
        np.testing.assert_allclose(r, np.outer(new, new.conj()), atol=1e-3)

    def test_weight_tracks_effective_count(self):
        est = EwCovariance(num_antennas=2, decay=1.0)
        est.update(np.ones(2))
        est.update(np.ones(2))
        assert est.weight == pytest.approx(2.0)
        assert est.updates == 2

    def test_estimate_is_hermitian(self, rng):
        est = EwCovariance(num_antennas=6, decay=0.8)
        est.update_matrix(snapshots(rng, m=6))
        assert is_hermitian(est.covariance())

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            EwCovariance(num_antennas=0)
        with pytest.raises(ConfigurationError):
            EwCovariance(num_antennas=4, decay=0.0)
        with pytest.raises(ConfigurationError):
            EwCovariance(num_antennas=4, decay=1.5)

    def test_rejects_wrong_shapes_and_empty_reads(self):
        est = EwCovariance(num_antennas=4)
        with pytest.raises(EstimationError):
            est.update(np.ones(3))
        with pytest.raises(EstimationError):
            est.update_matrix(np.ones((3, 5)))
        with pytest.raises(EstimationError, match="no snapshots"):
            est.covariance()


class TestCovarianceBank:
    def test_pairs_are_independent(self, rng):
        bank = CovarianceBank(decay=1.0)
        a, b = snapshots(rng, m=4), snapshots(rng, m=4)
        bank.pair("r0", "t0", 4).update_matrix(a)
        bank.pair("r0", "t1", 4).update_matrix(b)
        assert len(bank) == 2
        np.testing.assert_allclose(
            bank.covariance("r0", "t0"), sample_covariance(a), atol=1e-10
        )
        np.testing.assert_allclose(
            bank.covariance("r0", "t1"), sample_covariance(b), atol=1e-10
        )

    def test_unknown_pair_raises(self):
        with pytest.raises(EstimationError, match="no covariance"):
            CovarianceBank().covariance("r", "t")


class TestSmoothedFromFull:
    def test_matches_snapshot_domain_smoothing(self, rng):
        # Diagonal-block averaging of the full R must equal the classic
        # subarray average computed from raw snapshots.
        x = snapshots(rng)
        full = sample_covariance(x)
        for fb in (False, True):
            np.testing.assert_allclose(
                smoothed_covariance_from_full(full, 6, forward_backward=fb),
                spatially_smoothed_covariance(x, 6, forward_backward=fb),
                atol=1e-12,
            )

    def test_rejects_bad_inputs(self, rng):
        with pytest.raises(EstimationError):
            smoothed_covariance_from_full(np.ones((3, 4)), 2)
        with pytest.raises(EstimationError):
            smoothed_covariance_from_full(np.eye(4), 1)


class TestBartlettFromCovariance:
    def test_matches_snapshot_domain_bartlett(self, rng):
        x = snapshots(rng)
        via_cov = bartlett_spectrum_from_covariance(
            sample_covariance(x), SPACING, WAVELENGTH
        )
        via_snaps = bartlett_power_spectrum(x, SPACING, WAVELENGTH)
        np.testing.assert_allclose(via_cov.values, via_snaps.values, atol=1e-12)
        np.testing.assert_array_equal(via_cov.angles, via_snaps.angles)


class TestPmusicFromCovariance:
    def test_matches_snapshot_domain_pmusic(self, rng):
        # The whole covariance-domain chain against the batch estimator
        # on the same data (decay 1.0 makes R the sample covariance).
        x = snapshots(rng)
        est = EwCovariance(num_antennas=8, decay=1.0)
        est.update_matrix(x)
        from_cov = pmusic_spectrum_from_covariance(
            est.covariance(), SPACING, WAVELENGTH
        )
        batch = PMusicEstimator(spacing_m=SPACING, wavelength_m=WAVELENGTH)
        from_snaps = batch.spectrum(x)
        np.testing.assert_array_equal(from_cov.angles, from_snaps.angles)
        np.testing.assert_allclose(from_cov.values, from_snaps.values, atol=1e-8)

    def test_rejects_non_square_covariance(self):
        with pytest.raises(EstimationError):
            pmusic_spectrum_from_covariance(np.ones((3, 4)), SPACING, WAVELENGTH)


class TestRevisions:
    def test_revision_advances_once_per_column(self, rng):
        est = EwCovariance(num_antennas=4, decay=0.8)
        assert est.revision == 0
        est.update(snapshots(rng, m=4, n=1)[:, 0])
        assert est.revision == 1
        est.update_matrix(snapshots(rng, m=4, n=5))
        assert est.revision == 6

    def test_single_column_fold_records_the_recurrence(self, rng):
        # last_fold must satisfy R' = scale * R_prev + gain * x x^H.
        est = EwCovariance(num_antennas=4, decay=0.8)
        est.update_matrix(snapshots(rng, m=4, n=6))
        previous = est.covariance()
        column = snapshots(rng, m=4, n=1)[:, 0]
        est.update(column)
        fold = est.last_fold
        assert fold is not None
        folded, scale, gain, revision = fold
        assert revision == est.revision
        np.testing.assert_array_equal(folded, column)
        rebuilt = scale * previous + gain * np.outer(column, column.conj())
        np.testing.assert_allclose(
            est.covariance(), (rebuilt + rebuilt.conj().T) / 2.0, atol=1e-12
        )

    def test_multi_column_fold_clears_the_descriptor(self, rng):
        est = EwCovariance(num_antennas=4, decay=1.0)
        est.update(snapshots(rng, m=4, n=1)[:, 0])
        assert est.last_fold is not None
        est.update_matrix(snapshots(rng, m=4, n=3))
        assert est.last_fold is None

    def test_matrix_of_one_column_routes_through_update(self, rng):
        est = EwCovariance(num_antennas=4, decay=0.8)
        est.update_matrix(snapshots(rng, m=4, n=1))
        assert est.last_fold is not None
        assert est.revision == 1

    def test_restore_never_reuses_a_revision(self, rng):
        # The cache-safety contract: a revision number is never
        # associated with two different accumulator states.
        est = EwCovariance(num_antennas=4, decay=1.0)
        est.update_matrix(snapshots(rng, m=4, n=3))
        state = est.state_snapshot()
        seen = est.revision
        est.update_matrix(snapshots(rng, m=4, n=4))
        advanced = est.revision
        est.state_restore(state)
        assert est.revision > seen
        assert est.revision > advanced
        assert est.last_fold is None
        # Content is back to the snapshot, revision is not.
        restored = EwCovariance(num_antennas=4, decay=1.0)
        restored._weighted, restored._weight = state[0].copy(), state[1]
        np.testing.assert_allclose(
            est.covariance(), restored.covariance(), atol=0.0
        )

    def test_restore_after_no_progress_still_bumps(self, rng):
        est = EwCovariance(num_antennas=4, decay=1.0)
        est.update_matrix(snapshots(rng, m=4, n=2))
        state = est.state_snapshot()
        before = est.revision
        est.state_restore(state)
        assert est.revision == before + 1

    def test_bank_hands_out_stamped_pairs(self, rng):
        bank = CovarianceBank(decay=1.0)
        pair = bank.pair("r1", "epc-1", 4)
        assert bank.pair_if_tracked("r1", "epc-1") is pair
        assert bank.pair_if_tracked("r1", "missing") is None
        assert pair.revision == 0
        pair.update_matrix(snapshots(rng, m=4, n=2))
        assert bank.pair("r1", "epc-1", 4).revision == 2
