"""Property-based tests (hypothesis) for the geometry substrate."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.blocking import segment_intersects_circle
from repro.geometry.point import Point
from repro.geometry.reflection import mirror_point, specular_reflection_point
from repro.geometry.segment import Segment
from repro.geometry.shapes import Circle

coordinates = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)
points = st.builds(Point, coordinates, coordinates)
radii = st.floats(min_value=0.01, max_value=5.0)


def nondegenerate_segments(min_length=1e-3):
    return (
        st.tuples(points, points)
        .filter(lambda ab: ab[0].distance_to(ab[1]) > min_length)
        .map(lambda ab: Segment(ab[0], ab[1]))
    )


class TestPointProperties:
    @given(points, points)
    def test_distance_symmetry(self, a, b):
        assert a.distance_to(b) == b.distance_to(a)

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-7

    @given(points, points)
    def test_addition_subtraction_roundtrip(self, a, b):
        back = (a + b) - b
        assert math.isclose(back.x, a.x, abs_tol=1e-7)
        assert math.isclose(back.y, a.y, abs_tol=1e-7)

    @given(points, st.floats(min_value=-math.pi, max_value=math.pi))
    def test_rotation_preserves_norm(self, p, angle):
        assert math.isclose(
            p.rotated(angle).norm(), p.norm(), rel_tol=1e-9, abs_tol=1e-9
        )


class TestSegmentProperties:
    @given(nondegenerate_segments(), points)
    def test_closest_point_is_on_segment(self, segment, p):
        closest = segment.closest_point(p)
        t = segment.project_parameter(closest)
        assert -1e-7 <= t <= 1 + 1e-7

    @given(nondegenerate_segments(), points)
    def test_closest_beats_endpoints(self, segment, p):
        d = segment.distance_to_point(p)
        assert d <= p.distance_to(segment.start) + 1e-9
        assert d <= p.distance_to(segment.end) + 1e-9

    @given(nondegenerate_segments(), st.floats(min_value=0, max_value=1))
    def test_point_at_lies_between_endpoints(self, segment, t):
        p = segment.point_at(t)
        assert segment.distance_to_point(p) < 1e-6


class TestReflectionProperties:
    @settings(max_examples=60)
    @given(points, nondegenerate_segments(min_length=0.1))
    def test_mirror_is_involution(self, p, plate):
        twice = mirror_point(mirror_point(p, plate), plate)
        assert math.isclose(twice.x, p.x, abs_tol=1e-5)
        assert math.isclose(twice.y, p.y, abs_tol=1e-5)

    @settings(max_examples=60)
    @given(points, nondegenerate_segments(min_length=0.1))
    def test_mirror_preserves_distance_to_plate_line(self, p, plate):
        mirrored = mirror_point(p, plate)
        direction = plate.direction()
        normal_p = abs((p - plate.start).dot(direction.perpendicular()))
        normal_m = abs((mirrored - plate.start).dot(direction.perpendicular()))
        assert math.isclose(normal_p, normal_m, rel_tol=1e-6, abs_tol=1e-6)

    @settings(max_examples=60)
    @given(points, points, nondegenerate_segments(min_length=0.5))
    def test_bounce_path_length_is_image_distance(self, source, receiver, plate):
        bounce = specular_reflection_point(source, receiver, plate)
        if bounce is None:
            return
        via = source.distance_to(bounce) + bounce.distance_to(receiver)
        image = mirror_point(source, plate)
        assert math.isclose(via, image.distance_to(receiver), rel_tol=1e-5, abs_tol=1e-5)


class TestBlockingProperties:
    @settings(max_examples=80)
    @given(nondegenerate_segments(), points, radii)
    def test_blocking_consistent_with_distance(self, segment, center, radius):
        circle = Circle(center, radius)
        blocked = segment_intersects_circle(segment, circle)
        assert blocked == (segment.distance_to_point(center) <= radius)

    @settings(max_examples=80)
    @given(nondegenerate_segments(), points, radii, radii)
    def test_blocking_monotone_in_radius(self, segment, center, r1, r2):
        small, large = sorted((r1, r2))
        if segment_intersects_circle(segment, Circle(center, small)):
            assert segment_intersects_circle(segment, Circle(center, large))
