"""Tests for repro.calibration.offsets."""

import numpy as np
import pytest

from repro.calibration.offsets import PhaseOffsets, offset_error
from repro.errors import CalibrationError


class TestPhaseOffsets:
    def test_referenced_zeroes_first_entry(self):
        offsets = PhaseOffsets.referenced(np.array([0.5, 1.0, 1.5]))
        assert offsets.values[0] == 0.0
        assert offsets.values[1] == pytest.approx(0.5)

    def test_gamma_diagonal(self):
        offsets = PhaseOffsets(np.array([0.0, 0.3, -0.7]))
        gamma = offsets.gamma()
        assert np.allclose(np.diag(gamma), np.exp(1j * offsets.values))

    def test_correction_undoes_gamma(self):
        offsets = PhaseOffsets(np.array([0.0, 0.9, -1.2, 2.0]))
        assert np.allclose(
            np.diag(offsets.gamma()) * offsets.correction(), 1.0
        )

    def test_apply_correction_recovers_clean_snapshots(self, rng):
        offsets = PhaseOffsets(np.array([0.0, 0.3, 1.1, -0.4]))
        clean = rng.normal(size=(4, 10)) + 1j * rng.normal(size=(4, 10))
        corrupted = np.exp(1j * offsets.values)[:, None] * clean
        assert np.allclose(offsets.apply_correction(corrupted), clean)

    def test_apply_correction_shape_checked(self):
        offsets = PhaseOffsets(np.zeros(4))
        with pytest.raises(CalibrationError):
            offsets.apply_correction(np.zeros((5, 3), dtype=complex))

    def test_too_short_rejected(self):
        with pytest.raises(CalibrationError):
            PhaseOffsets(np.array([0.0]))


class TestOffsetError:
    def test_zero_for_identical(self):
        a = PhaseOffsets(np.array([0.0, 0.5, 1.0]))
        assert offset_error(a, a) == 0.0

    def test_global_shift_is_invisible(self):
        a = PhaseOffsets.referenced(np.array([0.0, 0.5, 1.0]))
        b = PhaseOffsets.referenced(np.array([0.3, 0.8, 1.3]))
        assert offset_error(a, b) == pytest.approx(0.0)

    def test_wraps_differences(self):
        a = PhaseOffsets(np.array([0.0, np.pi - 0.05]))
        b = PhaseOffsets(np.array([0.0, -np.pi + 0.05]))
        assert offset_error(a, b) == pytest.approx(0.1 / 2, abs=1e-6)

    def test_size_mismatch_rejected(self):
        a = PhaseOffsets(np.zeros(3))
        b = PhaseOffsets(np.zeros(4))
        with pytest.raises(CalibrationError):
            offset_error(a, b)
