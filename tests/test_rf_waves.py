"""Tests for repro.rf.waves."""

import math

import pytest

from repro.constants import DEFAULT_FREQUENCY_HZ, SPEED_OF_LIGHT
from repro.errors import ConfigurationError
from repro.rf.waves import carrier_phase_shift, phase_after_distance, wavelength


class TestWavelength:
    def test_uhf_band_value(self):
        # ~32.5 cm at the Chinese UHF band centre.
        assert wavelength(DEFAULT_FREQUENCY_HZ) == pytest.approx(0.325, abs=0.001)

    def test_inverse_relation(self):
        assert wavelength(1e9) == pytest.approx(SPEED_OF_LIGHT / 1e9)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            wavelength(0.0)


class TestPhaseAfterDistance:
    def test_one_wavelength_is_two_pi(self):
        lam = 0.325
        assert phase_after_distance(lam, lam) == pytest.approx(2 * math.pi)

    def test_scales_linearly(self):
        lam = 0.325
        assert phase_after_distance(2 * lam, lam) == pytest.approx(
            2 * phase_after_distance(lam, lam)
        )

    def test_rejects_bad_wavelength(self):
        with pytest.raises(ConfigurationError):
            phase_after_distance(1.0, 0.0)


class TestCarrierPhaseShift:
    def test_unit_modulus(self):
        shift = carrier_phase_shift(3.7, 0.325)
        assert abs(shift) == pytest.approx(1.0)

    def test_full_wavelength_is_identity(self):
        shift = carrier_phase_shift(0.325, 0.325)
        assert shift.real == pytest.approx(1.0)
        assert shift.imag == pytest.approx(0.0, abs=1e-12)

    def test_half_wavelength_flips_sign(self):
        shift = carrier_phase_shift(0.325 / 2, 0.325)
        assert shift.real == pytest.approx(-1.0)
