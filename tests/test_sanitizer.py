"""The runtime lock sanitizer: gating, monitoring, probing, reporting.

The production contract is tested first: with ``REPRO_DEBUG`` off the
factory hands back a plain ``threading.Lock`` and the monitor records
nothing, so a release build carries zero instrumentation.  Everything
else runs against private :class:`LockMonitor` instances so tests do
not interfere through the process-wide monitor.
"""

import hashlib
import json
import threading
import time

import pytest

from repro.analysis import sanitizer
from repro.analysis.sanitizer import (
    DEFAULT_HOLD_WARN_S,
    LockMonitor,
    SanitizedLock,
    probe_unguarded,
    sanitized_lock,
    sanitizer_enabled,
)


@pytest.fixture(autouse=True)
def _clean_global_monitor():
    sanitizer.reset()
    yield
    sanitizer.reset()


class TestGate:
    def test_disabled_returns_a_plain_lock(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEBUG", raising=False)
        lock = sanitized_lock("plain")
        assert not isinstance(lock, SanitizedLock)
        assert type(lock) is type(threading.Lock())

    def test_enabled_returns_the_wrapper(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEBUG", "1")
        assert isinstance(sanitized_lock("wrapped"), SanitizedLock)

    def test_force_overrides_the_gate(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEBUG", raising=False)
        assert isinstance(sanitized_lock("forced", force=True), SanitizedLock)

    def test_truthy_spellings(self, monkeypatch):
        for raw in ("1", "true", "YES", " on "):
            monkeypatch.setenv("REPRO_DEBUG", raw)
            assert sanitizer_enabled()
        for raw in ("0", "off", "", "no"):
            monkeypatch.setenv("REPRO_DEBUG", raw)
            assert not sanitizer_enabled()

    def test_disabled_lock_records_nothing(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEBUG", raising=False)
        lock = sanitized_lock("silent")
        with lock:
            pass
        report = sanitizer.report()
        assert report["enabled"] is False
        assert report["locks"] == {}


class TestLockMonitor:
    def test_acquisitions_and_hold_times_accounted(self):
        monitor = LockMonitor(hold_warn_s=10.0)
        lock = SanitizedLock("q", monitor)
        for _ in range(3):
            with lock:
                pass
        entry = monitor.report()["locks"]["q"]
        assert entry["acquisitions"] == 3
        assert entry["hold_max_ms"] >= 0.0
        assert entry["hold_mean_ms"] >= 0.0

    def test_inversion_detected_without_an_actual_deadlock(self):
        monitor = LockMonitor(hold_warn_s=10.0)
        a = SanitizedLock("a", monitor)
        b = SanitizedLock("b", monitor)
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        report = monitor.report()
        assert report["edges"] == ["a -> b", "b -> a"]
        assert len(report["inversions"]) == 1
        inversion = report["inversions"][0]
        assert "a" in inversion["first"] and "b" in inversion["first"]

    def test_consistent_order_has_no_inversion(self):
        monitor = LockMonitor(hold_warn_s=10.0)
        a = SanitizedLock("a", monitor)
        b = SanitizedLock("b", monitor)
        for _ in range(2):
            with a:
                with b:
                    pass
        report = monitor.report()
        assert report["edges"] == ["a -> b"]
        assert report["inversions"] == []

    def test_held_names_tracks_the_current_thread_stack(self):
        monitor = LockMonitor(hold_warn_s=10.0)
        outer = SanitizedLock("outer", monitor)
        inner = SanitizedLock("inner", monitor)
        assert monitor.held_names() == ()
        with outer:
            with inner:
                assert monitor.held_names() == ("outer", "inner")
        assert monitor.held_names() == ()

    def test_hold_time_outlier_recorded(self):
        monitor = LockMonitor(hold_warn_s=0.0)
        lock = SanitizedLock("slow", monitor)
        with lock:
            time.sleep(0.002)
        outliers = monitor.report()["hold_outliers"]
        assert outliers and outliers[0]["lock"] == "slow"
        assert outliers[0]["hold_ms"] > 0.0

    def test_hold_threshold_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZER_HOLD_MS", "250")
        assert LockMonitor().hold_warn_s == pytest.approx(0.25)
        monkeypatch.setenv("REPRO_SANITIZER_HOLD_MS", "bogus")
        assert LockMonitor().hold_warn_s == DEFAULT_HOLD_WARN_S

    def test_reset_clears_everything(self):
        monitor = LockMonitor(hold_warn_s=0.0)
        lock = SanitizedLock("x", monitor)
        with lock:
            pass
        monitor.reset()
        report = monitor.report()
        assert report["locks"] == {}
        assert report["edges"] == []
        assert report["inversions"] == []
        assert report["hold_outliers"] == []
        assert report["witnesses"] == []

    def test_report_is_deterministic_and_json_ready(self):
        monitor = LockMonitor(hold_warn_s=10.0)
        b = SanitizedLock("b", monitor)
        a = SanitizedLock("a", monitor)
        with b:
            with a:
                pass
        first = json.dumps(monitor.report(), sort_keys=True)
        second = json.dumps(monitor.report(), sort_keys=True)
        assert first == second
        assert list(monitor.report()["locks"]) == ["a", "b"]


class TestConditionIntegration:
    def test_condition_over_a_sanitized_lock(self):
        monitor = LockMonitor(hold_warn_s=10.0)
        lock = SanitizedLock("cv", monitor)
        ready = threading.Condition(lock)
        results = []

        def consumer():
            with ready:
                while not results:
                    ready.wait(timeout=5.0)

        worker = threading.Thread(target=consumer, daemon=True)
        worker.start()
        with ready:
            results.append(1)
            ready.notify_all()
        worker.join(timeout=5.0)
        assert not worker.is_alive()
        report = monitor.report()
        assert report["locks"]["cv"]["acquisitions"] >= 2
        assert report["inversions"] == []


class TestProbe:
    def test_plain_lock_is_rejected_loudly(self):
        class Box:
            pass

        with pytest.raises(TypeError, match="SanitizedLock"):
            probe_unguarded(Box(), ("_items",), threading.Lock())

    def test_witnesses_only_unguarded_watched_accesses(self):
        monitor = LockMonitor(hold_warn_s=10.0)
        lock = SanitizedLock("box", monitor)

        class Box:
            def __init__(self):
                self._items = []
                self._other = 0

        box = Box()
        with probe_unguarded(box, ("_items",), lock, monitor=monitor):
            with lock:
                box._items.append(1)  # guarded: no witness
            box._other = 5  # unwatched: no witness
            box._items.append(2)  # unguarded: one witness
        witnesses = monitor.report()["witnesses"]
        assert len(witnesses) == 1
        assert witnesses[0]["owner"] == "Box"
        assert witnesses[0]["attribute"] == "_items"
        assert witnesses[0]["lock"] == "box"

    def test_probe_restores_the_class_on_exit(self):
        monitor = LockMonitor(hold_warn_s=10.0)
        lock = SanitizedLock("box", monitor)

        class Box:
            def __init__(self):
                self._items = []

        box = Box()
        with probe_unguarded(box, ("_items",), lock, monitor=monitor):
            pass
        assert type(box) is Box
        box._items.append(1)  # post-exit access is no longer watched
        assert monitor.report()["witnesses"] == []

    def test_cross_thread_unguarded_access_is_witnessed(self):
        # The probe checks ownership per accessing thread: main holding
        # the lock does not excuse a worker touching the attribute.
        monitor = LockMonitor(hold_warn_s=10.0)
        lock = SanitizedLock("box", monitor)

        class Box:
            def __init__(self):
                self._items = []

        box = Box()

        def worker_touch():
            box._items.append("worker")

        with probe_unguarded(box, ("_items",), lock, monitor=monitor):
            with lock:
                worker = threading.Thread(target=worker_touch, daemon=True)
                worker.start()
                worker.join(timeout=5.0)
        witnesses = monitor.report()["witnesses"]
        assert len(witnesses) == 1
        assert witnesses[0]["attribute"] == "_items"


class TestBitIdenticalOutput:
    def stream_stdout_hash(self, capsys):
        from repro.cli import main

        capsys.readouterr()  # discard anything pending
        code = main(
            ["--quiet", "stream", "--environment", "hall", "--seed", "7",
             "--fixes", "2"]
        )
        assert code == 0
        return hashlib.sha256(capsys.readouterr().out.encode()).hexdigest()

    def test_stream_output_identical_with_sanitizer_on_and_off(
        self, capsys, monkeypatch
    ):
        # The load-bearing contract: the sanitizer observes, it never
        # participates.  The exact bytes on stdout must not depend on
        # whether the locks were instrumented.
        monkeypatch.delenv("REPRO_DEBUG", raising=False)
        plain = self.stream_stdout_hash(capsys)
        monkeypatch.setenv("REPRO_DEBUG", "1")
        sanitized = self.stream_stdout_hash(capsys)
        assert plain == sanitized
        # And the instrumented run actually watched something.
        report = sanitizer.report()
        assert "stream.queue" in report["locks"]
        assert report["inversions"] == []
        assert report["witnesses"] == []


class TestModuleLevelReport:
    def test_write_report_round_trips(self, tmp_path):
        lock = sanitized_lock("roundtrip", force=True)
        with lock:
            pass
        path = tmp_path / "sanitizer_report.json"
        document = sanitizer.write_report(str(path))
        assert json.loads(path.read_text(encoding="utf-8")) == document
        assert "roundtrip" in document["locks"]
