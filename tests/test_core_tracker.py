"""Tests for repro.core.tracker."""

import numpy as np
import pytest

from repro.core.tracker import KalmanTracker
from repro.errors import ConfigurationError
from repro.geometry.point import Point


def straight_line_fixes(n, speed=0.5, dt=0.1, noise=0.0, rng=None):
    points = []
    for i in range(n):
        x = i * speed * dt
        if rng is not None and noise > 0:
            points.append(Point(x + rng.normal(0, noise), rng.normal(0, noise)))
        else:
            points.append(Point(x, 0.0))
    return points


class TestInitialization:
    def test_first_update_requires_fix(self):
        tracker = KalmanTracker()
        with pytest.raises(ConfigurationError):
            tracker.update(0.0, None)

    def test_first_fix_passes_through(self):
        tracker = KalmanTracker()
        point = tracker.update(0.0, Point(1.0, 2.0))
        assert point.position == Point(1.0, 2.0)
        assert not point.predicted_only

    def test_reset_forgets_state(self):
        tracker = KalmanTracker()
        tracker.update(0.0, Point(1.0, 2.0))
        tracker.reset()
        assert not tracker.initialized

    def test_time_must_advance(self):
        tracker = KalmanTracker()
        tracker.update(1.0, Point(0, 0))
        with pytest.raises(ConfigurationError):
            tracker.update(0.5, Point(0, 0))

    def test_invalid_noise_rejected(self):
        with pytest.raises(ConfigurationError):
            KalmanTracker(process_noise=0.0)


class TestSmoothing:
    def test_reduces_noise_on_straight_track(self, rng):
        truth = straight_line_fixes(60)
        noisy = straight_line_fixes(60, noise=0.15, rng=rng)
        tracker = KalmanTracker(process_noise=0.8, measurement_noise=0.15)
        times = [i * 0.1 for i in range(60)]
        track = tracker.track(times, noisy)
        raw_error = np.mean(
            [n.distance_to(t) for n, t in zip(noisy[30:], truth[30:])]
        )
        smoothed_error = np.mean(
            [
                point.position.distance_to(t)
                for point, t in zip(track[30:], truth[30:])
            ]
        )
        assert smoothed_error < raw_error

    def test_velocity_learned(self):
        tracker = KalmanTracker(measurement_noise=0.01)
        fixes = straight_line_fixes(40, speed=1.0)
        times = [i * 0.1 for i in range(40)]
        tracker.track(times, fixes)
        assert tracker._state[2] == pytest.approx(1.0, abs=0.15)


class TestDeadzoneBridging:
    def test_prediction_through_gap(self):
        tracker = KalmanTracker(measurement_noise=0.01)
        fixes = straight_line_fixes(30, speed=1.0)
        times = [i * 0.1 for i in range(30)]
        # Two seconds of fixes, then a deadzone epoch.
        tracker.track(times, fixes)
        gap_point = tracker.update(3.05, None)
        assert gap_point.predicted_only
        assert gap_point.position.x == pytest.approx(3.05, abs=0.25)

    def test_track_skips_leading_deadzone(self):
        tracker = KalmanTracker()
        track = tracker.track([0.0, 0.1], [None, Point(1.0, 1.0)])
        assert len(track) == 1
        assert track[0].position == Point(1.0, 1.0)

    def test_mismatched_lengths_rejected(self):
        tracker = KalmanTracker()
        with pytest.raises(ConfigurationError):
            tracker.track([0.0], [None, None])
