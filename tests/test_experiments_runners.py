"""Smoke + shape tests for every experiment runner.

These run the figure reproductions at reduced size and assert the
*qualitative* claims each figure makes, which is exactly what the
reproduction is accountable for.
"""


import pytest

import repro.experiments as experiments


class TestFig03:
    def test_offsets_random_and_wide(self):
        result = experiments.run_fig03(rng=1)
        assert len(result.offsets_deg) == 16
        assert result.offsets_deg[0] == 0.0
        # The paper's offsets span hundreds of degrees.
        assert result.spread_deg > 90.0

    def test_rows_one_per_port(self):
        result = experiments.run_fig03(rng=2)
        assert len(result.rows()) == 17  # header + 16 ports


class TestFig04:
    def test_music_leaks_onto_unblocked_peaks(self):
        result = experiments.run_fig04(rng=3)
        # MUSIC's failure: blocking one path changes other peaks too.
        assert result.unblocked_leakage > 0.3

    def test_all_blocked_case_underreports(self):
        result = experiments.run_fig04(rng=3)
        blocked_change = result.all_blocked_change[result.blocked_index]
        # With every path blocked the (normalized) MUSIC spectrum barely
        # registers the event at the blocked peak.
        assert blocked_change > -0.5


class TestFig09:
    def test_dwatch_improves_with_tags_phaser_flat(self):
        result = experiments.run_fig09(tag_counts=(1, 4, 8), trials=2, rng=4)
        assert result.dwatch_error_rad[-1] < result.dwatch_error_rad[0]
        # Phaser ignores extra tags entirely.
        assert result.phaser_error_rad[0] == pytest.approx(
            result.phaser_error_rad[-1]
        )

    def test_dwatch_beats_phaser_at_high_tag_counts(self):
        result = experiments.run_fig09(tag_counts=(8,), trials=2, rng=5)
        assert result.dwatch_error_rad[0] < result.phaser_error_rad[0]


class TestFig10:
    def test_calibration_mode_ordering(self):
        result = experiments.run_fig10(trials=2, rng=6)
        medians = result.medians()
        assert medians["dwatch"] <= medians["phaser"] + 0.5
        assert medians["none"] > 10 * max(medians["dwatch"], 0.1)


class TestFig12:
    def test_only_blocked_path_drops(self):
        result = experiments.run_fig12(rng=7)
        blocked = result.one_blocked_drop[result.blocked_index]
        others = [
            drop
            for index, drop in enumerate(result.one_blocked_drop)
            if index != result.blocked_index
        ]
        assert blocked > 0.8
        assert all(drop < 0.5 for drop in others)

    def test_all_paths_drop_when_all_blocked(self):
        result = experiments.run_fig12(rng=7)
        assert sum(1 for d in result.all_blocked_drop if d > 0.5) >= 2


class TestFig13:
    def test_pmusic_dominates_music_when_all_blocked(self):
        result = experiments.run_fig13(
            distances_m=(2.0, 4.0), trials=4, rng=8
        )
        for p_all, m_all in zip(result.pmusic_all, result.music_all):
            assert p_all > m_all

    def test_music_fails_all_blocked_case(self):
        result = experiments.run_fig13(distances_m=(4.0,), trials=4, rng=9)
        assert result.music_all[0] <= 0.25


class TestRoomExperiments:
    def test_fig14_produces_all_environments(self):
        result = experiments.run_fig14(num_locations=4, repeats=1, rng=10)
        assert set(result.results) == {"library", "laboratory", "hall"}
        assert len(result.rows()) == 4

    def test_fig16_coverage_grows_with_reflectors(self):
        result = experiments.run_fig16(
            reflector_counts=(0, 12), num_locations=8, rng=11
        )
        assert result.coverage[-1] >= result.coverage[0]

    def test_fig17_coverage_grows_with_tags(self):
        result = experiments.run_fig17(
            tag_counts=(7, 47), num_locations=8, rng=12
        )
        assert result.coverage[-1] >= result.coverage[0]

    def test_fig18_rows_cover_sweep(self):
        result = experiments.run_fig18(
            height_differences_cm=(0, 120), num_locations=4, rng=13
        )
        assert result.height_difference_cm == [0.0, 120.0]


class TestTableExperiments:
    def test_fig19_sparse_targets_found(self):
        result = experiments.run_fig19(
            separations_cm=(130.0,), snapshots=2, rng=14
        )
        assert result.targets_found[0] >= 2

    def test_fig21_fist_tracking_accuracy(self):
        result = experiments.run_fig21(tag_counts=(26,), letters=("P",), rng=15)
        assert result.median_error_cm[0] < 15.0

    def test_letter_waypoints_known_letters(self):
        from repro.experiments.fig21_fist import letter_waypoints
        from repro.geometry.point import Point

        for letter in ("P", "O"):
            waypoints = letter_waypoints(letter, Point(1.0, 1.0))
            assert len(waypoints) >= 5
        with pytest.raises(ValueError):
            letter_waypoints("Q", Point(0, 0))


class TestLatency:
    def test_fix_latency_below_half_second(self):
        result = experiments.run_latency(fixes=3, rng=16)
        # Paper: end-to-end below 0.5 s.
        assert result.mean_ms < 500.0
