"""Tests for repro.rfid.epc."""

import pytest

from repro.errors import ProtocolError
from repro.rfid.epc import (
    corrupt_frame,
    crc16_ccitt,
    decode_epc,
    encode_epc,
    random_epc,
    validate_epc_frame,
)


class TestCrc16:
    def test_known_vector(self):
        # CRC-16/X.25 of "123456789" is 0x906E.
        assert crc16_ccitt(b"123456789") == 0x906E

    def test_empty_payload(self):
        assert crc16_ccitt(b"") == 0x0000

    def test_detects_single_bit_flip(self):
        data = bytes(range(12))
        flipped = bytearray(data)
        flipped[3] ^= 0x10
        assert crc16_ccitt(data) != crc16_ccitt(bytes(flipped))


class TestEpcEncoding:
    def test_roundtrip(self):
        epc = random_epc(rng=1)
        assert decode_epc(encode_epc(epc)) == epc

    def test_random_epc_format(self):
        epc = random_epc(rng=2)
        assert len(epc) == 24
        int(epc, 16)  # must be valid hex

    def test_distinct_random_epcs(self):
        assert random_epc(rng=1) != random_epc(rng=2)

    def test_frame_length(self):
        frame = encode_epc(random_epc(rng=3))
        assert len(frame) == 14  # 12 EPC bytes + 2 CRC bytes

    def test_wrong_length_rejected(self):
        with pytest.raises(ProtocolError):
            encode_epc("AB")

    def test_invalid_hex_rejected(self):
        with pytest.raises(ProtocolError):
            encode_epc("Z" * 24)


class TestFrameValidation:
    def test_valid_frame(self):
        assert validate_epc_frame(encode_epc(random_epc(rng=4)))

    def test_corrupted_frame_fails(self):
        frame = encode_epc(random_epc(rng=5))
        for bit in (0, 17, 95, 111):
            assert not validate_epc_frame(corrupt_frame(frame, bit))

    def test_double_corruption_restores(self):
        frame = encode_epc(random_epc(rng=6))
        twice = corrupt_frame(corrupt_frame(frame, 9), 9)
        assert twice == frame

    def test_truncated_frame_rejected(self):
        with pytest.raises(ProtocolError):
            decode_epc(b"\x00" * 13)

    def test_bit_index_out_of_range(self):
        with pytest.raises(ProtocolError):
            corrupt_frame(b"\x00" * 14, 14 * 8)
