"""Tests for repro.core.particle (particle-filter tracking)."""

import numpy as np
import pytest

from repro.core.particle import ParticleTracker
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.shapes import Rectangle

ROOM = Rectangle(0.0, 0.0, 8.0, 10.0)


def straight_fixes(n, speed=1.0, dt=0.1, noise=0.0, rng=None):
    fixes = []
    for i in range(n):
        x = 1.0 + i * speed * dt
        y = 5.0
        if rng is not None and noise > 0:
            fixes.append(Point(x + rng.normal(0, noise), y + rng.normal(0, noise)))
        else:
            fixes.append(Point(x, y))
    return fixes


@pytest.fixture
def tracker():
    return ParticleTracker(room=ROOM, rng=42)


class TestLifecycle:
    def test_first_update_requires_fix(self, tracker):
        with pytest.raises(ConfigurationError):
            tracker.update(0.0, None)

    def test_seed_returns_fix(self, tracker):
        point = tracker.update(0.0, Point(2.0, 3.0))
        assert point.position == Point(2.0, 3.0)

    def test_reset(self, tracker):
        tracker.update(0.0, Point(2.0, 3.0))
        tracker.reset()
        assert not tracker.initialized

    def test_backwards_time_rejected(self, tracker):
        tracker.update(1.0, Point(2.0, 3.0))
        with pytest.raises(ConfigurationError):
            tracker.update(0.5, Point(2.0, 3.0))

    def test_too_few_particles_rejected(self):
        with pytest.raises(ConfigurationError):
            ParticleTracker(room=ROOM, num_particles=5)


class TestTracking:
    def test_follows_straight_walk(self, rng, tracker):
        truth = straight_fixes(40)
        noisy = straight_fixes(40, noise=0.1, rng=rng)
        times = [i * 0.1 for i in range(40)]
        track = tracker.track(times, noisy)
        tail_errors = [
            point.position.distance_to(t)
            for point, t in zip(track[20:], truth[20:])
        ]
        assert np.mean(tail_errors) < 0.15

    def test_smoothing_beats_raw_fixes(self, rng, tracker):
        truth = straight_fixes(60)
        noisy = straight_fixes(60, noise=0.2, rng=rng)
        times = [i * 0.1 for i in range(60)]
        track = tracker.track(times, noisy)
        raw = np.mean(
            [n.distance_to(t) for n, t in zip(noisy[30:], truth[30:])]
        )
        smoothed = np.mean(
            [
                point.position.distance_to(t)
                for point, t in zip(track[30:], truth[30:])
            ]
        )
        assert smoothed < raw

    def test_positions_confined_to_room(self, rng, tracker):
        fixes = [Point(7.9, 9.9)] * 10 + [None] * 20
        times = [i * 0.1 for i in range(30)]
        track = tracker.track(times, fixes)
        for point in track:
            assert ROOM.contains(point.position)

    def test_deadzone_prediction(self, tracker):
        for i in range(20):
            tracker.update(i * 0.1, Point(1.0 + i * 0.1, 5.0))
        predicted = tracker.update(2.3, None)
        assert predicted.predicted_only
        assert predicted.position.x == pytest.approx(3.3, abs=0.5)


class TestSpeedFusion:
    def test_speed_observation_sharpens_velocity(self):
        slow = ParticleTracker(room=ROOM, rng=7)
        fused = ParticleTracker(room=ROOM, rng=7)
        fixes = straight_fixes(30)
        times = [i * 0.1 for i in range(30)]
        slow.track(times, fixes)
        fused.track(times, fixes, speeds=[1.0] * 30)
        # Both initialized and produce a confidence measure.
        assert slow.spread() >= 0.0
        assert fused.spread() >= 0.0

    def test_speeds_length_checked(self, tracker):
        with pytest.raises(ConfigurationError):
            tracker.track([0.0, 0.1], [Point(1, 1), Point(1, 1)], speeds=[1.0])

    def test_spread_requires_initialization(self, tracker):
        with pytest.raises(ConfigurationError):
            tracker.spread()
