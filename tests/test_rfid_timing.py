"""Tests for repro.rfid.timing (Gen2 link timing)."""

import pytest

from repro.errors import ProtocolError
from repro.rfid.timing import (
    DEFAULT_LINK_TIMING,
    EPC_REPLY_BITS,
    RN16_BITS,
    LinkTiming,
    TagEncoding,
)


class TestBlfDerivation:
    def test_default_profile_blf(self):
        # DR = 64/3 over TRcal = 66.7 us -> ~320 kHz.
        assert DEFAULT_LINK_TIMING.blf_hz == pytest.approx(320e3, rel=0.01)

    def test_tag_bit_scales_with_encoding(self):
        fm0 = LinkTiming(encoding=TagEncoding.FM0)
        miller8 = LinkTiming(encoding=TagEncoding.MILLER_8)
        assert miller8.tag_bit_s == pytest.approx(8 * fm0.tag_bit_s)

    def test_blf_range_enforced(self):
        with pytest.raises(ProtocolError):
            LinkTiming(divide_ratio=8.0, trcal_s=250e-6)  # 32 kHz < 40 kHz

    def test_tari_range_enforced(self):
        with pytest.raises(ProtocolError):
            LinkTiming(tari_s=30e-6)

    def test_divide_ratio_values(self):
        with pytest.raises(ProtocolError):
            LinkTiming(divide_ratio=10.0)


class TestTurnarounds:
    def test_t1_at_least_rtcal(self):
        timing = DEFAULT_LINK_TIMING
        assert timing.t1_s >= timing.rtcal_s

    def test_t2_is_ten_blf_cycles(self):
        timing = DEFAULT_LINK_TIMING
        assert timing.t2_s == pytest.approx(10.0 / timing.blf_hz)


class TestSlotDurations:
    def test_ordering(self):
        timing = DEFAULT_LINK_TIMING
        assert timing.empty_slot_s < timing.collision_slot_s
        assert timing.collision_slot_s < timing.singleton_slot_s

    def test_singleton_magnitude(self):
        # The Impinj datasheet class: single read ~2-3 ms at Miller-4.
        assert 1e-3 < DEFAULT_LINK_TIMING.singleton_slot_s < 4e-3

    def test_faster_encoding_shortens_slots(self):
        fm0 = LinkTiming(encoding=TagEncoding.FM0)
        assert fm0.singleton_slot_s < DEFAULT_LINK_TIMING.singleton_slot_s

    def test_reply_durations_proportional_to_bits(self):
        timing = DEFAULT_LINK_TIMING
        assert timing.tag_reply_s(EPC_REPLY_BITS) > timing.tag_reply_s(RN16_BITS)

    def test_invalid_bit_counts_rejected(self):
        with pytest.raises(ProtocolError):
            DEFAULT_LINK_TIMING.reader_command_s(0)
        with pytest.raises(ProtocolError):
            DEFAULT_LINK_TIMING.tag_reply_s(0)


class TestReadRate:
    def test_plausible_read_rate(self):
        # Field reports for dense-reader Miller-4: ~100-400 reads/s.
        rate = DEFAULT_LINK_TIMING.reads_per_second()
        assert 50 < rate < 600

    def test_fm0_faster_than_miller8(self):
        fm0 = LinkTiming(encoding=TagEncoding.FM0)
        miller8 = LinkTiming(encoding=TagEncoding.MILLER_8)
        assert fm0.reads_per_second() > miller8.reads_per_second()

    def test_efficiency_validated(self):
        with pytest.raises(ProtocolError):
            DEFAULT_LINK_TIMING.reads_per_second(efficiency=0.0)


class TestGen2Integration:
    def test_inventory_duration_uses_timing(self):
        from repro.geometry.point import Point
        from repro.rfid.gen2 import Gen2Inventory
        from repro.rfid.tag import Tag

        tags = [Tag(position=Point(0, i)) for i in range(5)]
        fast = Gen2Inventory(
            timing=LinkTiming(encoding=TagEncoding.FM0), rng=1
        )
        slow = Gen2Inventory(
            timing=LinkTiming(encoding=TagEncoding.MILLER_8), rng=1
        )
        fast_time = sum(r.duration_s for r in fast.inventory_all(tags))
        slow_time = sum(r.duration_s for r in slow.inventory_all(tags))
        assert fast_time < slow_time
