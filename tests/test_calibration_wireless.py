"""Tests for the D-Watch wireless phase calibration."""

import math

import numpy as np
import pytest

from repro.calibration.offsets import PhaseOffsets, offset_error
from repro.calibration.wireless import (
    CalibrationObservation,
    WirelessCalibrator,
    observation_from_snapshots,
    subspace_cost,
)
from repro.errors import CalibrationError
from repro.rf.channel import MultipathChannel

from tests.conftest import make_path


def build_observations(array, truth, angles_deg, rng, multipath_scale=0.1):
    """Observations from LoS-dominant tags with weak extra multipath."""
    observations = []
    for k, angle in enumerate(angles_deg):
        paths = [make_path(array, angle, 0.01)]
        extra_angle = 15.0 + (k * 37.0) % 150.0
        extra_gain = 0.01 * multipath_scale * np.exp(1j * (0.7 + k))
        paths.append(make_path(array, extra_angle, extra_gain))
        channel = MultipathChannel(array=array, paths=paths)
        x = channel.snapshots(60, snr_db=25, phase_offsets=truth.values, rng=rng)
        observations.append(
            observation_from_snapshots(x, math.radians(angle))
        )
    return observations


@pytest.fixture
def truth(rng):
    raw = rng.uniform(-np.pi, np.pi, size=8)
    raw[0] = 0.0
    return PhaseOffsets.referenced(raw)


class TestSubspaceCost:
    def test_zero_at_true_offsets_single_clean_path(self, array, truth, rng):
        channel = MultipathChannel(array=array, paths=[make_path(array, 70.0, 0.01)])
        x = channel.snapshots(200, snr_db=60, phase_offsets=truth.values, rng=rng)
        obs = observation_from_snapshots(x, math.radians(70.0))
        at_truth = subspace_cost(
            truth.values[1:], [obs], array.spacing_m, array.wavelength_m
        )
        at_zero = subspace_cost(
            np.zeros(7), [obs], array.spacing_m, array.wavelength_m
        )
        assert at_truth < at_zero / 100.0

    def test_requires_observations(self, array):
        with pytest.raises(CalibrationError):
            subspace_cost(np.zeros(7), [], array.spacing_m, array.wavelength_m)

    def test_dimension_mismatch_rejected(self, array, truth, rng):
        channel = MultipathChannel(array=array, paths=[make_path(array, 70.0, 0.01)])
        x = channel.snapshots(20, rng=rng)
        obs = observation_from_snapshots(x, math.radians(70.0))
        with pytest.raises(CalibrationError):
            subspace_cost(np.zeros(5), [obs], array.spacing_m, array.wavelength_m)


class TestWirelessCalibrator:
    def test_accurate_with_enough_tags(self, array, truth, rng):
        observations = build_observations(
            array, truth, [30, 55, 80, 105, 130, 150], rng
        )
        calibrator = WirelessCalibrator(
            spacing_m=array.spacing_m, wavelength_m=array.wavelength_m
        )
        estimate = calibrator.estimate(observations, rng=1)
        assert offset_error(estimate, truth) < 0.06

    def test_error_decreases_with_tags(self, array, truth, rng):
        few = build_observations(array, truth, [40], rng, multipath_scale=0.25)
        many = build_observations(
            array, truth, [30, 55, 80, 105, 130, 150], rng, multipath_scale=0.25
        )
        calibrator = WirelessCalibrator(
            spacing_m=array.spacing_m, wavelength_m=array.wavelength_m
        )
        error_few = offset_error(calibrator.estimate(few, rng=2), truth)
        error_many = offset_error(calibrator.estimate(many, rng=2), truth)
        assert error_many < error_few

    def test_empty_observations_rejected(self, array):
        calibrator = WirelessCalibrator(
            spacing_m=array.spacing_m, wavelength_m=array.wavelength_m
        )
        with pytest.raises(CalibrationError):
            calibrator.estimate([])

    def test_inconsistent_sizes_rejected(self, array):
        calibrator = WirelessCalibrator(
            spacing_m=array.spacing_m, wavelength_m=array.wavelength_m
        )
        observations = [
            CalibrationObservation(1.0, np.zeros((8, 5), dtype=complex)),
            CalibrationObservation(1.0, np.zeros((6, 4), dtype=complex)),
        ]
        with pytest.raises(CalibrationError):
            calibrator.estimate(observations)


class TestObservationFromSnapshots:
    def test_noise_subspace_orthonormal(self, array, truth, rng):
        channel = MultipathChannel(array=array, paths=[make_path(array, 70.0, 0.01)])
        x = channel.snapshots(40, phase_offsets=truth.values, rng=rng)
        obs = observation_from_snapshots(x, math.radians(70.0))
        un = obs.noise_subspace
        assert np.allclose(un.conj().T @ un, np.eye(un.shape[1]), atol=1e-9)

    def test_fixed_num_sources(self, array, rng):
        channel = MultipathChannel(array=array, paths=[make_path(array, 70.0, 0.01)])
        x = channel.snapshots(40, rng=rng)
        obs = observation_from_snapshots(x, math.radians(70.0), num_sources=2)
        assert obs.noise_subspace.shape == (8, 6)
