"""The acceptance chaos scenario: lose a reader mid-run, keep tracking.

Three wall readers watch a static target.  A third of the way into the
run the first reader goes silent for two fix windows; the health
tracker must degrade it, quarantine it, renormalize the likelihood over
the two survivors, and recover it once reads return.  A checkpoint
taken mid-outage must resume bit-identically, and with fault injection
disabled the CLI must stay byte-identical to a chaos-free run.
"""

import hashlib
import json

import pytest

from repro.core.pipeline import DWatch
from repro.faults import FaultInjector, chaos_plan, scene_schedules
from repro.sim.environments import hall_scene
from repro.sim.measurement import MeasurementSession
from repro.stream import (
    HealthConfig,
    StreamConfig,
    StreamRunner,
    checkpoint_state,
    restore_state,
)
from repro.stream.synthetic import SyntheticStreamConfig, synthetic_reads

FIXES = 6


@pytest.fixture(scope="module")
def tracking():
    """Three readers, enough tags/antennas to locate through a loss."""
    scene = hall_scene(rng=5, num_readers=3, num_tags=12, num_antennas=8)
    dwatch = DWatch(scene, cell_size=0.1)
    dwatch.calibrate(rng=6)
    session = MeasurementSession(scene, rng=7)
    dwatch.collect_baseline([session.capture() for _ in range(2)])
    return scene, dwatch


@pytest.fixture(scope="module")
def chaos_run(tracking):
    """Reads with the reader-loss outage injected, plus the plan."""
    scene, _ = tracking
    config = SyntheticStreamConfig(fixes=FIXES, moving=False)
    clean = list(synthetic_reads(scene, config, rng=8))
    plan = chaos_plan("reader-loss", scene, fixes=FIXES)
    injector = FaultInjector(plan, scene_schedules(scene))
    faulted = list(injector.inject(iter(clean)))
    assert injector.stats["dropped_outage"] > 0
    return faulted, plan


def runner_for(dwatch):
    return StreamRunner(
        dwatch,
        StreamConfig(health=HealthConfig(stale_windows=2, recovery_windows=2)),
    )


class TestReaderLoss:
    @pytest.fixture(scope="class")
    def fixes(self, tracking, chaos_run):
        _, dwatch = tracking
        reads, _ = chaos_run
        runner = runner_for(dwatch)
        out = list(runner.run(iter(reads)))
        return out, runner

    def test_fix_stream_survives_the_outage(self, fixes):
        out, _ = fixes
        assert [f.index for f in out] == list(range(FIXES))
        # The target stays located before, during and after the loss.
        assert all(f.position is not None for f in out)

    def test_quality_ladder_matches_the_outage_timeline(self, fixes, chaos_run):
        out, _ = fixes
        _, plan = chaos_run
        (outage,) = plan.faults
        levels = [f.quality.level for f in out]
        # Windows 0-1: full fleet.  Window 2: the victim missed one
        # window (degraded, still counted as deployed).  Windows 3-4:
        # two consecutive misses, quarantined and excluded.  Window 5:
        # reads are back and the probation completes.
        assert levels == [
            "full", "full", "degraded", "degraded", "degraded", "full",
        ]
        assert out[2].quality.quarantined == ()
        assert out[2].quality.active_readers == 2
        assert out[2].quality.total_readers == 3
        for fix in out[3:5]:
            assert fix.quality.quarantined == (outage.reader,)
            assert fix.quality.healthy_readers == 2
        # Confidence tracks the healthy fraction as the ladder descends.
        assert out[0].quality.confidence > out[2].quality.confidence
        assert out[2].quality.confidence > out[3].quality.confidence
        assert out[5].quality.confidence > out[4].quality.confidence

    def test_health_records_one_quarantine_and_one_recovery(
        self, fixes, chaos_run
    ):
        _, runner = fixes
        _, plan = chaos_run
        (outage,) = plan.faults
        report = {r.name: r for r in runner.health.report()}
        victim = report[outage.reader]
        assert victim.quarantines == 1
        assert victim.recoveries == 1
        assert runner.health.state_of(outage.reader) == "healthy"
        assert runner.health.quarantined() == frozenset()

    def test_checkpoint_resume_is_bit_identical(self, tracking, chaos_run):
        _, dwatch = tracking
        reads, _ = chaos_run
        half = len(reads) // 2

        straight = runner_for(dwatch)
        expected = list(straight.run(iter(reads)))

        crashing = runner_for(dwatch)
        head = []
        for read in reads[:half]:
            crashing.ingest(read)
            head.extend(crashing.poll())
        # Simulated crash: the state crosses a JSON byte boundary.
        blob = json.dumps(checkpoint_state(crashing), sort_keys=True)

        resumed = runner_for(dwatch)
        restore_state(resumed, json.loads(blob))
        tail = []
        for read in reads[half:]:
            resumed.ingest(read)
            tail.extend(resumed.poll())
        tail.extend(resumed.finish())

        combined = head + tail
        assert len(combined) == len(expected)
        for a, b in zip(combined, expected):
            assert a.index == b.index
            assert a.time_s == b.time_s
            assert a.position == b.position
            assert a.predicted_only == b.predicted_only
            assert a.quality == b.quality


class TestCliByteIdentity:
    """``--chaos none`` must not perturb the stream output at all."""

    @pytest.fixture(scope="class")
    def recording(self, tmp_path_factory):
        from repro.cli import main

        path = tmp_path_factory.mktemp("chaos") / "hall.jsonl"
        args = [
            "--quiet", "stream", "--environment", "hall",
            "--seed", "7", "--fixes", "2", "--record", str(path),
        ]
        assert main(args) == 0
        return path

    def replay_stdout(self, capsys, recording, extra):
        from repro.cli import main

        capsys.readouterr()
        assert main(
            ["--quiet", "stream", "--replay", str(recording), *extra]
        ) == 0
        return hashlib.sha256(capsys.readouterr().out.encode()).hexdigest()

    def test_chaos_none_is_byte_identical(self, capsys, recording):
        plain = self.replay_stdout(capsys, recording, [])
        disabled = self.replay_stdout(capsys, recording, ["--chaos", "none"])
        assert plain == disabled
