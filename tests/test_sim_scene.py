"""Tests for repro.sim.scene."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.reflection import Reflector
from repro.geometry.segment import Segment
from repro.geometry.shapes import Rectangle
from repro.rfid.reader import Reader
from repro.rfid.tag import Tag
from repro.sim.scene import Scene, build_channel, effective_aoa


@pytest.fixture
def scene(array):
    reader = Reader(array=array, name="r0", max_range_m=12.0, rng=1)
    tags = [
        Tag(position=Point(2, 5)),
        Tag(position=Point(5, 3)),
        Tag(position=Point(50, 50)),  # far outside range
    ]
    reflector = Reflector(
        plate=Segment(Point(6, 0), Point(6, 8)), coefficient=0.8, name="wall"
    )
    return Scene(
        room=Rectangle(0, 0, 10, 10),
        readers=[reader],
        tags=tags,
        reflectors=[reflector],
    )


class TestEffectiveAoa:
    def test_zero_elevation_is_identity(self):
        assert effective_aoa(1.0, 0.0) == pytest.approx(1.0)

    def test_elevation_pushes_towards_broadside(self):
        planar = math.radians(40)
        tilted = effective_aoa(planar, math.radians(30))
        assert tilted > planar
        assert tilted < math.pi / 2

    def test_broadside_is_fixed_point(self):
        assert effective_aoa(math.pi / 2, 0.5) == pytest.approx(math.pi / 2)

    def test_symmetric_about_broadside(self):
        low = effective_aoa(math.radians(60), 0.3)
        high = effective_aoa(math.radians(120), 0.3)
        assert low + high == pytest.approx(math.pi)


class TestScene:
    def test_range_filtering(self, scene):
        in_range = scene.tags_in_range(scene.readers[0])
        assert len(in_range) == 2

    def test_channels_for_reader(self, scene):
        channels = scene.channels_for(scene.readers[0])
        assert len(channels) == 2
        for channel in channels.values():
            assert channel.num_paths >= 1

    def test_reflected_paths_present(self, scene):
        channels = scene.channels_for(scene.readers[0])
        kinds = {
            path.kind
            for channel in channels.values()
            for path in channel.paths
        }
        assert "reflected" in kinds

    def test_with_reflectors_copy(self, scene):
        bare = scene.with_reflectors([])
        assert bare.reflectors == []
        assert scene.reflectors  # original untouched

    def test_duplicate_epcs_rejected(self, array):
        reader = Reader(array=array, rng=2)
        tag = Tag(position=Point(1, 1))
        clone = Tag(position=Point(2, 2), epc=tag.epc)
        with pytest.raises(ConfigurationError):
            Scene(
                room=Rectangle(0, 0, 5, 5), readers=[reader], tags=[tag, clone]
            )

    def test_requires_a_reader(self):
        with pytest.raises(ConfigurationError):
            Scene(room=Rectangle(0, 0, 5, 5), readers=[])


class TestBuildChannel:
    def test_height_difference_bends_aoa(self, scene):
        reader = scene.readers[0]
        level_tag = Tag(position=Point(2, 5), height_m=scene.array_height_m)
        raised_tag = Tag(
            position=Point(2, 5), height_m=scene.array_height_m + 1.0
        )
        level = build_channel(scene, reader, level_tag)
        raised = build_channel(scene, reader, raised_tag)
        level_aoa = level.paths[0].aoa
        raised_aoa = raised.paths[0].aoa
        assert raised_aoa != pytest.approx(level_aoa)
        # Elevation always bends the measured angle towards broadside.
        assert abs(raised_aoa - math.pi / 2) < abs(level_aoa - math.pi / 2)

    def test_blocking_attenuation_inherited(self, scene):
        channel = build_channel(scene, scene.readers[0], scene.tags[0])
        assert channel.blocking_attenuation == scene.blocking_attenuation
