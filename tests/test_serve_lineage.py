"""Checkpoint lineage: rotation, walk-back recovery, quarantine.

These run against the supervisor's disk machinery alone — no shards,
no pipeline builds — so every corruption scenario is cheap to stage
byte-for-byte with :func:`repro.faults.net.corrupt_file`.
"""

import pytest

from repro.errors import CheckpointError
from repro.faults.net import corrupt_file
from repro.serve.registry import DeploymentRegistry, DeploymentSpec
from repro.serve.shard import (
    checkpoint_history_paths,
    rotate_checkpoint_history,
    write_checkpoint_file,
)
from repro.serve.supervisor import ShardSupervisor
from repro.stream.checkpoint import (
    QUARANTINE_SUFFIX,
    checkpoint_history_dir,
    checkpoint_id,
    load_checkpoint,
)

DEPLOYMENT = "dep-a"


@pytest.fixture()
def supervisor(tmp_path):
    registry = DeploymentRegistry()
    registry.register(
        DeploymentSpec(deployment_id=DEPLOYMENT, seed=3, num_readers=2)
    )
    return ShardSupervisor(registry, checkpoint_dir=tmp_path / "ckpt")


def save(supervisor, state, keep=3):
    path = supervisor.checkpoint_path(DEPLOYMENT)
    write_checkpoint_file(path, state, history_keep=keep)
    return path


class TestHistoryRotation:
    def test_first_write_has_no_history(self, supervisor):
        path = save(supervisor, {"generation": 0})
        assert not checkpoint_history_dir(path).exists()
        assert checkpoint_history_paths(path) == [path]

    def test_rotation_preserves_the_ancestor(self, supervisor):
        path = save(supervisor, {"generation": 0})
        save(supervisor, {"generation": 1})
        candidates = checkpoint_history_paths(path)
        assert len(candidates) == 2
        assert load_checkpoint(candidates[0]) == {"generation": 1}
        assert load_checkpoint(candidates[1]) == {"generation": 0}

    def test_depth_is_bounded_by_history_keep(self, supervisor):
        path = supervisor.checkpoint_path(DEPLOYMENT)
        for generation in range(7):
            save(supervisor, {"generation": generation}, keep=3)
        candidates = checkpoint_history_paths(path)
        assert len(candidates) == 4  # latest + 3 ancestors
        generations = [
            load_checkpoint(candidate)["generation"]
            for candidate in candidates
        ]
        assert generations == [6, 5, 4, 3]  # newest first, oldest pruned

    def test_zero_keep_rotates_nothing(self, supervisor):
        path = supervisor.checkpoint_path(DEPLOYMENT)
        save(supervisor, {"generation": 0}, keep=0)
        save(supervisor, {"generation": 1}, keep=0)
        assert checkpoint_history_paths(path) == [path]

    def test_rotate_is_a_noop_without_a_latest_file(self, supervisor):
        path = supervisor.checkpoint_path(DEPLOYMENT)
        rotate_checkpoint_history(path, 3)
        assert checkpoint_history_paths(path) == []


class TestWalkBackRecovery:
    def test_healthy_latest_wins(self, supervisor):
        save(supervisor, {"generation": 0})
        save(supervisor, {"generation": 1})
        assert supervisor.recover_checkpoint(DEPLOYMENT) == {"generation": 1}

    def test_corrupt_latest_falls_back_to_ancestor(self, supervisor):
        path = save(supervisor, {"generation": 0})
        save(supervisor, {"generation": 1})
        corrupt_file(path, mode="flip", seed=5)
        state = supervisor.recover_checkpoint(DEPLOYMENT)
        assert state == {"generation": 0}

    def test_corrupt_candidates_are_quarantined_not_deleted(self, supervisor):
        path = save(supervisor, {"generation": 0})
        save(supervisor, {"generation": 1})
        healthy = path.read_bytes()
        corrupt_file(path, mode="flip", seed=5)
        damaged = path.read_bytes()
        supervisor.recover_checkpoint(DEPLOYMENT)
        specimens = list(path.parent.glob(f"*{QUARANTINE_SUFFIX}*"))
        assert len(specimens) == 1
        # The quarantined specimen is the damaged file, byte for byte.
        assert specimens[0].read_bytes() == damaged
        assert specimens[0].read_bytes() != healthy

    def test_walks_multiple_corrupt_generations(self, supervisor):
        path = supervisor.checkpoint_path(DEPLOYMENT)
        for generation in range(4):
            save(supervisor, {"generation": generation})
        corrupt_file(path, mode="truncate")
        history = checkpoint_history_paths(path)
        corrupt_file(history[1], mode="garbage", seed=2)
        assert supervisor.recover_checkpoint(DEPLOYMENT) == {"generation": 1}

    def test_no_verifiable_candidate_raises(self, supervisor):
        path = save(supervisor, {"generation": 0})
        corrupt_file(path, mode="garbage", seed=1)
        with pytest.raises(CheckpointError, match="no verifiable checkpoint"):
            supervisor.recover_checkpoint(DEPLOYMENT)
        # The sole candidate is now a specimen, not silently gone.
        assert list(path.parent.glob(f"*{QUARANTINE_SUFFIX}*"))

    def test_no_candidates_at_all_raises(self, supervisor):
        with pytest.raises(CheckpointError, match="0 candidate"):
            supervisor.recover_checkpoint(DEPLOYMENT)

    def test_recovered_state_keeps_its_identity(self, supervisor):
        state = {"generation": 0, "nested": {"k": [1, 2, 3]}}
        path = save(supervisor, state)
        save(supervisor, {"generation": 1})
        corrupt_file(path, mode="flip", seed=9)
        recovered = supervisor.recover_checkpoint(DEPLOYMENT)
        assert checkpoint_id(recovered) == checkpoint_id(state)
