"""Integration: the full Gen2 + LLRP protocol path through DWatch.

A physical deployment's seam: the localization engine consumes only
LLRP tag reports — this test drives the whole loop through them and
checks the result agrees with the fast capture path.
"""

import numpy as np
import pytest

from repro.core.pipeline import DWatch
from repro.sim.environments import hall_scene
from repro.sim.measurement import MeasurementSession, measurement_from_reports
from repro.sim.target import human_target


@pytest.fixture(scope="module")
def protocol_deployment():
    scene = hall_scene(rng=121)
    dwatch = DWatch(scene)
    dwatch.calibrate(rng=122)
    session = MeasurementSession(scene, rng=123)
    num_antennas = scene.readers[0].array.num_antennas
    baselines = [
        measurement_from_reports(session.capture_reports(), num_antennas)
        for _ in range(2)
    ]
    dwatch.collect_baseline(baselines)
    return scene, dwatch, session, num_antennas


class TestProtocolPath:
    def test_reports_cover_every_reader(self, protocol_deployment):
        scene, _, session, _ = protocol_deployment
        reports = session.capture_reports()
        assert set(reports) == {r.name for r in scene.readers}

    def test_localizes_through_reports(self, protocol_deployment):
        scene, dwatch, session, num_antennas = protocol_deployment
        # Stand on a path so the location is covered.
        reader = scene.readers[0]
        tag = scene.tags_in_range(reader)[0]
        midpoint = (tag.position + reader.array.centroid) / 2.0
        target = human_target(midpoint)

        localized = False
        for _ in range(3):
            reports = session.capture_reports([target])
            measurement = measurement_from_reports(reports, num_antennas)
            estimates = dwatch.localize(measurement)
            if estimates:
                localized = True
                error = target.localization_error(estimates[0].position)
                assert error < 1.0
                break
        assert localized

    def test_empty_area_stays_quiet(self, protocol_deployment):
        scene, dwatch, session, num_antennas = protocol_deployment
        reports = session.capture_reports()
        measurement = measurement_from_reports(reports, num_antennas)
        assert dwatch.localize(measurement) == []

    def test_report_stream_matches_fast_path_statistics(
        self, protocol_deployment
    ):
        scene, _, session, num_antennas = protocol_deployment
        reports = session.capture_reports()
        rebuilt = measurement_from_reports(reports, num_antennas)
        for reader in scene.readers:
            for epc in rebuilt.tags_for(reader.name):
                matrix = rebuilt.matrix(reader.name, epc)
                assert matrix.shape[0] == num_antennas
                assert np.all(np.isfinite(matrix))
