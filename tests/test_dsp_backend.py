"""The array-backend dispatch layer: resolution, fallback, equivalence."""

import numpy as np
import pytest

from repro import obs
from repro.dsp.backend import (
    ArrayBackend,
    BackendError,
    NumpyBackend,
    active_backend,
    available_backends,
    get_backend,
    set_backend,
    use_backend,
)
from repro.dsp.batch import BatchPMusicConfig, batched_pmusic_spectra

try:
    import torch  # noqa: F401

    HAVE_TORCH = True
except ImportError:
    HAVE_TORCH = False


@pytest.fixture(autouse=True)
def _reset_selection(monkeypatch):
    """Isolate each test from process-wide and ambient backend choices.

    CI runs this file with ``REPRO_BACKEND`` exported (the per-backend
    matrix leg); the resolution tests pin their own environment, so the
    ambient variable is cleared here to keep them meaningful.
    """
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    set_backend(None)
    yield
    set_backend(None)


def hermitian_stack(rng, n=3, m=4, snapshots=16):
    x = rng.normal(size=(n, m, snapshots)) + 1j * rng.normal(
        size=(n, m, snapshots)
    )
    r = np.matmul(x, x.conj().transpose(0, 2, 1)) / snapshots
    return 0.5 * (r + r.conj().transpose(0, 2, 1))


class TestResolution:
    def test_numpy_is_always_available_and_default(self):
        assert "numpy" in available_backends()
        assert active_backend().name == "numpy"
        assert isinstance(get_backend("numpy"), NumpyBackend)

    def test_numpy_is_the_only_exact_backend(self):
        assert get_backend("numpy").exact is True

    def test_unknown_name_raises(self):
        with pytest.raises(BackendError):
            get_backend("nosuch")

    def test_set_backend_selects_and_reverts(self):
        assert set_backend("numpy").name == "numpy"
        assert active_backend().name == "numpy"
        set_backend(None)
        assert active_backend().name == "numpy"

    def test_use_backend_scopes_the_selection(self):
        with use_backend("numpy") as backend:
            assert backend.name == "numpy"
            assert active_backend() is backend
        assert active_backend().name == "numpy"

    def test_env_variable_picks_the_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert active_backend().name == "numpy"

    def test_unknown_env_value_degrades_to_numpy_and_counts(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        with obs.observed() as state:
            assert active_backend().name == "numpy"
            counter = state.registry.counter(
                "dsp.backend.fallbacks", labels={"requested": "bogus"}
            )
            assert counter.value >= 1.0


class TestFallback:
    @pytest.mark.skipif(HAVE_TORCH, reason="torch present: no fallback here")
    def test_missing_torch_degrades_to_numpy_and_counts(self):
        with obs.observed() as state:
            backend = get_backend("torch")
            assert backend.name == "numpy"
            counter = state.registry.counter(
                "dsp.backend.fallbacks", labels={"requested": "torch"}
            )
            assert counter.value >= 1.0

    @pytest.mark.skipif(HAVE_TORCH, reason="torch present: no fallback here")
    def test_missing_torch_never_raises_through_use_backend(self):
        with use_backend("torch") as backend:
            assert backend.name == "numpy"


class TestKernels:
    def test_numpy_primitives_are_passthrough(self, rng):
        backend = get_backend("numpy")
        r = hermitian_stack(rng)
        a = rng.normal(size=(4, 7)) + 1j * rng.normal(size=(4, 7))
        np.testing.assert_array_equal(backend.matmul(r, a), np.matmul(r, a))
        values, vectors = backend.eigh(r)
        ref_values, ref_vectors = np.linalg.eigh(r)
        np.testing.assert_array_equal(values, ref_values)
        np.testing.assert_array_equal(vectors, ref_vectors)
        np.testing.assert_array_equal(backend.eigvalsh(r), np.linalg.eigvalsh(r))
        np.testing.assert_array_equal(
            backend.einsum("mg,nmg->ng", a.conj(), np.matmul(r, a)),
            np.einsum("mg,nmg->ng", a.conj(), np.matmul(r, a)),
        )

    def test_batched_chain_is_bit_identical_under_explicit_numpy(self, rng):
        x = rng.normal(size=(5, 4, 16)) + 1j * rng.normal(size=(5, 4, 16))
        config = BatchPMusicConfig(spacing_m=0.163, wavelength_m=0.326)
        implicit = batched_pmusic_spectra(x, config)
        with use_backend("numpy"):
            explicit = batched_pmusic_spectra(x, config)
        for a, b in zip(implicit, explicit):
            np.testing.assert_array_equal(a.values, b.values)

    @pytest.mark.skipif(not HAVE_TORCH, reason="torch not installed")
    def test_torch_backend_matches_numpy_numerically(self, rng):
        backend = get_backend("torch")
        if backend.name != "torch":
            pytest.skip("torch import succeeded but probe demoted it")
        assert backend.exact is False
        r = hermitian_stack(rng)
        a = rng.normal(size=(4, 7)) + 1j * rng.normal(size=(4, 7))
        product = backend.matmul(r, a)
        assert isinstance(product, np.ndarray)
        np.testing.assert_allclose(
            product, np.matmul(r, a), rtol=1e-9, atol=1e-12
        )
        values, vectors = backend.eigh(r)
        np.testing.assert_allclose(
            values, np.linalg.eigvalsh(r), rtol=1e-7, atol=1e-10
        )
        rebuilt = np.matmul(
            vectors * values[:, None, :], vectors.conj().transpose(0, 2, 1)
        )
        np.testing.assert_allclose(rebuilt, r, rtol=1e-7, atol=1e-9)

    @pytest.mark.skipif(not HAVE_TORCH, reason="torch not installed")
    def test_torch_batched_chain_matches_numpy_closely(self, rng):
        x = rng.normal(size=(4, 4, 16)) + 1j * rng.normal(size=(4, 4, 16))
        config = BatchPMusicConfig(spacing_m=0.163, wavelength_m=0.326)
        reference = batched_pmusic_spectra(x, config)
        with use_backend("torch") as backend:
            if backend.name != "torch":
                pytest.skip("torch import succeeded but probe demoted it")
            alternate = batched_pmusic_spectra(x, config)
        for a, b in zip(reference, alternate):
            np.testing.assert_allclose(a.values, b.values, rtol=1e-6, atol=1e-9)


class TestSubclassContract:
    def test_base_backend_is_numpy_semantics(self, rng):
        backend = ArrayBackend()
        assert backend.name == "numpy"
        assert backend.exact is True
        r = hermitian_stack(rng, n=1)
        np.testing.assert_array_equal(
            backend.eigvalsh(r), np.linalg.eigvalsh(r)
        )
