"""Tests for the environment presets."""

import pytest

from repro.sim.environments import (
    calibration_scene,
    hall_scene,
    laboratory_scene,
    library_scene,
    table_scene,
)


class TestRoomPresets:
    def test_paper_dimensions(self):
        assert library_scene(rng=1).room.width == pytest.approx(7.0)
        assert library_scene(rng=1).room.height == pytest.approx(10.0)
        assert laboratory_scene(rng=1).room.width == pytest.approx(9.0)
        assert hall_scene(rng=1).room.width == pytest.approx(7.2)

    def test_default_counts(self):
        scene = library_scene(rng=1)
        assert len(scene.readers) == 4
        assert len(scene.tags) == 21
        assert all(r.array.num_antennas == 8 for r in scene.readers)

    def test_multipath_richness_ordering(self):
        library = library_scene(rng=1)
        laboratory = laboratory_scene(rng=1)
        hall = hall_scene(rng=1)
        assert len(library.reflectors) > len(laboratory.reflectors) > len(
            hall.reflectors
        )

    def test_arrays_inside_room(self):
        scene = library_scene(rng=2)
        for reader in scene.readers:
            for element in reader.array.element_positions():
                assert scene.room.contains(element, margin=-0.01)

    def test_distinct_reader_offsets(self):
        import numpy as np

        scene = library_scene(rng=3)
        offsets = [tuple(np.round(r.phase_offsets, 6)) for r in scene.readers]
        assert len(set(offsets)) == len(offsets)

    def test_antenna_count_override(self):
        scene = hall_scene(rng=4, num_antennas=4)
        assert all(r.array.num_antennas == 4 for r in scene.readers)

    def test_reflector_count_override(self):
        scene = hall_scene(rng=5, num_reflectors=9)
        assert len(scene.reflectors) == 9

    def test_seeded_scenes_reproducible(self):
        a = library_scene(rng=7)
        b = library_scene(rng=7)
        assert [t.position for t in a.tags] == [t.position for t in b.tags]


class TestTableScene:
    def test_two_short_range_readers(self):
        scene = table_scene(rng=1)
        assert len(scene.readers) == 2
        assert all(r.max_range_m == pytest.approx(3.0) for r in scene.readers)

    def test_tags_on_far_sides(self):
        scene = table_scene(rng=1, num_tags=26)
        assert len(scene.tags) == 26
        for tag in scene.tags:
            on_top = abs(tag.position.y - 2.0) < 1e-9
            on_left = abs(tag.position.x - 0.0) < 1e-9
            assert on_top or on_left

    def test_all_tags_in_range_of_both_readers(self):
        scene = table_scene(rng=1)
        for reader in scene.readers:
            assert len(scene.tags_in_range(reader)) == len(scene.tags)


class TestCalibrationScene:
    def test_single_reader(self):
        scene = calibration_scene(rng=1)
        assert len(scene.readers) == 1

    def test_tag_distances_within_paper_range(self):
        scene = calibration_scene(rng=2, num_tags=10)
        anchor = scene.readers[0].array.centroid
        for tag in scene.tags:
            assert anchor.distance_to(tag.position) <= 8.5

    def test_los_dominates_with_multipath_present(self):
        scene = calibration_scene(rng=3, num_tags=8)
        reader = scene.readers[0]
        saw_multipath = False
        for channel in scene.channels_for(reader).values():
            gains = sorted((abs(p.gain) for p in channel.paths), reverse=True)
            if len(gains) > 1:
                saw_multipath = True
                assert gains[1] < gains[0]  # LoS strongest
        assert saw_multipath
