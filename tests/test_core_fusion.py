"""Tests for repro.core.fusion."""

import numpy as np
import pytest

from repro.core.fusion import fuse_fixes, geometric_median
from repro.errors import EstimationError
from repro.geometry.point import Point


class TestGeometricMedian:
    def test_single_point(self):
        assert geometric_median([Point(2, 3)]) == Point(2, 3)

    def test_symmetric_cluster_centre(self):
        points = [Point(1, 0), Point(-1, 0), Point(0, 1), Point(0, -1)]
        median = geometric_median(points)
        assert abs(median.x) < 1e-6 and abs(median.y) < 1e-6

    def test_robust_to_one_outlier(self):
        points = [Point(0, 0), Point(0.1, 0), Point(-0.1, 0), Point(100, 100)]
        median = geometric_median(points)
        assert median.distance_to(Point(0, 0)) < 0.2

    def test_outlier_shifts_mean_not_median(self):
        points = [Point(0, 0)] * 5 + [Point(50, 50)]
        median = geometric_median(points)
        mean = Point(
            float(np.mean([p.x for p in points])),
            float(np.mean([p.y for p in points])),
        )
        assert median.distance_to(Point(0, 0)) < mean.distance_to(Point(0, 0))

    def test_empty_rejected(self):
        with pytest.raises(EstimationError):
            geometric_median([])

    def test_collinear_points(self):
        points = [Point(0, 0), Point(1, 0), Point(2, 0)]
        median = geometric_median(points)
        assert median.y == pytest.approx(0.0, abs=1e-6)
        assert median.x == pytest.approx(1.0, abs=1e-3)


class TestFuseFixes:
    def test_skips_uncovered(self):
        fixes = [Point(1, 1), None, Point(1.1, 0.9), None]
        fused = fuse_fixes(fixes)
        assert fused.num_fixes == 2
        assert fused.position.distance_to(Point(1.05, 0.95)) < 0.1

    def test_ghost_minority_rejected(self):
        fixes = [Point(2, 2)] * 7 + [Point(6, 1)] * 2
        fused = fuse_fixes(fixes)
        assert fused.position.distance_to(Point(2, 2)) < 0.05
        assert fused.num_inliers == 7
        assert fused.inlier_fraction == pytest.approx(7 / 9)

    def test_spread_reflects_scatter(self, rng):
        tight = [
            Point(3 + rng.normal(0, 0.02), 3 + rng.normal(0, 0.02))
            for _ in range(20)
        ]
        loose = [
            Point(3 + rng.normal(0, 0.2), 3 + rng.normal(0, 0.2))
            for _ in range(20)
        ]
        assert fuse_fixes(tight).spread < fuse_fixes(loose).spread

    def test_all_none_rejected(self):
        with pytest.raises(EstimationError):
            fuse_fixes([None, None])

    def test_single_fix_passthrough(self):
        fused = fuse_fixes([Point(4, 5)])
        assert fused.position == Point(4, 5)
        assert fused.num_inliers == 1
