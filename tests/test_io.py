"""Tests for repro.io (deployment persistence)."""

import json

import numpy as np
import pytest

from repro.calibration.offsets import PhaseOffsets
from repro.errors import ConfigurationError
from repro.io import (
    calibration_from_dict,
    calibration_to_dict,
    load_calibration,
    load_scene,
    save_calibration,
    save_scene,
    scene_from_dict,
    scene_to_dict,
)
from repro.sim.environments import hall_scene, table_scene
from repro.wifi import wifi_office_scene


class TestSceneRoundtrip:
    def test_geometry_preserved(self):
        scene = hall_scene(rng=141)
        rebuilt = scene_from_dict(scene_to_dict(scene))
        assert rebuilt.room.width == scene.room.width
        assert rebuilt.name == scene.name
        assert len(rebuilt.readers) == len(scene.readers)
        assert len(rebuilt.tags) == len(scene.tags)
        assert len(rebuilt.reflectors) == len(scene.reflectors)

    def test_phase_offsets_preserved(self):
        scene = hall_scene(rng=142)
        rebuilt = scene_from_dict(scene_to_dict(scene))
        for original, restored in zip(scene.readers, rebuilt.readers):
            assert np.allclose(original.phase_offsets, restored.phase_offsets)

    def test_tag_identity_preserved(self):
        scene = table_scene(rng=143)
        rebuilt = scene_from_dict(scene_to_dict(scene))
        assert [t.epc for t in rebuilt.tags] == [t.epc for t in scene.tags]
        for original, restored in zip(scene.tags, rebuilt.tags):
            assert restored.position == original.position

    def test_wifi_scene_roundtrip(self):
        scene = wifi_office_scene(rng=144)
        rebuilt = scene_from_dict(scene_to_dict(scene))
        assert rebuilt.frequency_hz == scene.frequency_hz
        assert rebuilt.readers[0].array.spacing_m == pytest.approx(
            scene.readers[0].array.spacing_m
        )

    def test_channels_identical_after_roundtrip(self):
        scene = hall_scene(rng=145)
        rebuilt = scene_from_dict(scene_to_dict(scene))
        reader = scene.readers[0]
        twin = rebuilt.readers[0]
        original = scene.channels_for(reader)
        restored = rebuilt.channels_for(twin)
        assert set(original) == set(restored)
        epc = next(iter(original))
        assert np.allclose(
            original[epc].gains(), restored[epc].gains()
        )

    def test_file_roundtrip(self, tmp_path):
        scene = hall_scene(rng=146)
        path = tmp_path / "deployment.json"
        save_scene(scene, path)
        rebuilt = load_scene(path)
        assert rebuilt.name == scene.name
        # The file is genuine JSON.
        json.loads(path.read_text())

    def test_bad_schema_rejected(self):
        with pytest.raises(ConfigurationError):
            scene_from_dict({"schema": 99})

    def test_malformed_data_rejected(self):
        data = scene_to_dict(hall_scene(rng=147))
        del data["readers"][0]["array"]
        with pytest.raises(ConfigurationError):
            scene_from_dict(data)


class TestCalibrationRoundtrip:
    def test_roundtrip(self):
        calibration = {
            "reader-0": PhaseOffsets(np.array([0.0, 0.4, -1.1])),
            "reader-1": PhaseOffsets(np.array([0.0, 2.2, 0.3])),
        }
        rebuilt = calibration_from_dict(calibration_to_dict(calibration))
        assert set(rebuilt) == set(calibration)
        for name in calibration:
            assert np.allclose(rebuilt[name].values, calibration[name].values)

    def test_file_roundtrip(self, tmp_path):
        calibration = {"r": PhaseOffsets(np.array([0.0, 1.0]))}
        path = tmp_path / "calibration.json"
        save_calibration(calibration, path)
        rebuilt = load_calibration(path)
        assert np.allclose(rebuilt["r"].values, [0.0, 1.0])

    def test_usable_by_dwatch(self, tmp_path):
        from repro.core.pipeline import DWatch
        from repro.sim.measurement import MeasurementSession

        scene = hall_scene(rng=148)
        calibration = {
            reader.name: PhaseOffsets.referenced(
                np.asarray(reader.phase_offsets)
            )
            for reader in scene.readers
        }
        path = tmp_path / "calibration.json"
        save_calibration(calibration, path)

        dwatch = DWatch(scene)
        dwatch.set_calibration(load_calibration(path))
        session = MeasurementSession(scene, rng=149)
        dwatch.collect_baseline(session.capture())  # must not raise

    def test_bad_schema_rejected(self):
        with pytest.raises(ConfigurationError):
            calibration_from_dict({"schema": 0, "offsets": {}})
