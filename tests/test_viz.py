"""Tests for repro.viz (ASCII rendering)."""

import math

import numpy as np
import pytest

from repro.dsp.spectrum import AngularSpectrum
from repro.errors import ConfigurationError
from repro.sim.environments import hall_scene
from repro.viz import render_heatmap, render_scene, render_spectrum


@pytest.fixture
def spectrum():
    angles = np.linspace(0, math.pi, 181)
    values = np.exp(-0.5 * ((angles - math.pi / 2) / 0.1) ** 2)
    return AngularSpectrum(angles, values)


class TestRenderSpectrum:
    def test_dimensions(self, spectrum):
        rows = render_spectrum(spectrum, width=60, height=10)
        assert len(rows) == 12  # plot + marker axis + label row
        assert all(len(r) <= 61 for r in rows)

    def test_peak_column_filled(self, spectrum):
        rows = render_spectrum(spectrum, width=61, height=10)
        # Centre column should be filled near the top row.
        assert rows[0][30] == "#"

    def test_markers_drawn(self, spectrum):
        rows = render_spectrum(spectrum, width=61, height=8,
                               markers=[math.pi / 2])
        assert "|" in rows[-2]

    def test_canvas_too_small_rejected(self, spectrum):
        with pytest.raises(ConfigurationError):
            render_spectrum(spectrum, width=5, height=2)

    def test_flat_spectrum_blank(self):
        flat = AngularSpectrum(np.linspace(0, math.pi, 10), np.zeros(10))
        rows = render_spectrum(flat, width=20, height=5)
        assert all(set(r) <= {" "} for r in rows[:5])


class TestRenderHeatmap:
    def test_row_count(self):
        rows = render_heatmap(np.random.default_rng(0).random((6, 10)))
        assert len(rows) == 6

    def test_peak_is_darkest(self):
        grid = np.zeros((3, 3))
        grid[1, 1] = 1.0
        rows = render_heatmap(grid)
        assert rows[1][1] == "@"

    def test_rejects_1d(self):
        with pytest.raises(ConfigurationError):
            render_heatmap(np.zeros(5))

    def test_downsampling(self):
        rows = render_heatmap(np.ones((4, 100)), width=25)
        assert len(rows[0]) <= 50


class TestRenderScene:
    def test_contains_all_markers(self):
        rows = render_scene(hall_scene(rng=91))
        joined = "".join(rows)
        assert "R" in joined
        assert "t" in joined

    def test_border(self):
        rows = render_scene(hall_scene(rng=91), width=40, height=12)
        assert rows[0].startswith("+")
        assert rows[-2].startswith("+")
        assert len(rows) == 15
