"""Integration tests for the DWatch facade (the end-to-end pipeline)."""

import pytest

from repro.core.pipeline import DWatch, calibrate_readers
from repro.calibration.offsets import PhaseOffsets, offset_error
from repro.errors import CalibrationError
from repro.geometry.point import Point
from repro.sim.environments import hall_scene
from repro.sim.measurement import MeasurementSession
from repro.sim.target import human_target

import numpy as np


@pytest.fixture(scope="module")
def deployment():
    scene = hall_scene(rng=21)
    dwatch = DWatch(scene)
    dwatch.calibrate(rng=22)
    session = MeasurementSession(scene, rng=23)
    dwatch.collect_baseline([session.capture() for _ in range(2)])
    return scene, dwatch, session


class TestCalibrationStep:
    def test_calibrate_readers_accuracy(self):
        scene = hall_scene(rng=31)
        calibration = calibrate_readers(scene, rng=32)
        for reader in scene.readers:
            truth = PhaseOffsets.referenced(np.asarray(reader.phase_offsets))
            assert offset_error(calibration[reader.name], truth) < 0.15

    def test_baseline_requires_calibration(self):
        scene = hall_scene(rng=33)
        dwatch = DWatch(scene)
        session = MeasurementSession(scene, rng=34)
        with pytest.raises(CalibrationError):
            dwatch.collect_baseline(session.capture())


def covered_positions(scene, limit=6):
    """Positions guaranteed to shadow paths: on tag-to-array lines.

    Not every room point is covered (deadzones are a real phenomenon
    the paper discusses), so tests place targets where geometry says
    at least one path crosses.
    """
    positions = []
    for tag in scene.tags[:limit]:
        for reader in scene.readers[:2]:
            midpoint = (tag.position + reader.array.centroid) / 2.0
            if scene.room.contains(midpoint, margin=0.5):
                positions.append(midpoint)
    return positions


class TestLocalizationStep:
    def test_localizes_on_path_target(self, deployment):
        scene, dwatch, session = deployment
        successes = 0
        for position in covered_positions(scene):
            target = human_target(position)
            estimates = dwatch.localize(session.capture([target]))
            if estimates and target.localization_error(estimates[0].position) < 0.5:
                successes += 1
        assert successes >= 2

    def test_empty_area_yields_no_estimates(self, deployment):
        scene, dwatch, session = deployment
        assert dwatch.localize(session.capture()) == []

    def test_estimate_carries_reader_angles(self, deployment):
        scene, dwatch, session = deployment
        target = human_target(Point(3.5, 5.0))
        estimates = dwatch.localize(session.capture([target]))
        if estimates:  # covered locations carry per-reader geometry
            assert estimates[0].per_reader_angles

    def test_localize_before_baseline_raises(self):
        from repro.errors import LocalizationError

        scene = hall_scene(rng=41)
        dwatch = DWatch(scene)
        dwatch.set_calibration(
            {
                r.name: PhaseOffsets.referenced(np.asarray(r.phase_offsets))
                for r in scene.readers
            }
        )
        session = MeasurementSession(scene, rng=42)
        with pytest.raises(LocalizationError):
            dwatch.evidence(session.capture())


class TestSetCalibration:
    def test_ground_truth_offsets_accepted(self, deployment):
        scene, _, session = deployment
        dwatch = DWatch(scene)
        dwatch.set_calibration(
            {
                r.name: PhaseOffsets.referenced(np.asarray(r.phase_offsets))
                for r in scene.readers
            }
        )
        dwatch.collect_baseline(session.capture())
        localized_any = False
        for position in covered_positions(scene):
            target = human_target(position)
            if dwatch.localize(session.capture([target])):
                localized_any = True
                break
        assert localized_any
