"""Tests for repro.rfid.tag."""

import pytest

from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.rfid.tag import Tag


class TestTag:
    def test_random_epc_assigned(self):
        tag_a = Tag(position=Point(0, 0))
        tag_b = Tag(position=Point(0, 0))
        assert tag_a.epc != tag_b.epc
        assert len(tag_a.epc) == 24

    def test_zero_backscatter_rejected(self):
        with pytest.raises(ConfigurationError):
            Tag(position=Point(0, 0), backscatter_gain=0.0)

    def test_negative_height_rejected(self):
        with pytest.raises(ConfigurationError):
            Tag(position=Point(0, 0), height_m=-0.1)


class TestSlotDraw:
    def test_slot_within_frame(self):
        tag = Tag(position=Point(0, 0))
        for q in (0, 1, 4, 8):
            for seed in range(5):
                slot = tag.draw_slot(q, rng=seed)
                assert 0 <= slot < 2**q

    def test_q_zero_always_slot_zero(self):
        tag = Tag(position=Point(0, 0))
        assert tag.draw_slot(0, rng=1) == 0

    def test_invalid_q_rejected(self):
        tag = Tag(position=Point(0, 0))
        with pytest.raises(ConfigurationError):
            tag.draw_slot(16)


class TestRn16:
    def test_sixteen_bits(self):
        tag = Tag(position=Point(0, 0))
        for seed in range(10):
            assert 0 <= tag.rn16(rng=seed) < 2**16
