"""Debug-mode array contracts and the zero-overhead disabled path.

The load-bearing guarantee mirrors the observability layer's: with
``REPRO_DEBUG`` unset (the default) the decorators return the original
function objects at decoration time, so the production pipeline runs
undecorated code and its numerics are **bit-identical** to a
sanitized run — verified below by hashing pipeline arrays produced in
subprocesses with the gate off and on.
"""

import hashlib
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.contracts import check_shapes, contracts_enabled, ensure_finite
from repro.errors import ContractViolation

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestGate:
    def test_disabled_by_default_in_test_suite(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEBUG", raising=False)
        assert not contracts_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_truthy_values_enable(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_DEBUG", value)
        assert contracts_enabled()

    @pytest.mark.parametrize("value", ["", "0", "false", "off", "no"])
    def test_falsy_values_disable(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_DEBUG", value)
        assert not contracts_enabled()


class TestZeroOverheadDisabledPath:
    def test_decorators_are_identity_when_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEBUG", raising=False)

        def f(x):
            return x

        assert check_shapes(returns="M,M", x="M,N")(f) is f
        assert ensure_finite(f) is f
        assert ensure_finite()(f) is f

    @pytest.mark.skipif(
        contracts_enabled(), reason="suite was launched with REPRO_DEBUG on"
    )
    def test_library_hot_paths_are_undecorated_when_disabled(self):
        # The suite normally runs with the gate off, so the imported
        # functions must be the plain originals (no wrapper attribute).
        from repro.dsp.covariance import sample_covariance
        from repro.dsp.music import eigendecompose

        assert not hasattr(sample_covariance, "__wrapped__")
        assert not hasattr(eigendecompose, "__wrapped__")

    def test_bad_spec_still_rejected_when_disabled(self, monkeypatch):
        # Spec typos are programming errors; they fail at import time
        # regardless of the gate so they cannot lurk until a debug run.
        monkeypatch.delenv("REPRO_DEBUG", raising=False)
        with pytest.raises(ContractViolation, match="unknown parameter"):
            check_shapes(q="M,N")(lambda x: x)


class TestCheckShapes:
    def test_passing_call_returns_result(self):
        @check_shapes("complex:M,M", force=True, snapshots="M,N")
        def cov(snapshots):
            x = np.asarray(snapshots, dtype=complex)
            return x @ x.conj().T / x.shape[1]

        result = cov(np.ones((3, 8), dtype=complex))
        assert result.shape == (3, 3)

    def test_wrong_ndim_raises(self):
        @check_shapes(force=True, x="M,N")
        def f(x):
            return x

        with pytest.raises(ContractViolation, match="expected 2-D"):
            f(np.ones(4))

    def test_inconsistent_binding_raises(self):
        @check_shapes(force=True, a="M,N", b="N,K")
        def f(a, b):
            return a

        with pytest.raises(ContractViolation, match="already bound"):
            f(np.ones((2, 3)), np.ones((4, 5)))

    def test_return_spec_uses_argument_bindings(self):
        @check_shapes("M,M", force=True, x="M,N")
        def not_square(x):
            return np.ones((x.shape[0], x.shape[0] + 1))

        with pytest.raises(ContractViolation, match="return value"):
            not_square(np.ones((3, 5)))

    def test_dtype_prefix_enforced(self):
        @check_shapes(force=True, x="complex:M,N")
        def f(x):
            return x

        with pytest.raises(ContractViolation, match="expected complex"):
            f(np.ones((2, 2)))
        f(np.ones((2, 2), dtype=complex))

    def test_integer_literal_and_wildcard(self):
        @check_shapes(force=True, x="2,*")
        def f(x):
            return x

        f(np.ones((2, 7)))
        with pytest.raises(ContractViolation, match="must be 2"):
            f(np.ones((3, 7)))

    def test_none_arguments_are_skipped(self):
        @check_shapes(force=True, grid="G")
        def f(x, grid=None):
            return x

        assert f(1.0) == 1.0


class TestEnsureFinite:
    def test_rejects_nan_argument(self):
        @ensure_finite(force=True)
        def f(x):
            return x

        with pytest.raises(ContractViolation, match="non-finite"):
            f(np.array([1.0, np.nan]))

    def test_rejects_inf_in_keyword_and_return(self):
        @ensure_finite(force=True)
        def passthrough(x=None):
            return x

        with pytest.raises(ContractViolation, match="'x'"):
            passthrough(x=np.array([np.inf]))

        @ensure_finite(force=True)
        def produce():
            return np.array([0.0, -np.inf])

        with pytest.raises(ContractViolation, match="return value"):
            produce()

    def test_integer_arrays_and_scalars_pass(self):
        @ensure_finite(force=True)
        def f(n, flags):
            return n

        assert f(3, np.array([1, 2, 3])) == 3


PIPELINE_PROBE = """
import hashlib

import numpy as np

from repro.dsp.bartlett import bartlett_power_spectrum
from repro.dsp.covariance import sample_covariance
from repro.dsp.music import MusicEstimator
from repro.utils.rng import ensure_rng

rng = ensure_rng(20160712)
snapshots = rng.normal(size=(8, 128)) + 1j * rng.normal(size=(8, 128))
cov = sample_covariance(snapshots)
est = MusicEstimator(spacing_m=0.163)
spec = est.spectrum(snapshots)
bart = bartlett_power_spectrum(snapshots, 0.163, 0.326)
digest = hashlib.sha256()
for arr in (cov, spec.values, bart.values):
    digest.update(np.ascontiguousarray(arr).tobytes())
print(digest.hexdigest())
"""


def run_probe(debug_value):
    env = dict(os.environ, PYTHONPATH="src")
    env.pop("REPRO_DEBUG", None)
    if debug_value is not None:
        env["REPRO_DEBUG"] = debug_value
    result = subprocess.run(
        [sys.executable, "-c", PIPELINE_PROBE],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return result.stdout.strip()


class TestBitIdenticalRegression:
    def test_disabled_and_debug_runs_hash_identically(self):
        # Bitwise equality of every covariance/spectrum byte: the
        # sanitizer must observe, never perturb.
        unset = run_probe(None)
        off = run_probe("0")
        on = run_probe("1")
        assert len(unset) == 64
        assert unset == off == on
