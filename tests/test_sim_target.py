"""Tests for repro.sim.target."""

import pytest

from repro.constants import (
    BOTTLE_TARGET_RADIUS_M,
    FIST_TARGET_RADIUS_M,
    HUMAN_TARGET_RADIUS_M,
)
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.sim.target import Target, bottle_target, fist_target, human_target


class TestFactories:
    def test_human_dimensions(self):
        target = human_target(Point(1, 2))
        assert target.radius == HUMAN_TARGET_RADIUS_M
        assert target.kind == "human"

    def test_bottle_dimensions(self):
        assert bottle_target(Point(0, 0)).radius == BOTTLE_TARGET_RADIUS_M

    def test_fist_dimensions(self):
        assert fist_target(Point(0, 0)).radius == FIST_TARGET_RADIUS_M


class TestExtendedTargetError:
    def test_zero_inside_body(self):
        target = human_target(Point(0, 0))
        assert target.localization_error(Point(0.1, 0.1)) == 0.0

    def test_zero_exactly_on_edge(self):
        target = human_target(Point(0, 0))
        assert target.localization_error(Point(HUMAN_TARGET_RADIUS_M, 0)) == 0.0

    def test_measures_gap_outside(self):
        target = human_target(Point(0, 0))
        error = target.localization_error(Point(HUMAN_TARGET_RADIUS_M + 0.5, 0))
        assert error == pytest.approx(0.5)


class TestTarget:
    def test_body_circle(self):
        target = Target(position=Point(3, 4), radius=0.2)
        body = target.body()
        assert body.center == Point(3, 4)
        assert body.radius == 0.2

    def test_moved_to_preserves_shape(self):
        target = bottle_target(Point(0, 0))
        moved = target.moved_to(Point(5, 5))
        assert moved.position == Point(5, 5)
        assert moved.radius == target.radius
        assert moved.kind == target.kind

    def test_invalid_radius_rejected(self):
        with pytest.raises(ConfigurationError):
            Target(position=Point(0, 0), radius=0.0)
