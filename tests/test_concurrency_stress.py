"""Threaded stress tests for the shared runtime components.

Every test forces the lock sanitizer on (``REPRO_DEBUG=1`` before the
objects under test are constructed, so their locks are instrumented),
hammers the component from barrier-started threads, and then asserts
two things: the component's own invariants held (conservation of
counts, bounded capacity) *and* the sanitizer witnessed no lock-order
inversions and no unguarded accesses while it was watching.
"""

import json
import threading
import urllib.request

import pytest

from repro.analysis import sanitizer
from repro.core.pipeline import DWatch
from repro.obs.export import validate_exposition
from repro.obs.metrics import MetricsRegistry
from repro.obs.server import OpsServer, registry_snapshot
from repro.sim.environments import hall_scene
from repro.sim.measurement import MeasurementSession
from repro.stream import (
    BoundedReadQueue,
    FixQuality,
    ProvenanceRing,
    StreamRunner,
    SyntheticStreamConfig,
    TagRead,
    TrackFix,
    synthetic_reads,
)


@pytest.fixture(autouse=True)
def _sanitized_world(monkeypatch):
    monkeypatch.setenv("REPRO_DEBUG", "1")
    sanitizer.reset()
    yield
    sanitizer.reset()


def assert_sanitizer_clean():
    report = sanitizer.report()
    assert report["enabled"] is True
    assert report["inversions"] == [], report["inversions"]
    assert report["witnesses"] == [], report["witnesses"]


def a_read(index):
    return TagRead(
        reader_name="R1", epc="EPC-1", time_s=float(index), iq=1 + 1j
    )


def a_fix(index):
    return TrackFix(
        index=index,
        time_s=float(index),
        position=None,
        quality=FixQuality(level="insufficient", confidence=0.0),
        predicted_only=True,
    )


class TestQueueStress:
    PRODUCERS = 4
    CONSUMERS = 2
    PER_PRODUCER = 200

    def test_producers_and_consumers_conserve_reads(self):
        queue = BoundedReadQueue(capacity=64, policy="drop-newest")
        assert isinstance(queue._lock, sanitizer.SanitizedLock)
        barrier = threading.Barrier(self.PRODUCERS + self.CONSUMERS)
        produced_done = threading.Event()
        drained = [[] for _ in range(self.CONSUMERS)]

        def produce(worker):
            barrier.wait(timeout=10.0)
            for i in range(self.PER_PRODUCER):
                queue.put(a_read(worker * self.PER_PRODUCER + i))

        def consume(slot):
            barrier.wait(timeout=10.0)
            while True:
                read = queue.get()
                if read is not None:
                    drained[slot].append(read)
                elif produced_done.is_set():
                    return

        threads = [
            threading.Thread(target=produce, args=(w,), daemon=True)
            for w in range(self.PRODUCERS)
        ] + [
            threading.Thread(target=consume, args=(s,), daemon=True)
            for s in range(self.CONSUMERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads[: self.PRODUCERS]:
            thread.join(timeout=30.0)
        produced_done.set()
        for thread in threads[self.PRODUCERS :]:
            thread.join(timeout=30.0)
        assert not any(t.is_alive() for t in threads)

        stats = queue.stats
        total_drained = sum(len(chunk) for chunk in drained)
        assert stats.offered == self.PRODUCERS * self.PER_PRODUCER
        # Conservation: every offered read was either accepted or
        # counted as dropped, and every accepted read was drained or is
        # still queued.
        assert stats.accepted + stats.dropped_newest == stats.offered
        assert stats.accepted == total_drained + len(queue)
        assert_sanitizer_clean()

    def test_put_many_against_concurrent_drain(self):
        queue = BoundedReadQueue(capacity=32, policy="drop-oldest")
        barrier = threading.Barrier(2)

        def produce():
            barrier.wait(timeout=10.0)
            for batch in range(20):
                queue.put_many(a_read(batch * 10 + i) for i in range(10))

        def consume():
            barrier.wait(timeout=10.0)
            for _ in range(200):
                queue.drain(limit=7)

        producer = threading.Thread(target=produce, daemon=True)
        consumer = threading.Thread(target=consume, daemon=True)
        producer.start()
        consumer.start()
        producer.join(timeout=30.0)
        consumer.join(timeout=30.0)
        assert not producer.is_alive() and not consumer.is_alive()
        stats = queue.stats
        assert stats.offered == 200
        assert stats.accepted + stats.dropped_newest == stats.offered
        assert_sanitizer_clean()


class TestProvenanceRingStress:
    WRITERS = 4
    READERS = 2
    PER_WRITER = 100
    CAPACITY = 32

    def test_concurrent_push_and_recent(self):
        ring = ProvenanceRing(capacity=self.CAPACITY)
        barrier = threading.Barrier(self.WRITERS + self.READERS)
        stop = threading.Event()
        seen_lengths = []

        def write(worker):
            barrier.wait(timeout=10.0)
            for i in range(self.PER_WRITER):
                ring.push(a_fix(worker * self.PER_WRITER + i))

        def read():
            barrier.wait(timeout=10.0)
            while not stop.is_set():
                recent = ring.recent(limit=8)
                assert len(recent) <= 8
                seen_lengths.append(len(ring))

        threads = [
            threading.Thread(target=write, args=(w,), daemon=True)
            for w in range(self.WRITERS)
        ] + [threading.Thread(target=read, daemon=True) for _ in range(self.READERS)]
        for thread in threads:
            thread.start()
        for thread in threads[: self.WRITERS]:
            thread.join(timeout=30.0)
        stop.set()
        for thread in threads[self.WRITERS :]:
            thread.join(timeout=30.0)
        assert not any(t.is_alive() for t in threads)

        # The ring is full (more fixes pushed than capacity) and every
        # observed length respected the bound.
        assert len(ring) == self.CAPACITY
        assert all(n <= self.CAPACITY for n in seen_lengths)
        records = ring.recent()
        assert len(records) == self.CAPACITY
        assert all("index" in record for record in records)
        assert_sanitizer_clean()


class TestMetricsRegistryStress:
    THREADS = 8
    PER_THREAD = 250

    def test_labeled_counters_and_histograms_under_contention(self):
        registry = MetricsRegistry()
        barrier = threading.Barrier(self.THREADS + 1)
        stop = threading.Event()

        def work(worker):
            barrier.wait(timeout=10.0)
            labels = {"worker": str(worker % 4)}
            for i in range(self.PER_THREAD):
                registry.counter("stress.hits", labels=labels).inc()
                registry.histogram("stress.latency").observe(i % 10)

        def scrape():
            barrier.wait(timeout=10.0)
            while not stop.is_set():
                for record in registry.snapshot():
                    assert record["name"].startswith("stress.")

        workers = [
            threading.Thread(target=work, args=(w,), daemon=True)
            for w in range(self.THREADS)
        ]
        scraper = threading.Thread(target=scrape, daemon=True)
        for thread in workers:
            thread.start()
        scraper.start()
        for thread in workers:
            thread.join(timeout=30.0)
        stop.set()
        scraper.join(timeout=30.0)
        assert not scraper.is_alive()
        assert not any(t.is_alive() for t in workers)

        records = registry.snapshot()
        hit_total = sum(
            record["value"]
            for record in records
            if record["name"] == "stress.hits"
        )
        assert hit_total == self.THREADS * self.PER_THREAD
        histogram = next(
            record for record in records if record["name"] == "stress.latency"
        )
        assert histogram["count"] == self.THREADS * self.PER_THREAD
        assert_sanitizer_clean()


class TestConcurrentScrape:
    """Live stream run with the ops endpoint scraped from other threads."""

    SCRAPERS = 3

    def test_metrics_and_provenance_survive_a_live_run(self):
        scene = hall_scene(rng=15, num_tags=4, num_antennas=4)
        dwatch = DWatch(scene, cell_size=0.1)
        dwatch.calibrate(rng=16)
        session = MeasurementSession(scene, rng=17)
        dwatch.collect_baseline([session.capture() for _ in range(2)])
        runner = StreamRunner(dwatch)
        reads = synthetic_reads(scene, SyntheticStreamConfig(fixes=3), rng=18)
        ring = ProvenanceRing(capacity=16)

        done = threading.Event()
        statuses = []
        statuses_lock = threading.Lock()
        fixes = []

        def stream():
            try:
                for fix in runner.run(iter(reads)):
                    ring.push(fix)
                    fixes.append(fix)
            finally:
                done.set()

        def scrape(base_url):
            while not done.is_set():
                for route in ("/metrics", "/provenance/recent?limit=4"):
                    with urllib.request.urlopen(
                        base_url + route, timeout=5.0
                    ) as response:
                        body = response.read()
                        with statuses_lock:
                            statuses.append((route, response.status, body))

        with OpsServer(
            port=0, snapshot_source=registry_snapshot, ring=ring
        ) as server:
            streamer = threading.Thread(target=stream, daemon=True)
            scrapers = [
                threading.Thread(
                    target=scrape, args=(server.url,), daemon=True
                )
                for _ in range(self.SCRAPERS)
            ]
            streamer.start()
            for thread in scrapers:
                thread.start()
            streamer.join(timeout=120.0)
            for thread in scrapers:
                thread.join(timeout=30.0)
            assert not streamer.is_alive()
            assert not any(t.is_alive() for t in scrapers)

            # One final scrape of each route after the run completes,
            # so both are exercised at least once regardless of timing.
            with urllib.request.urlopen(
                server.url + "/metrics", timeout=5.0
            ) as response:
                final_metrics = response.read().decode("utf-8")
            with urllib.request.urlopen(
                server.url + "/provenance/recent", timeout=5.0
            ) as response:
                final_provenance = json.loads(response.read())

        assert fixes, "the stream should have produced fixes"
        assert all(status == 200 for _, status, _ in statuses)
        validate_exposition(final_metrics)
        assert final_provenance["retained"] == len(ring.recent())
        assert [f["index"] for f in final_provenance["fixes"]] == [
            fix.index for fix in fixes
        ][-len(final_provenance["fixes"]) :]
        assert_sanitizer_clean()
