"""Tests for repro.calibration.ga (the genetic minimizer)."""

import numpy as np
import pytest

from repro.calibration.ga import GeneticMinimizer
from repro.errors import ConfigurationError


def sphere(x):
    return float(np.sum(x**2))


def rastrigin(x):
    return float(10 * x.size + np.sum(x**2 - 10 * np.cos(2 * np.pi * x)))


class TestGeneticMinimizer:
    def test_minimizes_sphere(self):
        ga = GeneticMinimizer(bounds=[(-5, 5)] * 3, generations=60, population_size=40)
        result = ga.minimize(sphere, rng=1)
        assert result.best_cost < 0.05

    def test_handles_multimodal_landscape(self):
        ga = GeneticMinimizer(bounds=[(-5.12, 5.12)] * 2, generations=120, population_size=80)
        result = ga.minimize(rastrigin, rng=2)
        # Must end in the global basin, not a side lobe (lobe cost >= 1).
        assert result.best_cost < 1.0

    def test_respects_bounds(self):
        ga = GeneticMinimizer(bounds=[(1.0, 2.0)] * 4, generations=20)
        result = ga.minimize(lambda x: -float(np.sum(x)), rng=3)
        assert np.all(result.best >= 1.0) and np.all(result.best <= 2.0)

    def test_initial_seed_individual_used(self):
        ga = GeneticMinimizer(bounds=[(-5, 5)] * 3, generations=0, population_size=8)
        seed = np.array([0.01, -0.01, 0.0])
        result = ga.minimize(sphere, rng=4, initial=seed)
        # With zero generations, the injected near-optimum must win.
        assert result.best_cost <= sphere(seed) + 1e-12

    def test_history_is_non_increasing(self):
        ga = GeneticMinimizer(bounds=[(-5, 5)] * 2, generations=30)
        result = ga.minimize(sphere, rng=5)
        assert all(a >= b for a, b in zip(result.history, result.history[1:]))

    def test_deterministic_given_seed(self):
        ga = GeneticMinimizer(bounds=[(-5, 5)] * 2, generations=15)
        a = ga.minimize(sphere, rng=7)
        b = ga.minimize(sphere, rng=7)
        assert np.allclose(a.best, b.best)


class TestValidation:
    def test_tiny_population_rejected(self):
        with pytest.raises(ConfigurationError):
            GeneticMinimizer(bounds=[(-1, 1)], population_size=2)

    def test_empty_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            GeneticMinimizer(bounds=[])

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            GeneticMinimizer(bounds=[(2.0, 1.0)])

    def test_elite_below_population(self):
        with pytest.raises(ConfigurationError):
            GeneticMinimizer(bounds=[(-1, 1)], population_size=4, elite_count=4)
