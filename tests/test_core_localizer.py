"""Tests for repro.core.localizer (consensus + outlier rejection)."""

import math

import pytest

from repro.core.detector import BlockedPath, _evidence_from_events
from repro.core.likelihood import LikelihoodMap
from repro.core.localizer import DWatchLocalizer
from repro.dsp.spectrum import default_angle_grid
from repro.errors import LocalizationError
from repro.geometry.point import Point

from tests.test_core_likelihood import ROOM, evidence_for_target, make_reader


@pytest.fixture
def readers():
    return {
        "south": make_reader("south", Point(3.0, 0.05), 0.0),
        "west": make_reader("west", Point(0.05, 3.0), math.pi / 2.0),
        "north": make_reader("north", Point(3.0, 5.95), math.pi),
    }


@pytest.fixture
def localizer(readers):
    return DWatchLocalizer(
        likelihood_map=LikelihoodMap(room=ROOM, readers=readers, cell_size=0.05)
    )


def add_event(evidence, readers, reader_name, angle, drop=0.95):
    for item in evidence:
        if item.reader_name == reader_name:
            events = item.events + [
                BlockedPath(
                    reader_name=reader_name,
                    epc="F" * 24,
                    angle=angle,
                    relative_drop=drop,
                    baseline_power=1.0,
                    online_power=1.0 - drop,
                )
            ]
            replacement = _evidence_from_events(
                reader_name, events, item.drop.angles
            )
            evidence[evidence.index(item)] = replacement
            return


class TestCleanLocalization:
    def test_three_reader_fix(self, readers, localizer):
        target = Point(2.2, 3.1)
        estimate = localizer.localize(evidence_for_target(readers, target))
        assert estimate.position.distance_to(target) < 0.2

    def test_two_reader_fix(self, readers, localizer):
        target = Point(4.0, 4.0)
        evidence = evidence_for_target(
            {k: readers[k] for k in ("south", "west")}, target
        )
        estimate = localizer.localize(evidence)
        assert estimate.position.distance_to(target) < 0.2


class TestMinReaders:
    def test_single_reader_rejected(self, readers, localizer):
        target = Point(2.0, 2.0)
        evidence = evidence_for_target({"south": readers["south"]}, target)
        with pytest.raises(LocalizationError):
            localizer.localize(evidence)

    def test_no_detection_rejected(self, localizer):
        empty = [_evidence_from_events("south", [], default_angle_grid())]
        with pytest.raises(LocalizationError):
            localizer.localize(empty)


class TestWrongAngleRejection:
    def test_extra_wrong_angle_does_not_break_fix(self, readers, localizer):
        target = Point(2.5, 3.5)
        evidence = evidence_for_target(readers, target)
        # A pre-bounce blocked reflection points the south reader at a
        # reflector 40 degrees away from the truth.
        wrong = readers["south"].array.angle_to(target) + math.radians(40)
        add_event(evidence, readers, "south", wrong)
        estimate = localizer.localize(evidence)
        assert estimate.position.distance_to(target) < 0.25

    def test_two_wrong_angles_on_different_readers(self, readers, localizer):
        target = Point(3.2, 2.4)
        evidence = evidence_for_target(readers, target)
        add_event(
            evidence,
            readers,
            "south",
            readers["south"].array.angle_to(target) + math.radians(35),
        )
        add_event(
            evidence,
            readers,
            "west",
            readers["west"].array.angle_to(target) - math.radians(30),
        )
        estimate = localizer.localize(evidence)
        assert estimate.position.distance_to(target) < 0.25


class TestSupportScoring:
    def test_support_counts_consistent_readers(self, readers, localizer):
        target = Point(2.0, 3.0)
        evidence = evidence_for_target(readers, target)
        estimate = localizer.likelihood_map.estimate_at(target, evidence)
        support_readers, weight = localizer._support(estimate, evidence)
        assert support_readers == 3
        assert weight > 2.0

    def test_support_zero_far_away(self, readers, localizer):
        target = Point(2.0, 3.0)
        evidence = evidence_for_target(readers, target)
        decoy = localizer.likelihood_map.estimate_at(Point(5.5, 0.5), evidence)
        support_readers, _ = localizer._support(decoy, evidence)
        assert support_readers < 2
