"""Wire/disk fault injection: ChaosProxy relay semantics + corrupt_file."""

import json
import socket
import socketserver
import threading

import pytest

from repro.errors import ConfigurationError
from repro.faults import ChaosProxy, WirePlan, corrupt_file


class _EchoHandler(socketserver.StreamRequestHandler):
    """Echoes every newline-terminated line back to the sender."""

    def handle(self):
        self.connection.settimeout(2.0)
        try:
            while True:
                line = self.rfile.readline()
                if not line:
                    return
                self.wfile.write(line)
                self.wfile.flush()
        except OSError:
            return


class _EchoServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True


@pytest.fixture()
def echo_server():
    server = _EchoServer(("127.0.0.1", 0), _EchoHandler)
    thread = threading.Thread(
        target=server.serve_forever, name="test-echo", daemon=True
    )
    thread.start()
    try:
        yield server.server_address
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


def _dial(address, timeout=5.0):
    sock = socket.create_connection(address, timeout=timeout)
    return sock, sock.makefile("rb"), sock.makefile("wb")


def _exchange(rfile, wfile, payload: bytes) -> bytes:
    wfile.write(payload + b"\n")
    wfile.flush()
    return rfile.readline()


class TestRelay:
    def test_empty_plan_is_a_pure_relay(self, echo_server):
        with ChaosProxy(echo_server) as proxy:
            sock, rfile, wfile = _dial(proxy.address)
            try:
                for index in range(5):
                    payload = f"frame-{index}".encode()
                    assert _exchange(rfile, wfile, payload) == payload + b"\n"
            finally:
                sock.close()
            stats = proxy.stats()
        assert stats["connections"] == 1
        assert stats["frames_forwarded"] == 5
        assert stats["corruptions"] == 0

    def test_reset_after_frames_drops_the_connection(self, echo_server):
        plan = WirePlan(reset_after_frames=2)
        with ChaosProxy(echo_server, plan) as proxy:
            sock, rfile, wfile = _dial(proxy.address)
            try:
                assert _exchange(rfile, wfile, b"one") == b"one\n"
                assert _exchange(rfile, wfile, b"two") == b"two\n"
                with pytest.raises(OSError):
                    for _ in range(3):
                        reply = _exchange(rfile, wfile, b"three")
                        if reply == b"":
                            raise ConnectionResetError("relay gone")
            finally:
                sock.close()
            assert proxy.stats()["resets"] >= 1

    def test_partition_refuses_and_heal_restores(self, echo_server):
        with ChaosProxy(echo_server) as proxy:
            proxy.partition()
            # Depending on timing the RST lands during connect or on
            # the first exchange; either way the client sees an OSError.
            with pytest.raises(OSError):
                sock = socket.create_connection(proxy.address, timeout=5.0)
                try:
                    sock.settimeout(2.0)
                    for _ in range(20):
                        sock.sendall(b"knock\n")
                        if sock.recv(64) == b"":
                            raise ConnectionResetError("refused")
                finally:
                    sock.close()
            proxy.heal()
            sock, rfile, wfile = _dial(proxy.address)
            try:
                assert _exchange(rfile, wfile, b"back") == b"back\n"
            finally:
                sock.close()
            assert proxy.stats()["partition_refusals"] >= 1

    def test_corruption_budget_self_clears(self, echo_server):
        plan = WirePlan(seed=3, corrupt_probability=1.0, corrupt_limit=2)
        with ChaosProxy(echo_server, plan) as proxy:
            sock, rfile, wfile = _dial(proxy.address)
            try:
                replies = [
                    _exchange(rfile, wfile, b"abcdefgh") for _ in range(6)
                ]
            finally:
                sock.close()
            stats = proxy.stats()
        assert stats["corruptions"] == 2
        # Once the budget is spent the relay is faithful again.
        assert replies[-1] == b"abcdefgh\n"

    def test_trickle_limit_bounds_slow_connections(self, echo_server):
        plan = WirePlan(
            trickle_chunk_bytes=2, trickle_delay_s=0.001, trickle_limit=1
        )
        with ChaosProxy(echo_server, plan) as proxy:
            for _ in range(2):
                sock, rfile, wfile = _dial(proxy.address)
                try:
                    assert _exchange(rfile, wfile, b"slow") == b"slow\n"
                finally:
                    sock.close()
            assert proxy.stats()["trickled_connections"] == 1


class TestWirePlanValidation:
    def test_bad_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            WirePlan(corrupt_probability=1.5)

    def test_bad_reset_rejected(self):
        with pytest.raises(ConfigurationError):
            WirePlan(reset_after_frames=0)

    def test_bad_trickle_rejected(self):
        with pytest.raises(ConfigurationError):
            WirePlan(trickle_chunk_bytes=0)


class TestCorruptFile:
    def test_flip_changes_bytes_preserving_length(self, tmp_path):
        path = tmp_path / "doc.json"
        original = json.dumps({"k": list(range(40))}).encode()
        path.write_bytes(original)
        corrupt_file(path, mode="flip", seed=9)
        damaged = path.read_bytes()
        assert damaged != original
        assert len(damaged) == len(original)

    def test_flip_is_deterministic_per_seed(self, tmp_path):
        original = json.dumps({"k": list(range(40))}).encode()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_bytes(original)
        b.write_bytes(original)
        corrupt_file(a, mode="flip", seed=9)
        corrupt_file(b, mode="flip", seed=9)
        assert a.read_bytes() == b.read_bytes()

    def test_truncate_halves_the_file(self, tmp_path):
        path = tmp_path / "doc.json"
        path.write_bytes(b"x" * 100)
        corrupt_file(path, mode="truncate")
        assert len(path.read_bytes()) == 50

    def test_garbage_replaces_content(self, tmp_path):
        path = tmp_path / "doc.json"
        path.write_bytes(b"hello world")
        corrupt_file(path, mode="garbage", seed=4)
        assert path.read_bytes() != b"hello world"

    def test_unknown_mode_rejected(self, tmp_path):
        path = tmp_path / "doc.json"
        path.write_bytes(b"x")
        with pytest.raises(ConfigurationError):
            corrupt_file(path, mode="shred")
