"""Tests for repro.geometry.shapes."""

import pytest

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.shapes import Circle, Rectangle


class TestCircle:
    def test_contains_inside_and_boundary(self):
        circle = Circle(Point(0, 0), 1.0)
        assert circle.contains(Point(0.5, 0))
        assert circle.contains(Point(1.0, 0))
        assert not circle.contains(Point(1.01, 0))

    def test_distance_to_is_zero_inside(self):
        circle = Circle(Point(0, 0), 0.18)
        assert circle.distance_to(Point(0.1, 0.1)) == 0.0

    def test_distance_to_outside_measures_to_edge(self):
        circle = Circle(Point(0, 0), 0.18)
        assert circle.distance_to(Point(1.18, 0)) == pytest.approx(1.0)

    def test_nonpositive_radius_rejected(self):
        with pytest.raises(GeometryError):
            Circle(Point(0, 0), 0.0)


class TestRectangle:
    def test_dimensions(self):
        rect = Rectangle(0, 0, 7, 10)
        assert rect.width == 7
        assert rect.height == 10
        assert rect.center == Point(3.5, 5.0)

    def test_contains_with_margin(self):
        rect = Rectangle(0, 0, 10, 10)
        assert rect.contains(Point(0.5, 0.5))
        assert not rect.contains(Point(0.5, 0.5), margin=1.0)

    def test_walls_form_closed_loop(self):
        rect = Rectangle(0, 0, 2, 3)
        walls = rect.walls()
        assert len(walls) == 4
        for first, second in zip(walls, walls[1:] + walls[:1]):
            assert first.end == second.start

    def test_clamp_outside_point(self):
        rect = Rectangle(0, 0, 10, 10)
        assert rect.clamp(Point(-5, 15)) == Point(0, 10)

    def test_clamp_inside_is_identity(self):
        rect = Rectangle(0, 0, 10, 10)
        assert rect.clamp(Point(3, 4)) == Point(3, 4)

    def test_invalid_extent_rejected(self):
        with pytest.raises(GeometryError):
            Rectangle(0, 0, 0, 5)
