"""Tests for the radio tomographic imaging baseline."""

import pytest

from repro.baselines.rti import RtiLocalizer, link_rss_db
from repro.errors import ConfigurationError, LocalizationError
from repro.sim.environments import hall_scene
from repro.sim.measurement import MeasurementSession
from repro.sim.target import human_target


@pytest.fixture(scope="module")
def deployment():
    scene = hall_scene(rng=71)
    session = MeasurementSession(scene, rng=72)
    rti = RtiLocalizer(scene, voxel_size=0.4)
    rti.calibrate(session.capture())
    return scene, session, rti


class TestConstruction:
    def test_link_mesh_built(self, deployment):
        scene, _, rti = deployment
        expected = sum(
            len(scene.tags_in_range(reader)) for reader in scene.readers
        )
        assert rti.num_links == expected

    def test_invalid_voxel_size(self, deployment):
        scene, _, _ = deployment
        with pytest.raises(ConfigurationError):
            RtiLocalizer(scene, voxel_size=0.0)


class TestImaging:
    def test_empty_area_is_flat(self, deployment):
        scene, session, rti = deployment
        image = rti.shadowing_image(session.capture())
        assert image.max() < 1.0  # noise-level only

    def test_target_raises_peak_nearby(self, deployment):
        scene, session, rti = deployment
        # Stand on a link line so RTI's direct-line model applies.
        reader = scene.readers[0]
        tag = scene.tags_in_range(reader)[0]
        midpoint = (tag.position + reader.array.centroid) / 2.0
        target = human_target(midpoint)
        estimate = rti.localize(session.capture([target]))
        # RTI is coarse: the image peak sits somewhere on the shadowed
        # link(s), within a metre or two of the body.
        assert estimate.distance_to(midpoint) < 2.5

    def test_uncalibrated_rejects(self, deployment):
        scene, session, _ = deployment
        fresh = RtiLocalizer(scene, voxel_size=0.5)
        with pytest.raises(LocalizationError):
            fresh.localize(session.capture())

    def test_no_shadowing_rejects(self, deployment):
        scene, session, rti = deployment
        with pytest.raises(LocalizationError):
            # An empty capture after calibration: nothing blocked.
            rti.localize(session.capture())


class TestLinkRss:
    def test_rss_negative_db(self, deployment):
        scene, session, _ = deployment
        rss = link_rss_db(session.capture())
        assert rss
        assert all(value < 0.0 for value in rss.values())

    def test_blocked_link_drops(self, deployment):
        scene, session, _ = deployment
        reader = scene.readers[0]
        tag = scene.tags_in_range(reader)[0]
        midpoint = (tag.position + reader.array.centroid) / 2.0
        base = link_rss_db(session.capture())
        online = link_rss_db(session.capture([human_target(midpoint)]))
        key = (reader.name, tag.epc)
        assert online[key] < base[key] - 3.0
