"""JSONL recording/replay: roundtrip fidelity and typed failure paths."""

import json

import pytest

from repro.errors import RecordingError, ReproError, StreamError
from repro.stream.events import TagRead
from repro.stream.replay import (
    RECORDING_KIND,
    RECORDING_SCHEMA,
    RecordingHeader,
    read_header,
    read_recording,
    write_recording,
)

READS = [
    TagRead(reader_name="r0", epc="AA", time_s=0.0, iq=0.25 - 0.75j),
    TagRead(reader_name="r0", epc="BB", time_s=2e-4, iq=-1.5 + 0.125j),
    TagRead(reader_name="r1", epc="AA", time_s=4e-4, iq=0.0 + 1e-9j),
]


class TestRoundtrip:
    def test_reads_survive_exactly(self, tmp_path):
        path = tmp_path / "rec.jsonl"
        written = write_recording(path, READS)
        assert written == len(READS)
        assert list(read_recording(path)) == READS

    def test_header_survives(self, tmp_path):
        path = tmp_path / "rec.jsonl"
        header = RecordingHeader(environment="hall", seed=7, description="test")
        write_recording(path, READS, header)
        loaded = read_header(path)
        assert loaded == header
        assert loaded.schema == RECORDING_SCHEMA

    def test_first_line_is_a_versioned_header(self, tmp_path):
        path = tmp_path / "rec.jsonl"
        write_recording(path, READS)
        first = json.loads(path.read_text().splitlines()[0])
        assert first["kind"] == RECORDING_KIND
        assert first["schema"] == RECORDING_SCHEMA


class TestFailurePaths:
    def test_missing_file_raises_recording_error(self, tmp_path):
        with pytest.raises(RecordingError, match="cannot open"):
            read_recording(tmp_path / "absent.jsonl")
        with pytest.raises(RecordingError, match="cannot open"):
            read_header(tmp_path / "absent.jsonl")

    def test_empty_file_raises_recording_error(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(RecordingError, match="empty"):
            read_header(path)
        with pytest.raises(RecordingError, match="empty"):
            list(read_recording(path))

    def test_foreign_file_raises_recording_error(self, tmp_path):
        path = tmp_path / "foreign.jsonl"
        path.write_text('{"some": "other format"}\n')
        with pytest.raises(RecordingError, match="header"):
            list(read_recording(path))

    def test_unsupported_schema_raises_recording_error(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps({"kind": RECORDING_KIND, "schema": RECORDING_SCHEMA + 1})
            + "\n"
        )
        with pytest.raises(RecordingError, match="unsupported schema"):
            read_header(path)

    def test_truncated_final_line_raises_typed_error(self, tmp_path):
        # The classic crash-mid-write artefact: the last record is cut
        # off.  Replay must surface a typed RecordingError naming the
        # line — never a bare json.JSONDecodeError.
        path = tmp_path / "torn.jsonl"
        write_recording(path, READS)
        content = path.read_text()
        path.write_text(content[: len(content) - 17])
        with pytest.raises(RecordingError, match="line 4") as excinfo:
            list(read_recording(path))
        assert not isinstance(excinfo.value, json.JSONDecodeError)

    def test_missing_field_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        write_recording(path, READS[:1])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"t": 1.0, "r": "r0"}\n')  # no epc, no iq
        with pytest.raises(RecordingError, match="line 3"):
            list(read_recording(path))

    def test_recording_error_is_a_typed_stream_error(self):
        assert issubclass(RecordingError, StreamError)
        assert issubclass(RecordingError, ReproError)

    def test_blank_lines_are_tolerated(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        write_recording(path, READS)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n\n")
        assert list(read_recording(path)) == READS
