"""Tests for repro.utils.units."""

import pytest

from repro.utils.units import db_to_linear, db_to_power, linear_to_db, power_to_db


class TestAmplitudeConversions:
    def test_20db_is_factor_10(self):
        assert db_to_linear(20.0) == pytest.approx(10.0)

    def test_roundtrip(self):
        assert linear_to_db(db_to_linear(7.3)) == pytest.approx(7.3)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)


class TestPowerConversions:
    def test_10db_is_factor_10(self):
        assert db_to_power(10.0) == pytest.approx(10.0)

    def test_roundtrip(self):
        assert power_to_db(db_to_power(-3.0)) == pytest.approx(-3.0)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            power_to_db(-1.0)


class TestAmplitudeVsPower:
    def test_same_db_amplitude_squared_equals_power(self):
        # An amplitude gain of X dB squares to the power gain of X dB.
        db = 6.0
        assert db_to_linear(db) ** 2 == pytest.approx(db_to_power(db))
