"""Property-based tests for the knife-edge shadowing physics."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.constants import DEFAULT_WAVELENGTH_M
from repro.geometry.point import Point
from repro.geometry.segment import Segment
from repro.rf.propagation import fresnel_parameter, knife_edge_amplitude

fresnel_vs = st.floats(min_value=-10.0, max_value=10.0)
radii = st.floats(min_value=0.01, max_value=0.5)
misses = st.floats(min_value=0.0, max_value=3.0)
positions = st.floats(min_value=0.1, max_value=0.9)


class TestKnifeEdgeAmplitude:
    @given(fresnel_vs)
    def test_bounded(self, v):
        amplitude = knife_edge_amplitude(v)
        assert 0.0 < amplitude <= 1.0

    @given(fresnel_vs, fresnel_vs)
    def test_monotone_nonincreasing(self, v1, v2):
        low, high = sorted((v1, v2))
        assert knife_edge_amplitude(high) <= knife_edge_amplitude(low) + 1e-12

    def test_clearance_region_lossless(self):
        assert knife_edge_amplitude(-1.0) == 1.0

    def test_grazing_is_six_db(self):
        # v = 0: the canonical 6 dB knife-edge loss.
        loss_db = -20 * math.log10(knife_edge_amplitude(0.0))
        assert abs(loss_db - 6.0) < 0.1


class TestFresnelParameter:
    @given(radii, misses, positions)
    def test_sign_tracks_protrusion(self, radius, miss, t):
        leg = Segment(Point(0, 0), Point(10, 0))
        centre = Point(10 * t, miss)
        v = fresnel_parameter(leg, centre, radius, DEFAULT_WAVELENGTH_M)
        if miss > radius:
            assert v < 0  # body clears the ray
        elif miss < radius:
            assert v > 0  # body tip crosses the ray

    @given(radii, positions)
    def test_larger_radius_larger_v(self, radius, t):
        leg = Segment(Point(0, 0), Point(8, 0))
        centre = Point(8 * t, 0.2)
        small = fresnel_parameter(leg, centre, radius, DEFAULT_WAVELENGTH_M)
        large = fresnel_parameter(
            leg, centre, radius + 0.05, DEFAULT_WAVELENGTH_M
        )
        assert large > small

    @given(st.floats(min_value=0.5, max_value=3.0))
    def test_fresnel_zone_widest_at_midpoint(self, half_length):
        # The first Fresnel zone is widest at the link midpoint
        # (d1*d2 maximal), so a fixed protruding obstacle has the
        # *smallest* Fresnel parameter there and shadows least; the
        # same obstacle near an endpoint cuts deeper into the zone.
        leg = Segment(Point(0, 0), Point(2 * half_length, 0))
        mid = Point(half_length, 0.1)
        near_end = Point(0.3, 0.1)
        v_mid = fresnel_parameter(leg, mid, 0.2, DEFAULT_WAVELENGTH_M)
        v_end = fresnel_parameter(leg, near_end, 0.2, DEFAULT_WAVELENGTH_M)
        assert v_end >= v_mid - 1e-9

    @given(radii, misses, positions)
    def test_symmetric_under_leg_reversal(self, radius, miss, t):
        forward = Segment(Point(0, 0), Point(6, 0))
        backward = Segment(Point(6, 0), Point(0, 0))
        centre = Point(6 * t, miss)
        v_f = fresnel_parameter(forward, centre, radius, DEFAULT_WAVELENGTH_M)
        v_b = fresnel_parameter(backward, centre, radius, DEFAULT_WAVELENGTH_M)
        assert math.isclose(v_f, v_b, rel_tol=1e-9, abs_tol=1e-9)
