"""Shared fixtures for the D-Watch reproduction test suite."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.geometry.segment import Segment
from repro.rf.array import UniformLinearArray
from repro.rf.channel import MultipathChannel
from repro.rf.propagation import PropagationPath


@pytest.fixture
def rng():
    """A deterministic generator for test randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def array():
    """The paper's default 8-element half-wavelength ULA at the origin."""
    return UniformLinearArray(reference=Point(0.0, 0.0))


def make_path(array, angle_deg, gain, tag_id="tag"):
    """A synthetic propagation path arriving at ``angle_deg``."""
    angle = math.radians(angle_deg)
    source = array.centroid + Point(math.cos(angle), math.sin(angle)) * 4.0
    return PropagationPath(
        tag_id=tag_id,
        aoa=angle,
        gain=gain,
        legs=(Segment(source, array.centroid),),
    )


@pytest.fixture
def three_path_channel(array):
    """A coherent three-path channel at 50/90/130 degrees."""
    paths = [
        make_path(array, 50.0, 0.010),
        make_path(array, 90.0, 0.008),
        make_path(array, 130.0, 0.006),
    ]
    return MultipathChannel(array=array, paths=paths)
