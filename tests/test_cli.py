"""Tests for the command-line interface."""

import json

import pytest

from repro import obs
from repro.cli import EXIT_ERROR, _build_scene, build_parser, main
from repro.errors import UsageError


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.shutdown()
    yield
    obs.shutdown()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.environment == "hall"
        assert args.seed == 1
        assert args.trace is None
        assert args.metrics is None
        assert args.quiet is False

    def test_coverage_spacing(self):
        args = build_parser().parse_args(["coverage", "--spacing", "0.5"])
        assert args.spacing == 0.5

    def test_rejects_unknown_environment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--environment", "castle"])

    def test_quiet_and_observability_flags(self):
        args = build_parser().parse_args(
            ["--quiet", "demo", "--trace", "t.jsonl", "--metrics", "m.jsonl"]
        )
        assert args.quiet is True
        assert args.trace == "t.jsonl"
        assert args.metrics == "m.jsonl"

    def test_stats_default_file(self):
        args = build_parser().parse_args(["stats"])
        assert args.file == "metrics.jsonl"


class TestSceneBuilding:
    def test_unknown_environment_raises_usage_error(self):
        with pytest.raises(UsageError, match="unknown environment"):
            _build_scene("castle", seed=1)

    def test_known_environment_builds(self):
        scene = _build_scene("hall", seed=1)
        assert scene.readers


class TestCommands:
    def test_coverage_runs(self, capsys):
        assert main(["coverage", "--environment", "hall", "--spacing", "0.8"]) == 0
        out = capsys.readouterr().out
        assert "coverage" in out
        assert "#" in out or "." in out

    def test_experiment_fig03(self, capsys):
        assert main(["experiment", "fig03"]) == 0
        out = capsys.readouterr().out
        assert "offset_deg" in out

    def test_experiment_unknown_figure(self, capsys):
        assert main(["experiment", "fig99"]) == EXIT_ERROR
        err = capsys.readouterr().err
        assert "error:" in err
        assert "fig99" in err

    def test_demo_runs_end_to_end(self, capsys):
        assert main(["demo", "--environment", "hall", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "likelihood surface" in out

    def test_quiet_suppresses_progress(self, capsys):
        assert main(["--quiet", "experiment", "fig03"]) == 0
        captured = capsys.readouterr()
        assert "running experiment" not in captured.err
        assert "offset_deg" in captured.out


class TestObservabilityFlags:
    def test_demo_writes_trace_and_metrics(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.jsonl"
        assert (
            main(
                [
                    "demo",
                    "--environment",
                    "hall",
                    "--seed",
                    "3",
                    "--trace",
                    str(trace),
                    "--metrics",
                    str(metrics),
                ]
            )
            == 0
        )
        capsys.readouterr()
        span_names = set()
        with open(trace) as handle:
            for line in handle:
                record = json.loads(line)
                assert record["type"] == "span"
                span_names.add(record["name"])
        for stage in (
            "pipeline.calibrate",
            "pipeline.baseline",
            "pipeline.evidence",
            "pipeline.localize",
        ):
            assert stage in span_names
        metric_names = set()
        with open(metrics) as handle:
            for line in handle:
                metric_names.add(json.loads(line)["name"])
        assert "pipeline.fixes" in metric_names
        assert "latency.pipeline.localize" in metric_names
        # The run's shutdown() must leave observability off again.
        assert not obs.is_enabled()

    def test_stats_renders_snapshot(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.jsonl"
        registry = obs.MetricsRegistry()
        registry.counter("pipeline.fixes").inc(4)
        registry.histogram("latency.pipeline.localize").observe(12.5)
        registry.write_jsonl(str(metrics))
        assert main(["stats", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "pipeline.fixes" in out
        assert "latency.pipeline.localize" in out

    def test_stats_missing_file_is_usage_error(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.jsonl")]) == EXIT_ERROR
        err = capsys.readouterr().err
        assert "no metrics file" in err

    def test_stats_prefix_filters(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.jsonl"
        registry = obs.MetricsRegistry()
        registry.counter("pipeline.fixes").inc(4)
        registry.counter("stream.fixes").inc(2)
        registry.write_jsonl(str(metrics))
        assert main(["stats", str(metrics), "--prefix", "stream."]) == 0
        out = capsys.readouterr().out
        assert "stream.fixes" in out
        assert "pipeline.fixes" not in out

    def test_stats_unmatched_prefix_is_usage_error(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.jsonl"
        registry = obs.MetricsRegistry()
        registry.counter("pipeline.fixes").inc(1)
        registry.write_jsonl(str(metrics))
        assert main(["stats", str(metrics), "--prefix", "strm."]) == EXIT_ERROR
        err = capsys.readouterr().err
        assert "no metrics" in err and "strm." in err
        # The error names what IS there, so the typo is obvious.
        assert "pipeline.fixes" in err


def run_stream(tmp_path, capsys, *extra):
    """One tiny CLI stream run; returns (exit_code, stdout)."""
    code = main(
        [
            "--quiet",
            "stream",
            "--environment",
            "table",
            "--seed",
            "5",
            "--fixes",
            "2",
            *extra,
        ]
    )
    captured = capsys.readouterr()
    return code, captured.out


class TestStreamTelemetryFlags:
    def test_stdout_is_byte_identical_with_telemetry_on(self, tmp_path, capsys):
        # The acceptance bar for "provenance is metadata": the default
        # human-readable output must not change when the fix log and the
        # ops endpoint are enabled.
        code_plain, out_plain = run_stream(tmp_path, capsys)
        assert code_plain == 0
        code_flagged, out_flagged = run_stream(
            tmp_path,
            capsys,
            "--fix-log",
            str(tmp_path / "fixes.jsonl"),
            "--serve-metrics",
            "0",
        )
        assert code_flagged == 0
        assert out_flagged == out_plain

    def test_fix_log_feeds_provenance_command(self, tmp_path, capsys):
        fix_log = tmp_path / "fixes.jsonl"
        code, _ = run_stream(tmp_path, capsys, "--fix-log", str(fix_log))
        assert code == 0
        assert main(["provenance", str(fix_log)]) == 0
        out = capsys.readouterr().out
        assert "fix log:" in out
        assert "environment table" in out
        assert "spectral paths:" in out

    def test_provenance_json_mode_is_machine_readable(self, tmp_path, capsys):
        fix_log = tmp_path / "fixes.jsonl"
        run_stream(tmp_path, capsys, "--fix-log", str(fix_log))
        assert main(["provenance", str(fix_log), "--json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        for line in lines:
            record = json.loads(line)
            assert record["provenance"]["spectral_path"] in (
                "batch",
                "scalar",
                "mixed",
            )

    def test_provenance_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["provenance", str(tmp_path / "gone.jsonl")]) == EXIT_ERROR
        assert "error:" in capsys.readouterr().err


class TestRetainCommand:
    @staticmethod
    def _fill(directory):
        for i in range(3):
            (directory / f"rec{i}.jsonl").write_text(
                json.dumps({"kind": "dwatch-reads", "schema": 1}) + "\n"
            )
        (directory / "foreign.txt").write_text("not ours\n")

    def test_dry_run_by_default(self, tmp_path, capsys):
        self._fill(tmp_path)
        assert main(["retain", str(tmp_path), "--max-count", "1"]) == 0
        out = capsys.readouterr().out
        assert "dry run" in out
        assert "delete 2" in out
        assert len(list(tmp_path.glob("rec*.jsonl"))) == 3  # nothing touched

    def test_apply_deletes_only_recognised_artefacts(self, tmp_path, capsys):
        self._fill(tmp_path)
        assert (
            main(["retain", str(tmp_path), "--max-count", "1", "--apply"]) == 0
        )
        capsys.readouterr()
        assert len(list(tmp_path.glob("rec*.jsonl"))) == 1
        assert (tmp_path / "foreign.txt").exists()

    def test_unbounded_policy_is_usage_error(self, tmp_path, capsys):
        assert main(["retain", str(tmp_path)]) == EXIT_ERROR
        assert "at least one bound" in capsys.readouterr().err
