"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.environment == "hall"
        assert args.seed == 1

    def test_coverage_spacing(self):
        args = build_parser().parse_args(["coverage", "--spacing", "0.5"])
        assert args.spacing == 0.5

    def test_rejects_unknown_environment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--environment", "castle"])


class TestCommands:
    def test_coverage_runs(self, capsys):
        assert main(["coverage", "--environment", "hall", "--spacing", "0.8"]) == 0
        out = capsys.readouterr().out
        assert "coverage" in out
        assert "#" in out or "." in out

    def test_experiment_fig03(self, capsys):
        assert main(["experiment", "fig03"]) == 0
        out = capsys.readouterr().out
        assert "offset_deg" in out

    def test_experiment_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_demo_runs_end_to_end(self, capsys):
        assert main(["demo", "--environment", "hall", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "likelihood surface" in out
