"""Tests for the command-line interface."""

import json

import pytest

from repro import obs
from repro.cli import EXIT_ERROR, _build_scene, build_parser, main
from repro.errors import UsageError


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.shutdown()
    yield
    obs.shutdown()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.environment == "hall"
        assert args.seed == 1
        assert args.trace is None
        assert args.metrics is None
        assert args.quiet is False

    def test_coverage_spacing(self):
        args = build_parser().parse_args(["coverage", "--spacing", "0.5"])
        assert args.spacing == 0.5

    def test_rejects_unknown_environment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--environment", "castle"])

    def test_quiet_and_observability_flags(self):
        args = build_parser().parse_args(
            ["--quiet", "demo", "--trace", "t.jsonl", "--metrics", "m.jsonl"]
        )
        assert args.quiet is True
        assert args.trace == "t.jsonl"
        assert args.metrics == "m.jsonl"

    def test_stats_default_file(self):
        args = build_parser().parse_args(["stats"])
        assert args.file == "metrics.jsonl"


class TestSceneBuilding:
    def test_unknown_environment_raises_usage_error(self):
        with pytest.raises(UsageError, match="unknown environment"):
            _build_scene("castle", seed=1)

    def test_known_environment_builds(self):
        scene = _build_scene("hall", seed=1)
        assert scene.readers


class TestCommands:
    def test_coverage_runs(self, capsys):
        assert main(["coverage", "--environment", "hall", "--spacing", "0.8"]) == 0
        out = capsys.readouterr().out
        assert "coverage" in out
        assert "#" in out or "." in out

    def test_experiment_fig03(self, capsys):
        assert main(["experiment", "fig03"]) == 0
        out = capsys.readouterr().out
        assert "offset_deg" in out

    def test_experiment_unknown_figure(self, capsys):
        assert main(["experiment", "fig99"]) == EXIT_ERROR
        err = capsys.readouterr().err
        assert "error:" in err
        assert "fig99" in err

    def test_demo_runs_end_to_end(self, capsys):
        assert main(["demo", "--environment", "hall", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "likelihood surface" in out

    def test_quiet_suppresses_progress(self, capsys):
        assert main(["--quiet", "experiment", "fig03"]) == 0
        captured = capsys.readouterr()
        assert "running experiment" not in captured.err
        assert "offset_deg" in captured.out


class TestObservabilityFlags:
    def test_demo_writes_trace_and_metrics(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.jsonl"
        assert (
            main(
                [
                    "demo",
                    "--environment",
                    "hall",
                    "--seed",
                    "3",
                    "--trace",
                    str(trace),
                    "--metrics",
                    str(metrics),
                ]
            )
            == 0
        )
        capsys.readouterr()
        span_names = set()
        with open(trace) as handle:
            for line in handle:
                record = json.loads(line)
                assert record["type"] == "span"
                span_names.add(record["name"])
        for stage in (
            "pipeline.calibrate",
            "pipeline.baseline",
            "pipeline.evidence",
            "pipeline.localize",
        ):
            assert stage in span_names
        metric_names = set()
        with open(metrics) as handle:
            for line in handle:
                metric_names.add(json.loads(line)["name"])
        assert "pipeline.fixes" in metric_names
        assert "latency.pipeline.localize" in metric_names
        # The run's shutdown() must leave observability off again.
        assert not obs.is_enabled()

    def test_stats_renders_snapshot(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.jsonl"
        registry = obs.MetricsRegistry()
        registry.counter("pipeline.fixes").inc(4)
        registry.histogram("latency.pipeline.localize").observe(12.5)
        registry.write_jsonl(str(metrics))
        assert main(["stats", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "pipeline.fixes" in out
        assert "latency.pipeline.localize" in out

    def test_stats_missing_file_is_usage_error(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.jsonl")]) == EXIT_ERROR
        err = capsys.readouterr().err
        assert "no metrics file" in err
