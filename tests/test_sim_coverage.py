"""Tests for repro.sim.coverage."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.coverage import analyze_coverage
from repro.sim.environments import hall_scene, library_scene, table_scene


@pytest.fixture(scope="module")
def hall_map():
    return analyze_coverage(hall_scene(rng=81), grid_spacing=0.5)


class TestAnalyzeCoverage:
    def test_shapes_consistent(self, hall_map):
        assert hall_map.reader_counts.shape == (
            hall_map.ys.size,
            hall_map.xs.size,
        )

    def test_rates_in_unit_interval(self, hall_map):
        assert 0.0 <= hall_map.coverage_rate <= 1.0
        assert 0.0 <= hall_map.deadzone_rate <= 1.0

    def test_hall_has_deadzones_and_coverage(self, hall_map):
        # The near-empty hall famously has both.
        assert hall_map.coverage_rate > 0.2
        assert hall_map.deadzone_rate >= 0.0
        assert hall_map.coverage_rate < 1.0

    def test_library_beats_hall(self, hall_map):
        library = analyze_coverage(library_scene(rng=81), grid_spacing=0.5)
        assert library.coverage_rate > hall_map.coverage_rate

    def test_more_tags_never_reduce_coverage(self):
        sparse = analyze_coverage(
            hall_scene(rng=82, num_tags=7), grid_spacing=0.6
        )
        dense = analyze_coverage(
            hall_scene(rng=82, num_tags=40), grid_spacing=0.6
        )
        assert dense.coverage_rate >= sparse.coverage_rate

    def test_invalid_spacing_rejected(self):
        with pytest.raises(ConfigurationError):
            analyze_coverage(hall_scene(rng=83), grid_spacing=0.0)

    def test_margin_too_large_rejected(self):
        with pytest.raises(ConfigurationError):
            analyze_coverage(table_scene(rng=83), margin=5.0)


class TestCoverageMap:
    def test_ascii_map_dimensions(self, hall_map):
        rows = hall_map.ascii_map()
        assert len(rows) == hall_map.ys.size
        assert all(len(row) == hall_map.xs.size for row in rows)

    def test_ascii_symbols(self, hall_map):
        symbols = set("".join(hall_map.ascii_map()))
        assert symbols <= {"#", "+", "."}

    def test_deadzone_points_match_rate(self, hall_map):
        total = hall_map.xs.size * hall_map.ys.size
        assert len(hall_map.deadzones()) == pytest.approx(
            hall_map.deadzone_rate * total, abs=0.5
        )
