"""Tests for repro.core.detector."""

import math

import numpy as np
import pytest

from repro.core.detector import BlockedPath, DropDetector
from repro.dsp.spectrum import AngularSpectrum, default_angle_grid


def lobe_spectrum(centers_deg, powers, width_deg=1.0):
    angles = default_angle_grid(721)
    values = np.zeros_like(angles)
    for center, power in zip(centers_deg, powers):
        values += power * np.exp(
            -0.5 * ((angles - math.radians(center)) / math.radians(width_deg)) ** 2
        )
    return AngularSpectrum(angles, values)


class TestDetectPair:
    def test_detects_blocked_peak(self):
        detector = DropDetector()
        baseline = lobe_spectrum([50, 90, 130], [1.0, 0.8, 0.6])
        online = lobe_spectrum([50, 90, 130], [0.02, 0.8, 0.6])
        events = detector.detect_pair("r", "epc", baseline, online)
        assert len(events) == 1
        assert math.degrees(events[0].angle) == pytest.approx(50, abs=1)
        assert events[0].relative_drop > 0.9

    def test_tolerates_peak_jitter(self):
        detector = DropDetector()
        baseline = lobe_spectrum([90], [1.0])
        shifted = lobe_spectrum([91.0], [1.0])  # same power, 1 deg drift
        assert detector.detect_pair("r", "epc", baseline, shifted) == []

    def test_multiple_blocks_reported(self):
        detector = DropDetector()
        baseline = lobe_spectrum([50, 130], [1.0, 0.9])
        online = lobe_spectrum([50, 130], [0.02, 0.02])
        events = detector.detect_pair("r", "epc", baseline, online)
        assert len(events) == 2

    def test_endfire_peaks_ignored(self):
        detector = DropDetector()
        baseline = lobe_spectrum([1.5, 90], [1.0, 0.9])
        online = lobe_spectrum([1.5, 90], [0.001, 0.001])
        events = detector.detect_pair("r", "epc", baseline, online)
        assert len(events) == 1
        assert math.degrees(events[0].angle) == pytest.approx(90, abs=1)

    def test_weak_baseline_peaks_not_monitored(self):
        detector = DropDetector(min_peak_relative_height=0.2)
        baseline = lobe_spectrum([50, 130], [1.0, 0.05])
        online = lobe_spectrum([50, 130], [1.0, 0.0001])
        assert detector.detect_pair("r", "epc", baseline, online) == []

    def test_unstable_peak_confidence_zeroed(self):
        detector = DropDetector()
        baseline = lobe_spectrum([90], [1.0])
        wobbly_confirmation = lobe_spectrum([90], [0.2])  # self-drop of 0.8
        online = lobe_spectrum([90], [0.001])
        events = detector.detect_pair(
            "r", "epc", baseline, online, [wobbly_confirmation]
        )
        assert events == []

    def test_stable_confirmation_keeps_confidence(self):
        detector = DropDetector()
        baseline = lobe_spectrum([90], [1.0])
        stable = lobe_spectrum([90], [0.98])
        online = lobe_spectrum([90], [0.001])
        events = detector.detect_pair("r", "epc", baseline, online, [stable])
        assert len(events) == 1
        assert events[0].confidence > 0.9


class TestEvidenceAggregation:
    def _sets(self, baseline_spec, online_spec):
        from repro.core.baseline import SpectrumSet

        base = SpectrumSet(spectra={"r": {"epc": baseline_spec}})
        online = SpectrumSet(spectra={"r": {"epc": online_spec}})
        return base, online

    def test_evidence_kernel_peaks_at_event(self):
        detector = DropDetector()
        base, online = self._sets(
            lobe_spectrum([70], [1.0]), lobe_spectrum([70], [0.02])
        )
        evidence = detector.evidence(base, online)
        assert len(evidence) == 1
        assert evidence[0].has_detection
        assert math.degrees(evidence[0].drop.dominant_angle()) == pytest.approx(
            70, abs=1
        )

    def test_silent_tag_counts_as_blocked(self):
        from repro.core.baseline import SpectrumSet

        detector = DropDetector()
        base = SpectrumSet(spectra={"r": {"epc": lobe_spectrum([70], [1.0])}})
        online = SpectrumSet(spectra={"r": {}})
        evidence = detector.evidence(base, online)
        assert evidence[0].has_detection
        assert evidence[0].events[0].relative_drop == 1.0

    def test_missing_reader_raises(self):
        from repro.core.baseline import SpectrumSet
        from repro.errors import LocalizationError

        detector = DropDetector()
        base = SpectrumSet(spectra={"r": {"epc": lobe_spectrum([70], [1.0])}})
        online = SpectrumSet(spectra={})
        with pytest.raises(LocalizationError):
            detector.evidence(base, online)

    def test_without_events_near_filters(self):
        detector = DropDetector()
        base, online = self._sets(
            lobe_spectrum([50, 130], [1.0, 0.9]),
            lobe_spectrum([50, 130], [0.02, 0.02]),
        )
        evidence = detector.evidence(base, online)[0]
        filtered = evidence.without_events_near(
            math.radians(50), math.radians(5)
        )
        assert len(filtered.events) == 1
        assert math.degrees(filtered.events[0].angle) == pytest.approx(130, abs=1)


class TestBlockedPathWeight:
    def test_weight_combines_drop_and_confidence(self):
        event = BlockedPath(
            reader_name="r",
            epc="e",
            angle=1.0,
            relative_drop=0.9,
            baseline_power=1.0,
            online_power=0.1,
            confidence=0.5,
        )
        assert event.weight == pytest.approx(0.45)
