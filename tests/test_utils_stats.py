"""Tests for repro.utils.stats."""

import numpy as np
import pytest

from repro.utils.stats import (
    empirical_cdf,
    mean_and_std,
    median,
    percentile,
    summarize_errors,
)


class TestEmpiricalCdf:
    def test_sorted_and_reaches_one(self):
        values, probs = empirical_cdf([3.0, 1.0, 2.0])
        assert list(values) == [1.0, 2.0, 3.0]
        assert probs[-1] == 1.0

    def test_probabilities_are_uniform_steps(self):
        _, probs = empirical_cdf([5.0, 7.0])
        assert list(probs) == [0.5, 1.0]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            empirical_cdf([])


class TestPercentile:
    def test_median_equivalence(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(data, 50) == median(data)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestSummarizeErrors:
    def test_fields(self):
        summary = summarize_errors([0.1, 0.2, 0.3, 0.4])
        assert summary.count == 4
        assert summary.mean == pytest.approx(0.25)
        assert summary.median == pytest.approx(0.25)
        assert summary.maximum == pytest.approx(0.4)

    def test_p90_order(self):
        summary = summarize_errors(list(np.linspace(0, 1, 101)))
        assert summary.p90 == pytest.approx(0.9)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_errors([])

    def test_as_row_formats_cm(self):
        summary = summarize_errors([0.165])
        row = summary.as_row()
        assert "16.5" in row


class TestMeanAndStd:
    def test_constant_series(self):
        mean, std = mean_and_std([2.0, 2.0, 2.0])
        assert mean == 2.0
        assert std == 0.0
