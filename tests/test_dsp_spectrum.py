"""Tests for repro.dsp.spectrum."""

import math

import numpy as np
import pytest

from repro.dsp.spectrum import (
    AngularSpectrum,
    default_angle_grid,
    spectrum_from_samples,
)
from repro.errors import EstimationError


@pytest.fixture
def triangle_spectrum():
    angles = np.linspace(0, math.pi, 181)
    values = 1.0 - np.abs(angles - math.pi / 2) / (math.pi / 2)
    return AngularSpectrum(angles, values)


class TestConstruction:
    def test_default_grid_covers_zero_to_pi(self):
        grid = default_angle_grid()
        assert grid[0] == 0.0
        assert grid[-1] == pytest.approx(math.pi)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(EstimationError):
            AngularSpectrum(np.zeros(5), np.zeros(4))

    def test_non_monotone_angles_rejected(self):
        with pytest.raises(EstimationError):
            AngularSpectrum(np.array([0.0, 2.0, 1.0]), np.zeros(3))

    def test_too_short_rejected(self):
        with pytest.raises(EstimationError):
            AngularSpectrum(np.array([1.0]), np.array([1.0]))


class TestQueries:
    def test_value_at_interpolates(self, triangle_spectrum):
        assert triangle_spectrum.value_at(math.pi / 2) == pytest.approx(1.0)
        assert triangle_spectrum.value_at(math.pi / 4) == pytest.approx(0.5, abs=0.01)

    def test_dominant_angle(self, triangle_spectrum):
        assert triangle_spectrum.dominant_angle() == pytest.approx(math.pi / 2)

    def test_max_in_window(self, triangle_spectrum):
        window_max = triangle_spectrum.max_in_window(
            math.pi / 2 - 0.05, window=0.1
        )
        assert window_max == pytest.approx(1.0)

    def test_max_in_empty_window_falls_back(self, triangle_spectrum):
        value = triangle_spectrum.max_in_window(0.5, window=1e-9)
        assert value == pytest.approx(triangle_spectrum.value_at(0.5), abs=0.01)

    def test_normalized_max_is_one(self, triangle_spectrum):
        scaled = AngularSpectrum(
            triangle_spectrum.angles, triangle_spectrum.values * 42.0
        )
        assert scaled.normalized().values.max() == pytest.approx(1.0)

    def test_normalize_zero_spectrum_rejected(self):
        with pytest.raises(EstimationError):
            AngularSpectrum(np.array([0.0, 1.0]), np.zeros(2)).normalized()


class TestComparison:
    def test_subtract(self, triangle_spectrum):
        diff = triangle_spectrum.subtract(triangle_spectrum)
        assert np.allclose(diff.values, 0.0)

    def test_drop_relative_to_clips_rises(self, triangle_spectrum):
        doubled = AngularSpectrum(
            triangle_spectrum.angles, triangle_spectrum.values * 2.0
        )
        drop = doubled.drop_relative_to(triangle_spectrum)
        assert np.all(drop.values == 0.0)

    def test_drop_relative_to_measures_falls(self, triangle_spectrum):
        halved = AngularSpectrum(
            triangle_spectrum.angles, triangle_spectrum.values * 0.5
        )
        drop = halved.drop_relative_to(triangle_spectrum)
        assert drop.value_at(math.pi / 2) == pytest.approx(0.5)

    def test_spectrum_from_samples(self):
        spectrum = spectrum_from_samples([0.0, 1.0, 2.0], [1.0, 2.0, 3.0])
        assert spectrum.value_at(1.5) == pytest.approx(2.5)
