"""Observability integration: the instrumented pipeline end to end.

The load-bearing guarantee: with observability disabled (the default)
the pipeline's numeric output is **bit-identical** to an observed run
on the same seed — the instrumentation touches no randomness and no
numbers, only clocks and counters.
"""

import pytest

from repro import obs
from repro.core.pipeline import DWatch
from repro.obs.trace import load_trace_jsonl
from repro.sim.environments import hall_scene
from repro.sim.measurement import MeasurementSession
from repro.sim.target import human_target


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.shutdown()
    yield
    obs.shutdown()


def run_pipeline(enabled: bool, trace_file=None):
    """One full calibrate/baseline/localize run on a fixed seed."""

    def body():
        scene = hall_scene(rng=21)
        dwatch = DWatch(scene)
        dwatch.calibrate(rng=22)
        session = MeasurementSession(scene, rng=23)
        dwatch.collect_baseline([session.capture() for _ in range(2)])
        # Targets on tag-to-array lines are guaranteed to shadow paths;
        # try a few until one localizes (not every midpoint is covered
        # by two readers).
        for tag in scene.tags[:6]:
            for reader in scene.readers[:2]:
                position = (tag.position + reader.array.centroid) / 2.0
                if not scene.room.contains(position, margin=0.5):
                    continue
                target = human_target(position)
                estimates = dwatch.localize(session.capture([target]))
                if estimates:
                    return estimates
        return []

    if not enabled:
        return body(), None
    with obs.observed(trace_file=trace_file) as state:
        estimates = body()
    return estimates, state


class TestBitIdenticalRegression:
    def test_localize_identical_with_obs_on_and_off(self):
        plain, _ = run_pipeline(enabled=False)
        observed, _ = run_pipeline(enabled=True)
        assert len(plain) == len(observed)
        for a, b in zip(plain, observed):
            # Bitwise equality, not approximate: observability must not
            # perturb a single float anywhere in the pipeline.
            assert a.position.x == b.position.x
            assert a.position.y == b.position.y
            assert a.likelihood == b.likelihood
            assert a.per_reader_angles == b.per_reader_angles


class TestPipelineTelemetry:
    def test_stage_spans_cover_the_workflow(self, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        _, state = run_pipeline(enabled=True, trace_file=trace)
        names = {record["name"] for record in load_trace_jsonl(trace)}
        # The four workflow steps of Section 4.4, by span name.
        assert "pipeline.calibrate" in names
        assert "pipeline.baseline" in names
        assert "pipeline.evidence" in names
        assert "pipeline.localize" in names
        # And the inner stages: the spectral chain runs on the batched
        # fast path (batch.* spans) with the scalar music.*/pmusic.*
        # spans as its reference twin — either naming covers the stage.
        assert "batch.eigendecomposition" in names or (
            "music.eigendecomposition" in names
        )
        assert "batch.pmusic" in names or "pmusic.fusion" in names
        assert "calibration.ga" in names
        assert "calibration.polish" in names
        assert "grid.modes" in names

    def test_metrics_registry_sees_the_run(self):
        _, state = run_pipeline(enabled=True)
        snap = {r["name"]: r for r in state.registry.snapshot()}
        assert snap["pipeline.fixes"]["value"] >= 1.0
        assert snap["grid.cells_evaluated"]["value"] > 0.0
        assert snap["pmusic.peaks_found"]["value"] > 0.0
        assert snap["calibration.residual"]["count"] >= 1
        assert snap["latency.pipeline.localize"]["count"] >= 1

    def test_trace_tree_is_well_formed(self, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        run_pipeline(enabled=True, trace_file=trace)
        records = load_trace_jsonl(trace)
        by_id = {record["span_id"]: record for record in records}
        for record in records:
            parent = record["parent_id"]
            if parent is not None:
                assert parent in by_id
                # Children stay within their root's trace.
                assert by_id[parent]["trace_id"] == record["trace_id"]
            assert record["duration_ms"] >= 0.0
