"""Tests for the simulated-annealing calibration solver."""

import numpy as np
import pytest

from repro.calibration.annealing import SimulatedAnnealing
from repro.errors import ConfigurationError


def sphere(x):
    return float(np.sum(x**2))


def rastrigin(x):
    return float(10 * x.size + np.sum(x**2 - 10 * np.cos(2 * np.pi * x)))


class TestSimulatedAnnealing:
    def test_minimizes_sphere(self):
        sa = SimulatedAnnealing(bounds=[(-5, 5)] * 3, iterations=6000)
        result = sa.minimize(sphere, rng=1)
        assert result.best_cost < 0.2

    def test_escapes_local_minima(self):
        sa = SimulatedAnnealing(
            bounds=[(-5.12, 5.12)] * 2,
            iterations=12000,
            initial_temperature=5.0,
        )
        result = sa.minimize(rastrigin, rng=2)
        assert result.best_cost < 2.0

    def test_respects_bounds(self):
        sa = SimulatedAnnealing(bounds=[(1.0, 2.0)] * 4, iterations=500)
        result = sa.minimize(lambda x: -float(np.sum(x)), rng=3)
        assert np.all(result.best >= 1.0) and np.all(result.best <= 2.0)

    def test_initial_point_used(self):
        sa = SimulatedAnnealing(bounds=[(-5, 5)] * 3, iterations=1)
        seed = np.array([0.1, 0.1, 0.1])
        result = sa.minimize(sphere, rng=4, initial=seed)
        assert result.best_cost <= sphere(seed) + 1e-12

    def test_acceptance_rate_reported(self):
        sa = SimulatedAnnealing(bounds=[(-1, 1)] * 2, iterations=200)
        result = sa.minimize(sphere, rng=5)
        assert 0.0 <= result.acceptance_rate <= 1.0

    def test_deterministic_with_seed(self):
        sa = SimulatedAnnealing(bounds=[(-5, 5)] * 2, iterations=500)
        a = sa.minimize(sphere, rng=6)
        b = sa.minimize(sphere, rng=6)
        assert np.allclose(a.best, b.best)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SimulatedAnnealing(bounds=[])
        with pytest.raises(ConfigurationError):
            SimulatedAnnealing(bounds=[(1.0, 0.0)])
        with pytest.raises(ConfigurationError):
            SimulatedAnnealing(bounds=[(-1, 1)], iterations=0)
        with pytest.raises(ConfigurationError):
            SimulatedAnnealing(bounds=[(-1, 1)], cooling=0.0)


class TestOnCalibrationObjective:
    def test_solves_eq11_comparably_to_ga(self, array, rng):
        import math

        from repro.calibration.offsets import PhaseOffsets, offset_error
        from repro.calibration.wireless import (
            observation_from_snapshots,
            subspace_cost,
        )
        from repro.rf.channel import MultipathChannel
        from tests.conftest import make_path

        raw = rng.uniform(-np.pi, np.pi, size=8)
        raw[0] = 0.0
        truth = PhaseOffsets.referenced(raw)
        observations = []
        for angle_deg in (35, 75, 115, 150):
            channel = MultipathChannel(
                array=array, paths=[make_path(array, angle_deg, 0.01)]
            )
            x = channel.snapshots(
                60, snr_db=30, phase_offsets=truth.values, rng=rng
            )
            observations.append(
                observation_from_snapshots(x, math.radians(angle_deg))
            )

        def cost(beta):
            return subspace_cost(
                beta, observations, array.spacing_m, array.wavelength_m
            )

        sa = SimulatedAnnealing(
            bounds=[(-np.pi, np.pi)] * 7,
            iterations=8000,
            initial_temperature=0.5,
        )
        result = sa.minimize(cost, rng=7)
        estimate = PhaseOffsets.referenced(
            np.concatenate(([0.0], result.best))
        )
        assert offset_error(estimate, truth) < 0.1
