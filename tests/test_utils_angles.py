"""Tests for repro.utils.angles."""

import math

import numpy as np
import pytest

from repro.utils.angles import (
    angle_difference,
    circular_mean,
    deg2rad,
    rad2deg,
    wrap_to_2pi,
    wrap_to_pi,
)


class TestWrapToPi:
    def test_identity_inside_range(self):
        assert wrap_to_pi(1.0) == pytest.approx(1.0)

    def test_wraps_above(self):
        assert wrap_to_pi(math.pi + 0.5) == pytest.approx(-math.pi + 0.5)

    def test_wraps_below(self):
        assert wrap_to_pi(-math.pi - 0.5) == pytest.approx(math.pi - 0.5)

    def test_pi_maps_to_pi(self):
        assert wrap_to_pi(math.pi) == pytest.approx(math.pi)

    def test_negative_pi_maps_to_positive_pi(self):
        assert wrap_to_pi(-math.pi) == pytest.approx(math.pi)

    def test_array_input(self):
        values = wrap_to_pi(np.array([0.0, 3 * math.pi, -3 * math.pi]))
        assert values[0] == pytest.approx(0.0)
        assert abs(values[1]) == pytest.approx(math.pi)
        assert abs(values[2]) == pytest.approx(math.pi)


class TestWrapTo2Pi:
    def test_wraps_negative(self):
        assert wrap_to_2pi(-0.5) == pytest.approx(2 * math.pi - 0.5)

    def test_wraps_large(self):
        assert wrap_to_2pi(5 * math.pi) == pytest.approx(math.pi)

    def test_zero(self):
        assert wrap_to_2pi(0.0) == 0.0


class TestAngleDifference:
    def test_simple(self):
        assert angle_difference(1.0, 0.5) == pytest.approx(0.5)

    def test_across_boundary(self):
        diff = angle_difference(math.pi - 0.1, -math.pi + 0.1)
        assert diff == pytest.approx(-0.2)

    def test_antisymmetric(self):
        assert angle_difference(0.3, 1.2) == pytest.approx(
            -float(angle_difference(1.2, 0.3))
        )


class TestCircularMean:
    def test_plain_mean(self):
        assert circular_mean([0.1, 0.3]) == pytest.approx(0.2)

    def test_wraps_across_pi(self):
        mean = circular_mean([math.pi - 0.1, -math.pi + 0.1])
        assert abs(mean) == pytest.approx(math.pi)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            circular_mean([])

    def test_opposite_angles_raise(self):
        with pytest.raises(ValueError):
            circular_mean([0.0, math.pi])


class TestConversions:
    def test_roundtrip(self):
        assert rad2deg(deg2rad(73.0)) == pytest.approx(73.0)

    def test_known_value(self):
        assert deg2rad(180.0) == pytest.approx(math.pi)
