"""Prometheus exposition: rendering, the validator, and name mapping."""

import pytest

from repro import obs
from repro.core.pipeline import DWatch
from repro.errors import ExpositionError
from repro.obs.export import (
    LABEL_NAME_RE,
    METRIC_NAME_RE,
    escape_label_value,
    prometheus_label_name,
    prometheus_metric_name,
    render_prometheus,
    validate_exposition,
)
from repro.obs.metrics import MetricsRegistry
from repro.sim.environments import hall_scene
from repro.sim.measurement import MeasurementSession
from repro.stream import StreamRunner, SyntheticStreamConfig, synthetic_reads


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends with observability disabled."""
    obs.shutdown()
    yield
    obs.shutdown()


def populated_registry():
    registry = MetricsRegistry()
    registry.counter("stream.fixes").inc(3)
    registry.counter("faults.injected", labels={"kind": "outage"}).inc(2)
    registry.counter("faults.injected", labels={"kind": "overload"}).inc(5)
    registry.gauge("stream.queue.depth").set(7)
    hist = registry.histogram("latency.stream.window")
    for v in (0.2, 1.5, 40.0):
        hist.observe(v)
    return registry


class TestNameMapping:
    def test_dots_become_underscores_with_namespace(self):
        assert (
            prometheus_metric_name("stream.fixes", "counter")
            == "repro_stream_fixes_total"
        )
        assert (
            prometheus_metric_name("latency.stream.window", "histogram")
            == "repro_latency_stream_window"
        )

    def test_counter_total_suffix_not_doubled(self):
        assert prometheus_metric_name("x.total", "counter").endswith("_total")
        assert not prometheus_metric_name("x.total", "counter").endswith(
            "_total_total"
        )

    def test_hostile_characters_map_into_grammar(self):
        name = prometheus_metric_name("weird-name.with spaces", "gauge")
        assert METRIC_NAME_RE.match(name)
        label = prometheus_label_name("9starts-with.digit")
        assert LABEL_NAME_RE.match(label)
        assert not label.startswith("__")

    def test_label_value_escaping_round_trips(self):
        raw = 'quote " slash \\ newline \n end'
        registry = MetricsRegistry()
        registry.counter("c", labels={"k": raw}).inc()
        families = validate_exposition(render_prometheus(registry.snapshot()))
        ((_, labels, _),) = families["repro_c_total"].samples
        assert dict(labels)["k"] == raw
        assert escape_label_value(raw) != raw


class TestRenderAndValidate:
    def test_rendered_snapshot_validates(self):
        text = render_prometheus(populated_registry().snapshot())
        families = validate_exposition(text)
        assert set(families) == {
            "repro_stream_fixes_total",
            "repro_faults_injected_total",
            "repro_stream_queue_depth",
            "repro_latency_stream_window",
        }
        assert families["repro_latency_stream_window"].type == "histogram"

    def test_labelled_series_stay_distinct(self):
        text = render_prometheus(populated_registry().snapshot())
        family = validate_exposition(text)["repro_faults_injected_total"]
        values = {dict(labels)["kind"]: v for _, labels, v in family.samples}
        assert values == {"outage": 2.0, "overload": 5.0}

    def test_histogram_children_are_consistent(self):
        text = render_prometheus(populated_registry().snapshot())
        family = validate_exposition(text)["repro_latency_stream_window"]
        buckets = [s for s in family.samples if s[0].endswith("_bucket")]
        counts = [v for _, _, v in buckets]
        assert counts == sorted(counts)  # cumulative
        assert counts[-1] == 3  # the +Inf bucket equals _count

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus([]) == ""
        assert validate_exposition("") == {}

    def test_unknown_type_raises(self):
        with pytest.raises(ExpositionError, match="unknown type"):
            render_prometheus([{"name": "x", "type": "summary"}])

    def test_kind_conflict_raises(self):
        with pytest.raises(ExpositionError, match="both"):
            render_prometheus(
                [
                    {"name": "x", "type": "counter", "value": 1.0},
                    {"name": "x", "type": "gauge", "value": 2.0},
                ]
            )


class TestValidatorRejections:
    def test_sample_without_type_header(self):
        with pytest.raises(ExpositionError, match="no\\s+preceding # TYPE"):
            validate_exposition("repro_x 1.0\n")

    def test_duplicate_series(self):
        text = (
            "# TYPE repro_x counter\n"
            "repro_x 1.0\n"
            "repro_x 2.0\n"
        )
        with pytest.raises(ExpositionError, match="duplicate series"):
            validate_exposition(text)

    def test_reserved_label_name(self):
        text = '# TYPE repro_x counter\nrepro_x{__name__="x"} 1.0\n'
        with pytest.raises(ExpositionError, match="reserved label"):
            validate_exposition(text)

    def test_noncumulative_histogram(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1.0"} 5\n'
            'repro_h_bucket{le="+Inf"} 3\n'
            "repro_h_sum 2.0\n"
            "repro_h_count 3\n"
        )
        with pytest.raises(ExpositionError, match="not\\s+cumulative"):
            validate_exposition(text)

    def test_histogram_missing_inf_bucket(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1.0"} 3\n'
            "repro_h_sum 2.0\n"
            "repro_h_count 3\n"
        )
        with pytest.raises(ExpositionError, match=r"\+Inf"):
            validate_exposition(text)


class TestLiveStreamExposition:
    """Every metric an instrumented stream emits is Prometheus-valid."""

    def test_instrumented_stream_metrics_expose_cleanly(self):
        scene = hall_scene(rng=5, num_tags=4, num_antennas=4)
        dwatch = DWatch(scene, cell_size=0.1)
        dwatch.calibrate(rng=6)
        session = MeasurementSession(scene, rng=7)
        dwatch.collect_baseline([session.capture() for _ in range(2)])
        reads = synthetic_reads(
            scene, SyntheticStreamConfig(fixes=2), rng=8
        )
        with obs.observed() as state:
            runner = StreamRunner(dwatch)
            list(runner.run(iter(reads)))
            records = state.registry.snapshot()
        assert records  # the stream actually instrumented something
        # The acceptance check: names, labels, types, histogram shape.
        families = validate_exposition(render_prometheus(records))
        for family in families.values():
            assert METRIC_NAME_RE.match(family.name)
            for _, labels, _ in family.samples:
                for label_name, _ in labels:
                    assert LABEL_NAME_RE.match(label_name)
                    assert not label_name.startswith("__")
        # The labelled per-reader/per-quality series made it through.
        exposed = set(families)
        assert "repro_stream_fixes_by_quality_total" in exposed
        assert "repro_stream_reader_windows_total" in exposed
