"""Tests for repro.sim.deployment."""

import pytest

from repro.errors import ConfigurationError
from repro.geometry.shapes import Rectangle
# Alias on import: pytest would otherwise collect the library function
# itself as a test (its name starts with "test_").
from repro.sim.deployment import perimeter_tag_positions, random_tag_positions
from repro.sim.deployment import test_location_grid as location_grid


ROOM = Rectangle(0, 0, 7, 10)


class TestRandomTagPositions:
    def test_count_and_containment(self):
        positions = random_tag_positions(ROOM, 21, rng=1)
        assert len(positions) == 21
        assert all(ROOM.contains(p) for p in positions)

    def test_minimum_separation_respected(self):
        positions = random_tag_positions(ROOM, 21, rng=2, min_separation=0.25)
        for i, a in enumerate(positions):
            for b in positions[i + 1 :]:
                assert a.distance_to(b) >= 0.25

    def test_margin_respected(self):
        positions = random_tag_positions(ROOM, 10, rng=3, margin=1.0)
        assert all(ROOM.contains(p, margin=1.0 - 1e-9) for p in positions)

    def test_impossible_packing_raises(self):
        tiny = Rectangle(0, 0, 1, 1)
        with pytest.raises(ConfigurationError):
            random_tag_positions(tiny, 500, rng=4, min_separation=0.5, margin=0.1)

    def test_zero_count_rejected(self):
        with pytest.raises(ConfigurationError):
            random_tag_positions(ROOM, 0)


class TestPerimeterTagPositions:
    def test_positions_on_boundary(self):
        room = Rectangle(0, 0, 2, 2)
        positions = perimeter_tag_positions(room, 12, margin=0.1)
        inner = Rectangle(0.1, 0.1, 1.9, 1.9)
        for p in positions:
            on_edge = (
                abs(p.x - inner.min_x) < 1e-9
                or abs(p.x - inner.max_x) < 1e-9
                or abs(p.y - inner.min_y) < 1e-9
                or abs(p.y - inner.max_y) < 1e-9
            )
            assert on_edge

    def test_count(self):
        assert len(perimeter_tag_positions(ROOM, 26)) == 26

    def test_distinct_positions(self):
        positions = perimeter_tag_positions(ROOM, 26)
        assert len({p.as_tuple() for p in positions}) == 26


class TestTestLocationGrid:
    def test_spacing(self):
        grid = location_grid(ROOM, spacing=0.5, margin=0.75)
        xs = sorted({p.x for p in grid})
        for a, b in zip(xs, xs[1:]):
            assert b - a == pytest.approx(0.5)

    def test_inside_margin(self):
        grid = location_grid(ROOM, spacing=0.5, margin=0.75)
        assert all(ROOM.contains(p, margin=0.75 - 1e-9) for p in grid)

    def test_count_matches_grid_arithmetic(self):
        # 7x10 room, 0.9 m margin: 11 x-samples and 17 y-samples.
        library = location_grid(Rectangle(0, 0, 7, 10), 0.5, margin=0.9)
        assert len(library) == 11 * 17

    def test_bad_spacing_rejected(self):
        with pytest.raises(ConfigurationError):
            location_grid(ROOM, spacing=0.0)

    def test_margin_too_large_rejected(self):
        with pytest.raises(ConfigurationError):
            location_grid(Rectangle(0, 0, 1, 1), spacing=0.5, margin=0.6)
