"""Tests for the shared experiment harness."""

import numpy as np
import pytest

from repro.experiments.harness import (
    DeploymentHarness,
    localization_trial_errors,
)
from repro.geometry.point import Point
from repro.sim.environments import hall_scene
from repro.sim.measurement import MeasurementConfig
from repro.sim.target import human_target


@pytest.fixture(scope="module")
def harness():
    return DeploymentHarness(hall_scene(rng=95), rng=96)


class TestDeploymentHarness:
    def test_builds_calibrated_pipeline(self, harness):
        assert harness.dwatch.calibration
        assert harness.dwatch.baseline is not None
        assert len(harness.dwatch.baseline) == harness.baseline_captures

    def test_localize_target_returns_point_or_none(self, harness):
        result = harness.localize_target(
            human_target(harness.scene.room.center)
        )
        assert result is None or isinstance(result, Point)

    def test_run_trials_accounting(self, harness):
        positions = [Point(3.0, 5.0), Point(4.0, 6.0)]
        outcome = harness.run_trials(positions, repeats=2)
        assert outcome.attempted == 4
        assert 0 <= outcome.covered <= 4

    def test_config_override(self):
        harness = DeploymentHarness(
            hall_scene(rng=97),
            config=MeasurementConfig(num_snapshots=6),
            rng=98,
        )
        assert harness.config.num_snapshots == 6


class TestLocalizationTrialErrors:
    def test_subsample_is_deterministic(self):
        scene = hall_scene(rng=99)
        a = localization_trial_errors(scene, num_locations=6, rng=1)
        b = localization_trial_errors(scene, num_locations=6, rng=1)
        assert a.attempted == b.attempted == 6
        assert a.errors == b.errors

    def test_subsample_spans_multiple_columns(self):
        # Regression: a strided subsample once aliased onto a single
        # grid column, collapsing every sweep's coverage numbers.
        from repro.sim.deployment import test_location_grid

        scene = hall_scene(rng=99)
        grid = test_location_grid(scene.room, spacing=0.5)
        subsample_rng = np.random.default_rng(0xD_4A7C4)
        indices = np.sort(subsample_rng.choice(len(grid), size=10, replace=False))
        xs = {round(grid[i].x, 3) for i in indices}
        assert len(xs) > 3
