"""Ingest wire protocol: framing, handshake, and typed failure paths.

Everything here runs against in-memory byte streams — a protocol
violation must be diagnosable without a socket in sight, and none of
these paths may ever hang.
"""

import io
import json

import pytest

from repro.errors import IngestProtocolError
from repro.serve import protocol
from repro.stream.events import TagRead


def roundtrip(message):
    return protocol.read_frame(io.BytesIO(protocol.encode_frame(message)))


class TestFraming:
    def test_frame_roundtrip(self):
        message = {"op": "ack", "seq": 3, "nested": {"a": [1, 2]}}
        assert roundtrip(message) == message

    def test_clean_eof_returns_none(self):
        assert protocol.read_frame(io.BytesIO(b"")) is None

    def test_multiple_frames_in_sequence(self):
        stream = io.BytesIO(
            protocol.encode_frame({"seq": 1}) + protocol.encode_frame({"seq": 2})
        )
        assert protocol.read_frame(stream) == {"seq": 1}
        assert protocol.read_frame(stream) == {"seq": 2}
        assert protocol.read_frame(stream) is None

    def test_eof_mid_prefix_is_truncated(self):
        with pytest.raises(IngestProtocolError) as excinfo:
            protocol.read_frame(io.BytesIO(b"12"))
        assert excinfo.value.code == "truncated"

    def test_eof_mid_payload_is_truncated(self):
        frame = protocol.encode_frame({"op": "reads", "seq": 1})
        with pytest.raises(IngestProtocolError) as excinfo:
            protocol.read_frame(io.BytesIO(frame[: len(frame) - 4]))
        assert excinfo.value.code == "truncated"

    def test_non_numeric_prefix_is_malformed(self):
        with pytest.raises(IngestProtocolError) as excinfo:
            protocol.read_frame(io.BytesIO(b"nope {}\n"))
        assert excinfo.value.code == "malformed"

    def test_non_json_payload_is_malformed(self):
        with pytest.raises(IngestProtocolError) as excinfo:
            protocol.read_frame(io.BytesIO(b"3 {{{\n"))
        assert excinfo.value.code == "malformed"

    def test_non_object_payload_is_malformed(self):
        body = json.dumps([1, 2, 3]).encode()
        frame = b"%d %s\n" % (len(body), body)
        with pytest.raises(IngestProtocolError) as excinfo:
            protocol.read_frame(io.BytesIO(frame))
        assert excinfo.value.code == "malformed"

    def test_oversized_incoming_frame_rejected(self):
        huge = b"999999999 "
        with pytest.raises(IngestProtocolError) as excinfo:
            protocol.read_frame(io.BytesIO(huge))
        assert excinfo.value.code == "oversized"

    def test_oversized_outgoing_frame_rejected(self):
        message = {"blob": "x" * (protocol.MAX_FRAME_BYTES + 1)}
        with pytest.raises(IngestProtocolError) as excinfo:
            protocol.encode_frame(message)
        assert excinfo.value.code == "oversized"


class TestHandshake:
    def test_hello_roundtrip(self):
        hello = protocol.IngestHello(
            deployment="dep-00", readers=("reader-0", "reader-1")
        )
        parsed = protocol.parse_hello(roundtrip(hello.to_dict()))
        assert parsed.deployment == "dep-00"
        assert parsed.readers == ("reader-0", "reader-1")
        assert parsed.schema == protocol.PROTOCOL_SCHEMA

    def test_wrong_kind_is_malformed(self):
        with pytest.raises(IngestProtocolError) as excinfo:
            protocol.parse_hello({"kind": "dwatch-reads", "schema": 1})
        assert excinfo.value.code == "malformed"

    def test_schema_mismatch_is_version_mismatch(self):
        hello = protocol.IngestHello(deployment="dep-00", readers=())
        message = dict(hello.to_dict(), schema=99)
        with pytest.raises(IngestProtocolError) as excinfo:
            protocol.parse_hello(message)
        assert excinfo.value.code == "version-mismatch"

    def test_missing_deployment_is_malformed(self):
        message = {
            "kind": protocol.PROTOCOL_KIND,
            "schema": protocol.PROTOCOL_SCHEMA,
            "readers": [],
        }
        with pytest.raises(IngestProtocolError) as excinfo:
            protocol.parse_hello(message)
        assert excinfo.value.code == "malformed"


class TestAcks:
    def test_ok_ack_roundtrip(self):
        ack = protocol.parse_ack(roundtrip(protocol.ack_frame(deployment="d")))
        assert ack["status"] == "ok"

    def test_error_ack_reraises_server_code(self):
        frame = protocol.ack_frame(
            "error",
            deployment="dep-77",
            code="unknown-deployment",
            error="no such deployment",
        )
        with pytest.raises(IngestProtocolError) as excinfo:
            protocol.parse_ack(roundtrip(frame))
        assert excinfo.value.code == "unknown-deployment"
        assert excinfo.value.deployment == "dep-77"


class TestReads:
    def test_read_roundtrip(self):
        read = TagRead(
            reader_name="reader-1",
            epc="epc-0005",
            time_s=12.25,
            iq=complex(0.5, -1.5),
        )
        decoded = protocol.decode_read(protocol.encode_read(read))
        assert decoded == read

    def test_reads_frame_roundtrip(self):
        reads = [
            TagRead("reader-0", "epc-0001", 0.5, complex(1.0, 2.0)),
            TagRead("reader-1", "epc-0002", 0.75, complex(-0.25, 0.0)),
        ]
        seq, decoded = protocol.parse_reads(
            roundtrip(protocol.reads_frame(9, reads))
        )
        assert seq == 9
        assert decoded == reads

    def test_batch_ack_carries_counts(self):
        frame = roundtrip(protocol.batch_ack_frame(4, 120, 8))
        assert frame["seq"] == 4
        assert frame["accepted"] == 120
        assert frame["dropped"] == 8
