"""Tests for repro.geometry.point."""

import math

import pytest

from repro.geometry.point import Point, bearing, distance


class TestArithmetic:
    def test_add_sub(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)
        assert Point(3, 4) - Point(1, 2) == Point(2, 2)

    def test_scalar_multiply_both_sides(self):
        assert Point(1, 2) * 3 == Point(3, 6)
        assert 3 * Point(1, 2) == Point(3, 6)

    def test_divide(self):
        assert Point(2, 4) / 2 == Point(1, 2)

    def test_negate(self):
        assert -Point(1, -2) == Point(-1, 2)

    def test_iter_unpacks(self):
        x, y = Point(5, 6)
        assert (x, y) == (5, 6)

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            Point(float("nan"), 0.0)


class TestVectorOps:
    def test_dot(self):
        assert Point(1, 2).dot(Point(3, 4)) == 11

    def test_cross_sign(self):
        assert Point(1, 0).cross(Point(0, 1)) == 1
        assert Point(0, 1).cross(Point(1, 0)) == -1

    def test_norm(self):
        assert Point(3, 4).norm() == 5

    def test_normalized_unit_length(self):
        assert Point(10, 0).normalized() == Point(1, 0)

    def test_normalize_zero_raises(self):
        with pytest.raises(ValueError):
            Point(0, 0).normalized()

    def test_perpendicular_is_orthogonal(self):
        vector = Point(3, 7)
        assert vector.dot(vector.perpendicular()) == 0

    def test_rotated_quarter_turn(self):
        rotated = Point(1, 0).rotated(math.pi / 2)
        assert rotated.x == pytest.approx(0.0, abs=1e-12)
        assert rotated.y == pytest.approx(1.0)

    def test_rotated_about_pivot(self):
        rotated = Point(2, 0).rotated(math.pi, about=Point(1, 0))
        assert rotated.x == pytest.approx(0.0, abs=1e-12)


class TestDistanceAndBearing:
    def test_distance_symmetry(self):
        a, b = Point(0, 0), Point(3, 4)
        assert distance(a, b) == distance(b, a) == 5

    def test_bearing_east(self):
        assert bearing(Point(0, 0), Point(1, 0)) == pytest.approx(0.0)

    def test_bearing_north(self):
        assert bearing(Point(0, 0), Point(0, 1)) == pytest.approx(math.pi / 2)

    def test_angle_to_matches_bearing(self):
        origin, target = Point(1, 1), Point(2, 2)
        assert origin.angle_to(target) == bearing(origin, target)

    def test_as_tuple(self):
        assert Point(1.5, -2.5).as_tuple() == (1.5, -2.5)
