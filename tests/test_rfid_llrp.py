"""Tests for repro.rfid.llrp (tag reports)."""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.rfid.llrp import TagReportData, build_report


@pytest.fixture
def snapshots(rng):
    return rng.normal(size=(8, 5)) + 1j * rng.normal(size=(8, 5))


class TestBuildReport:
    def test_report_count(self, snapshots):
        report = build_report("reader-0", "E" * 24, snapshots)
        assert len(report.reports) == 8 * 5

    def test_roundtrip_matrix(self, snapshots):
        report = build_report("reader-0", "E" * 24, snapshots)
        rebuilt = report.snapshot_matrix("E" * 24, 8)
        assert np.allclose(rebuilt, snapshots)

    def test_phase_matches_iq(self, snapshots):
        report = build_report("reader-0", "E" * 24, snapshots)
        for entry in report.reports[:10]:
            assert entry.phase_rad == pytest.approx(float(np.angle(entry.iq)))

    def test_rssi_is_db_of_power(self, snapshots):
        report = build_report("reader-0", "E" * 24, snapshots)
        entry = report.reports[0]
        expected = 10 * np.log10(abs(entry.iq) ** 2) + 30.0
        assert entry.rssi_dbm == pytest.approx(expected)

    def test_rejects_non_2d(self):
        with pytest.raises(ProtocolError):
            build_report("reader-0", "E" * 24, np.zeros(8))


class TestRoReport:
    def test_epcs_first_seen_order(self, snapshots):
        report = build_report("r", "A" * 24, snapshots)
        other = build_report("r", "B" * 24, snapshots)
        report.reports.extend(other.reports)
        assert report.epcs() == ["A" * 24, "B" * 24]

    def test_missing_tag_raises(self, snapshots):
        report = build_report("r", "A" * 24, snapshots)
        with pytest.raises(ProtocolError):
            report.snapshot_matrix("B" * 24, 8)

    def test_torn_sweep_detected(self, snapshots):
        report = build_report("r", "A" * 24, snapshots)
        report.reports.append(
            TagReportData(
                epc="A" * 24,
                reader_name="r",
                antenna_index=0,
                rssi_dbm=-50.0,
                phase_rad=0.0,
                iq=1.0 + 0.0j,
            )
        )
        with pytest.raises(ProtocolError):
            report.snapshot_matrix("A" * 24, 8)

    def test_antenna_out_of_range_detected(self, snapshots):
        report = build_report("r", "A" * 24, snapshots)
        with pytest.raises(ProtocolError):
            report.snapshot_matrix("A" * 24, 4)
