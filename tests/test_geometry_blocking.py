"""Tests for repro.geometry.blocking."""

from repro.geometry.blocking import (
    blocking_targets,
    first_blocked_leg,
    path_blocked_by,
    segment_intersects_circle,
)
from repro.geometry.point import Point
from repro.geometry.segment import Segment
from repro.geometry.shapes import Circle


PATH = [Segment(Point(0, 0), Point(10, 0))]
TWO_LEG_PATH = [
    Segment(Point(0, 0), Point(5, 5)),
    Segment(Point(5, 5), Point(10, 0)),
]


class TestSegmentCircle:
    def test_crossing(self):
        assert segment_intersects_circle(PATH[0], Circle(Point(5, 0), 0.2))

    def test_grazing_counts(self):
        assert segment_intersects_circle(PATH[0], Circle(Point(5, 0.2), 0.2))

    def test_near_miss(self):
        assert not segment_intersects_circle(PATH[0], Circle(Point(5, 0.21), 0.2))

    def test_beyond_endpoint_misses(self):
        assert not segment_intersects_circle(PATH[0], Circle(Point(12, 0), 1.0))


class TestPathBlocking:
    def test_blocked_on_first_leg(self):
        assert path_blocked_by(TWO_LEG_PATH, Circle(Point(2.5, 2.5), 0.3))

    def test_blocked_on_second_leg(self):
        assert path_blocked_by(TWO_LEG_PATH, Circle(Point(7.5, 2.5), 0.3))

    def test_clear_path(self):
        assert not path_blocked_by(TWO_LEG_PATH, Circle(Point(5, 0), 0.3))

    def test_first_blocked_leg_indices(self):
        assert first_blocked_leg(TWO_LEG_PATH, Circle(Point(2.5, 2.5), 0.3)) == 0
        assert first_blocked_leg(TWO_LEG_PATH, Circle(Point(7.5, 2.5), 0.3)) == 1
        assert first_blocked_leg(TWO_LEG_PATH, Circle(Point(5, 0), 0.3)) == -1


class TestBlockingTargets:
    def test_selects_only_blockers(self):
        targets = [
            Circle(Point(5, 0), 0.2),   # blocks
            Circle(Point(5, 3), 0.2),   # misses
            Circle(Point(1, 0), 0.2),   # blocks
        ]
        assert blocking_targets(PATH, targets) == [0, 2]

    def test_empty_targets(self):
        assert blocking_targets(PATH, []) == []
