"""Tests for the deadzone-driven tag placement optimizer."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.coverage import analyze_coverage
from repro.sim.environments import hall_scene
from repro.sim.placement import (
    candidate_positions,
    optimize_tag_placement,
)


@pytest.fixture(scope="module")
def sparse_scene():
    # Few tags so there is plenty of deadzone headroom.
    return hall_scene(rng=131, num_tags=6)


class TestCandidatePositions:
    def test_count_and_containment(self, sparse_scene):
        sites = candidate_positions(sparse_scene, rng=1, count=25)
        assert len(sites) == 25
        assert all(sparse_scene.room.contains(p) for p in sites)


class TestOptimizer:
    def test_coverage_never_decreases(self, sparse_scene):
        result = optimize_tag_placement(
            sparse_scene, num_new_tags=3, rng=2, grid_spacing=0.8,
            candidate_count=15,
        )
        rates = [step.coverage_after for step in result.steps]
        assert all(b >= a for a, b in zip(rates, rates[1:]))

    def test_beats_baseline(self, sparse_scene):
        before = analyze_coverage(sparse_scene, grid_spacing=0.8).coverage_rate
        result = optimize_tag_placement(
            sparse_scene, num_new_tags=3, rng=3, grid_spacing=0.8,
            candidate_count=15,
        )
        assert result.final_coverage > before

    def test_scene_gains_tags(self, sparse_scene):
        result = optimize_tag_placement(
            sparse_scene, num_new_tags=2, rng=4, grid_spacing=0.8,
            candidate_count=10,
        )
        assert len(result.scene.tags) >= len(sparse_scene.tags) + 1
        # The input scene is untouched.
        assert len(sparse_scene.tags) == 6

    def test_greedy_beats_random_on_average(self, sparse_scene):
        from repro.rfid.tag import Tag
        from repro.utils.rng import ensure_rng

        budget = 3
        greedy = optimize_tag_placement(
            sparse_scene, num_new_tags=budget, rng=5, grid_spacing=0.8,
            candidate_count=15,
        )
        rng = ensure_rng(6)
        random_rates = []
        for _ in range(3):
            sites = candidate_positions(sparse_scene, rng, count=budget)
            scene = sparse_scene.with_tags(
                list(sparse_scene.tags) + [Tag(position=p) for p in sites]
            )
            random_rates.append(
                analyze_coverage(scene, grid_spacing=0.8).coverage_rate
            )
        assert greedy.final_coverage >= max(random_rates) - 0.05

    def test_rows_format(self, sparse_scene):
        result = optimize_tag_placement(
            sparse_scene, num_new_tags=2, rng=7, grid_spacing=0.8,
            candidate_count=10,
        )
        rows = result.rows()
        assert rows[0].startswith("tag")
        assert len(rows) == len(result.steps) + 1

    def test_zero_tags_rejected(self, sparse_scene):
        with pytest.raises(ConfigurationError):
            optimize_tag_placement(sparse_scene, num_new_tags=0)

    def test_empty_candidates_rejected(self, sparse_scene):
        with pytest.raises(ConfigurationError):
            optimize_tag_placement(
                sparse_scene, num_new_tags=1, candidates=[]
            )
