"""Tests for repro.core.baseline (spectrum computation)."""

import numpy as np
import pytest

from repro.calibration.offsets import PhaseOffsets
from repro.core.baseline import SpectrumSet, compute_spectra
from repro.errors import LocalizationError
from repro.sim.environments import hall_scene
from repro.sim.measurement import MeasurementConfig, MeasurementSession


@pytest.fixture(scope="module")
def scene():
    return hall_scene(rng=51)


@pytest.fixture(scope="module")
def capture(scene):
    session = MeasurementSession(
        scene, MeasurementConfig(num_snapshots=12), rng=52
    )
    return session.capture()


def truth_calibration(scene):
    return {
        r.name: PhaseOffsets.referenced(np.asarray(r.phase_offsets))
        for r in scene.readers
    }


class TestComputeSpectra:
    def test_covers_all_pairs(self, scene, capture):
        readers = {r.name: r for r in scene.readers}
        spectra = compute_spectra(capture, readers, truth_calibration(scene))
        for reader in scene.readers:
            per_tag = spectra.spectra[reader.name]
            assert set(per_tag) == set(capture.tags_for(reader.name))

    def test_spectra_positive(self, scene, capture):
        readers = {r.name: r for r in scene.readers}
        spectra = compute_spectra(capture, readers, truth_calibration(scene))
        reader = scene.readers[0].name
        for spectrum in spectra.spectra[reader].values():
            assert np.all(spectrum.values >= 0.0)

    def test_calibration_changes_spectra(self, scene, capture):
        readers = {r.name: r for r in scene.readers}
        calibrated = compute_spectra(capture, readers, truth_calibration(scene))
        raw = compute_spectra(capture, readers, calibration=None)
        name = scene.readers[0].name
        epc = capture.tags_for(name)[0]
        assert not np.allclose(
            calibrated.spectra[name][epc].values, raw.spectra[name][epc].values
        )

    def test_unknown_reader_rejected(self, scene, capture):
        with pytest.raises(LocalizationError):
            compute_spectra(capture, {}, None)


class TestSpectrumSet:
    def test_for_pair_lookup(self, scene, capture):
        readers = {r.name: r for r in scene.readers}
        spectra = compute_spectra(capture, readers, truth_calibration(scene))
        name = scene.readers[0].name
        epc = capture.tags_for(name)[0]
        assert spectra.for_pair(name, epc) is spectra.spectra[name][epc]

    def test_missing_pair_raises(self):
        empty = SpectrumSet()
        with pytest.raises(LocalizationError):
            empty.for_pair("r", "e")
