"""Property-based equivalence: batched spectral kernels == scalar chain.

The batched fast path (:mod:`repro.dsp.batch`) is only allowed to exist
because it reproduces the scalar estimators bit for bit; these tests
drive that claim with randomized stacks (hypothesis) and with the seed
scenes the acceptance hash runs on.  Every comparison is exact array
equality — not ``allclose`` — because the fix pipeline's caches and the
CLI stdout hash both key on exact values.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import DEFAULT_WAVELENGTH_M
from repro.core.baseline import compute_spectra
from repro.dsp.batch import (
    BatchPMusicConfig,
    batched_pmusic_from_covariances,
    batched_pmusic_spectra,
    batched_sample_covariance,
    config_from_estimator,
)
from repro.dsp.covariance import sample_covariance
from repro.dsp.pmusic import PMusicEstimator
from repro.errors import EstimationError
from repro.geometry.point import Point
from repro.sim.environments import hall_scene
from repro.sim.measurement import MeasurementSession
from repro.sim.target import human_target
from repro.stream.covariance import (
    EwCovariance,
    pmusic_spectrum_from_covariance,
)

HALF_WAVE = DEFAULT_WAVELENGTH_M / 2.0

seeds = st.integers(min_value=0, max_value=2**31)
antenna_counts = st.integers(min_value=3, max_value=8)
snapshot_counts = st.integers(min_value=4, max_value=16)
stack_sizes = st.integers(min_value=1, max_value=5)


def _random_stack(seed, n, m, s):
    rng = np.random.default_rng(seed)
    # A few coherent plane waves plus noise: representative of the
    # multipath snapshots the pipeline sees, and guaranteed to carry
    # enough structure for peak detection on almost every draw.
    stack = []
    for _ in range(n):
        x = 0.05 * (rng.normal(size=(m, s)) + 1j * rng.normal(size=(m, s)))
        for _ in range(rng.integers(1, 3)):
            theta = rng.uniform(0.0, np.pi)
            phase = np.exp(
                -2j
                * np.pi
                * HALF_WAVE
                / DEFAULT_WAVELENGTH_M
                * np.cos(theta)
                * np.arange(m)
            )
            signal = rng.normal() + 1j * rng.normal()
            x += np.outer(phase, signal * np.exp(1j * rng.uniform(0, 2 * np.pi, s)))
        stack.append(x)
    return np.stack(stack)


class TestSnapshotDomainEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(seeds, stack_sizes, antenna_counts, snapshot_counts)
    def test_batched_equals_scalar_estimator(self, seed, n, m, s):
        stack = _random_stack(seed, n, m, s)
        estimator = PMusicEstimator(spacing_m=HALF_WAVE)
        config = config_from_estimator(estimator)
        scalar = []
        error = None
        for item in stack:
            try:
                scalar.append(estimator.spectrum(item))
            except EstimationError as exc:
                error = exc
                break
        if error is not None:
            with pytest.raises(EstimationError):
                batched_pmusic_spectra(stack, config)
            return
        batched = batched_pmusic_spectra(stack, config)
        assert len(batched) == len(scalar)
        for got, want in zip(batched, scalar):
            assert np.array_equal(got.angles, want.angles)
            assert np.array_equal(got.values, want.values)

    @settings(max_examples=20, deadline=None)
    @given(seeds, stack_sizes, antenna_counts, snapshot_counts)
    def test_batched_sample_covariance_exact(self, seed, n, m, s):
        stack = _random_stack(seed, n, m, s)
        batched = batched_sample_covariance(stack)
        for i in range(n):
            assert np.array_equal(batched[i], sample_covariance(stack[i]))

    @settings(max_examples=20, deadline=None)
    @given(seeds, antenna_counts, snapshot_counts)
    def test_pinned_sources_and_no_forward_backward(self, seed, m, s):
        stack = _random_stack(seed, 3, m, s)
        from repro.dsp.music import MusicEstimator

        music = MusicEstimator(
            spacing_m=HALF_WAVE, num_sources=1, forward_backward=False
        )
        estimator = PMusicEstimator(spacing_m=HALF_WAVE, music=music)
        config = config_from_estimator(estimator)
        scalar = [estimator.spectrum(item) for item in stack]
        batched = batched_pmusic_spectra(stack, config)
        for got, want in zip(batched, scalar):
            assert np.array_equal(got.values, want.values)


class TestCovarianceDomainEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(seeds, stack_sizes, antenna_counts, snapshot_counts)
    def test_batched_equals_stream_reference(self, seed, n, m, s):
        stack = _random_stack(seed, n, m, s)
        covariances = []
        for item in stack:
            estimator = EwCovariance(num_antennas=m, decay=0.8)
            estimator.update_matrix(item)
            covariances.append(estimator.covariance())
        config = BatchPMusicConfig(
            spacing_m=HALF_WAVE, wavelength_m=DEFAULT_WAVELENGTH_M
        )
        scalar = []
        error = None
        for covariance in covariances:
            try:
                scalar.append(
                    pmusic_spectrum_from_covariance(
                        covariance,
                        spacing_m=HALF_WAVE,
                        wavelength_m=DEFAULT_WAVELENGTH_M,
                    )
                )
            except EstimationError as exc:
                error = exc
                break
        if error is not None:
            with pytest.raises(EstimationError):
                batched_pmusic_from_covariances(np.stack(covariances), config)
            return
        batched = batched_pmusic_from_covariances(np.stack(covariances), config)
        for got, want in zip(batched, scalar):
            assert np.array_equal(got.angles, want.angles)
            assert np.array_equal(got.values, want.values)


class TestSeedSceneExactEquality:
    def test_hall_scene_batch_equals_scalar(self):
        scene = hall_scene(rng=5)
        readers = {reader.name: reader for reader in scene.readers}
        session = MeasurementSession(scene, rng=6)
        target = human_target(
            Point(scene.room.center.x, scene.room.center.y)
        )
        for capture in (session.capture(), session.capture([target])):
            batched = compute_spectra(capture, readers)
            scalar = compute_spectra(capture, readers, batch=False)
            pairs = 0
            for reader_name in capture.readers():
                for epc in capture.tags_for(reader_name):
                    got = batched.for_pair(reader_name, epc)
                    want = scalar.for_pair(reader_name, epc)
                    assert np.array_equal(got.angles, want.angles)
                    assert np.array_equal(got.values, want.values)
                    pairs += 1
            assert pairs > 0
