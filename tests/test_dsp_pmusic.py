"""Tests for repro.dsp.pmusic — the paper's core estimator."""

import math

import numpy as np
import pytest

from repro.dsp.music import MusicEstimator
from repro.dsp.pmusic import PMusicEstimator, normalize_peaks
from repro.dsp.peaks import find_spectrum_peaks
from repro.errors import EstimationError
from repro.rf.channel import MultipathChannel

from tests.conftest import make_path


@pytest.fixture
def estimator(array):
    return PMusicEstimator(
        spacing_m=array.spacing_m, wavelength_m=array.wavelength_m
    )


class TestNormalizePeaks:
    def test_all_peaks_become_unity(self, array, three_path_channel):
        music = MusicEstimator(
            spacing_m=array.spacing_m, wavelength_m=array.wavelength_m
        )
        x = three_path_channel.snapshots(60, snr_db=25, rng=0)
        normalized = normalize_peaks(music.spectrum(x))
        peaks = find_spectrum_peaks(normalized, min_relative_height=0.5)
        for peak in peaks:
            assert peak.value == pytest.approx(1.0)

    def test_flat_spectrum_rejected(self):
        from repro.dsp.spectrum import AngularSpectrum

        flat = AngularSpectrum(np.linspace(0, math.pi, 20), np.zeros(20))
        with pytest.raises(EstimationError):
            normalize_peaks(flat)


class TestPMusicPowerTracking:
    def test_angles_match_music(self, array, estimator, three_path_channel):
        x = three_path_channel.snapshots(60, snr_db=25, rng=1)
        peaks = estimator.estimate_paths(x, max_peaks=3)
        found = sorted(math.degrees(p.angle) for p in peaks)
        assert found == pytest.approx([50, 90, 130], abs=1.5)

    def test_peak_heights_track_path_power(self, array, estimator, three_path_channel):
        x = three_path_channel.snapshots(200, snr_db=30, rng=2)
        peaks = {
            round(math.degrees(p.angle) / 10) * 10: p.value
            for p in estimator.estimate_paths(x, max_peaks=3)
        }
        gains = {50: 0.010, 90: 0.008, 130: 0.006}
        for angle, gain in gains.items():
            assert peaks[angle] == pytest.approx(gain**2, rel=0.5)
        # Ordering must match exactly even where magnitudes are loose.
        assert peaks[50] > peaks[90] > peaks[130]

    def test_blocked_path_power_drops(self, array, estimator):
        paths = [
            make_path(array, 50.0, 0.010),
            make_path(array, 90.0, 0.008),
            make_path(array, 130.0, 0.006),
        ]
        baseline_channel = MultipathChannel(array=array, paths=paths)
        blocked_paths = [paths[0].attenuated(0.14), paths[1], paths[2]]
        blocked_channel = MultipathChannel(array=array, paths=blocked_paths)

        base = estimator.spectrum(baseline_channel.snapshots(60, snr_db=25, rng=3))
        after = estimator.spectrum(blocked_channel.snapshots(60, snr_db=25, rng=4))

        window = math.radians(2.5)
        blocked_drop = 1 - after.max_in_window(
            math.radians(50), window
        ) / base.max_in_window(math.radians(50), window)
        untouched_drop = 1 - after.max_in_window(
            math.radians(130), window
        ) / base.max_in_window(math.radians(130), window)
        assert blocked_drop > 0.9
        assert abs(untouched_drop) < 0.5

    def test_single_path_power_estimate(self, array, estimator):
        gain = 0.02
        channel = MultipathChannel(array=array, paths=[make_path(array, 75.0, gain)])
        x = channel.snapshots(200, snr_db=35, rng=5)
        peak = estimator.estimate_paths(x, max_peaks=1)[0]
        assert peak.value == pytest.approx(gain**2, rel=0.2)


class TestPMusicConfiguration:
    def test_builds_music_automatically(self, array):
        estimator = PMusicEstimator(
            spacing_m=array.spacing_m, wavelength_m=array.wavelength_m
        )
        assert estimator.music is not None
        assert estimator.music.spacing_m == array.spacing_m

    def test_custom_grid_respected(self, array, three_path_channel):
        grid = np.linspace(0.1, math.pi - 0.1, 200)
        estimator = PMusicEstimator(
            spacing_m=array.spacing_m,
            wavelength_m=array.wavelength_m,
            angle_grid=grid,
        )
        x = three_path_channel.snapshots(40, rng=6)
        spectrum = estimator.spectrum(x)
        assert spectrum.angles.shape == grid.shape
