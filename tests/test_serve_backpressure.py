"""Ingest admission control: shed watermarks, backpressure acks, waits.

Two layers:

* protocol + publisher semantics against a scripted server (exact
  control over which acks come back, no pipeline builds);
* one end-to-end shed through a real stalled shard, proving the
  watermark fires and that honoring the acks loses **zero** reads.
"""

import socketserver
import threading
import time

import pytest

from repro.errors import SourceUnavailableError
from repro.serve import protocol
from repro.serve.publisher import ReadPublisher
from repro.serve.registry import DeploymentRegistry, DeploymentSpec
from repro.serve.shard import Admission
from repro.serve.supervisor import ShardSupervisor
from repro.stream.events import TagRead


def read(n):
    return TagRead(reader_name="r", epc=f"tag-{n}", time_s=float(n), iq=1j)


class TestAckFrames:
    def test_ok_ack_is_byte_identical_to_schema_one(self):
        # Backward compatibility: old clients never see the new keys.
        assert protocol.batch_ack_frame(7, 12, 0) == {
            "op": "ack",
            "seq": 7,
            "accepted": 12,
            "dropped": 0,
        }

    def test_backpressure_ack_carries_the_hint(self):
        ack = protocol.batch_ack_frame(
            7, 0, 0, status="backpressure", retry_after_s=0.25
        )
        assert ack["status"] == "backpressure"
        assert ack["retry_after_s"] == 0.25
        assert ack["accepted"] == 0


class TestAdmission:
    def test_unpacks_as_the_historical_pair(self):
        accepted, dropped = Admission(5, 1)
        assert (accepted, dropped) == (5, 1)

    def test_shed_defaults_off(self):
        verdict = Admission(5, 0)
        assert not verdict.shed
        assert verdict.retry_after_s is None


class _ScriptedHandler(socketserver.StreamRequestHandler):
    """Acks the handshake, then plays the server's scripted verdicts."""

    def handle(self):
        self.connection.settimeout(5.0)
        frame = protocol.read_frame(self.rfile)
        hello = protocol.parse_hello(frame)
        protocol.write_frame(
            self.wfile, protocol.ack_frame(deployment=hello.deployment)
        )
        while True:
            frame = protocol.read_frame(self.rfile)
            if frame is None or frame.get("op") == "bye":
                return
            seq = int(frame.get("seq", -1))
            reads = frame.get("reads", [])
            script = self.server.script  # type: ignore[attr-defined]
            verdict = script.pop(0) if script else "ok"
            if verdict == "backpressure":
                ack = protocol.batch_ack_frame(
                    seq, 0, 0, status="backpressure", retry_after_s=0.01
                )
            else:
                ack = protocol.batch_ack_frame(seq, len(reads), 0)
            protocol.write_frame(self.wfile, ack)


class _ScriptedServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True


@pytest.fixture()
def scripted():
    """(address, script) — mutate ``script`` before publishing."""
    server = _ScriptedServer(("127.0.0.1", 0), _ScriptedHandler)
    server.script = []
    thread = threading.Thread(
        target=server.serve_forever, name="test-scripted-ingest", daemon=True
    )
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


class TestPublisherHonorsBackpressure:
    def test_waits_then_resends_the_same_batch(self, scripted):
        scripted.script[:] = ["backpressure", "backpressure", "ok"]
        sleeps = []
        publisher = ReadPublisher(
            *scripted.server_address,
            deployment="dep-a",
            readers=("r",),
            sleep=sleeps.append,
        )
        accepted, dropped = publisher.publish([read(0), read(1)], batch_size=2)
        assert (accepted, dropped) == (2, 0)
        assert publisher.backpressure_waits == 2
        # The advertised hint is exactly what was slept.
        assert sleeps == [pytest.approx(0.01), pytest.approx(0.01)]
        # Backpressure did not consume the reconnect budget or skew RTTs.
        assert publisher.batches_acked == 1
        assert len(publisher.rtts_ms) == 1

    def test_gives_up_after_the_wait_bound(self, scripted):
        scripted.script[:] = ["backpressure"] * 10
        publisher = ReadPublisher(
            *scripted.server_address,
            deployment="dep-a",
            readers=("r",),
            sleep=lambda _s: None,
            max_backpressure_waits=3,
        )
        with pytest.raises(SourceUnavailableError, match="backpressure"):
            publisher.publish([read(0)], batch_size=1)
        assert publisher.backpressure_waits == 3

    def test_plain_acks_skip_the_backpressure_path(self, scripted):
        publisher = ReadPublisher(
            *scripted.server_address,
            deployment="dep-a",
            readers=("r",),
            sleep=lambda _s: None,
        )
        accepted, dropped = publisher.publish(
            [read(n) for n in range(6)], batch_size=2
        )
        assert (accepted, dropped) == (6, 0)
        assert publisher.backpressure_waits == 0


class TestRealShardSheds:
    """End-to-end: a wedged worker backs the queue past the watermark."""

    @pytest.fixture(scope="class")
    def shed_run(self):
        registry = DeploymentRegistry()
        registry.register(
            DeploymentSpec(
                deployment_id="dep-shed",
                seed=23,
                num_tags=2,
                num_antennas=2,
                num_readers=2,
            )
        )
        supervisor = ShardSupervisor(
            registry,
            workers="thread",
            ingress_capacity=64,
            shed_watermark=0.25,
            shed_retry_after_s=0.05,
        )
        supervisor.start()
        result = {}
        try:
            batch = [read(n) for n in range(8)]
            # Wedge the worker so nothing drains, then pour until the
            # watermark trips.
            supervisor.stall("dep-shed", 2.0)
            verdicts = []
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                verdict = supervisor.route("dep-shed", batch)
                verdicts.append(verdict)
                if verdict.shed:
                    break
            result["verdicts"] = verdicts
            # Once the worker resumes and drains, admission reopens.
            deadline = time.monotonic() + 15.0
            reopened = None
            while time.monotonic() < deadline:
                reopened = supervisor.route("dep-shed", batch)
                if not reopened.shed:
                    break
                time.sleep(0.05)
            result["reopened"] = reopened
        finally:
            supervisor.stop(drain=True)
        return result

    def test_watermark_sheds_instead_of_dropping(self, shed_run):
        final = shed_run["verdicts"][-1]
        assert final.shed
        assert final.accepted == 0
        assert final.dropped == 0  # shed is a refusal, not a loss

    def test_shed_verdict_advertises_a_positive_hint(self, shed_run):
        final = shed_run["verdicts"][-1]
        assert final.retry_after_s is not None
        assert final.retry_after_s > 0.0

    def test_earlier_batches_were_accepted_normally(self, shed_run):
        first = shed_run["verdicts"][0]
        assert not first.shed
        assert first.accepted == 8

    def test_admission_reopens_after_the_drain(self, shed_run):
        assert shed_run["reopened"] is not None
        assert not shed_run["reopened"].shed
