"""Tests for the controlled microbenchmark deployment (Figs. 4/11-13)."""

import math

import pytest

from repro.experiments.controlled import controlled_deployment
from repro.geometry.blocking import path_blocked_by


class TestGeometry:
    def test_three_paths_exist_across_sweep(self):
        for distance in (2.0, 4.0, 6.0, 8.0, 9.0):
            deployment = controlled_deployment(tag_distance=distance, rng=1)
            assert deployment.channel().num_paths == 3, distance

    def test_direct_path_is_broadside(self):
        deployment = controlled_deployment(tag_distance=4.0, rng=1)
        direct = deployment.channel().paths[0]
        assert math.degrees(direct.aoa) == pytest.approx(90.0, abs=0.5)

    def test_reference_reflection_angles(self):
        # At the 4 m reference distance the bounces land near the 50 and
        # 130 degree arrivals of the paper's Fig. 12.
        deployment = controlled_deployment(tag_distance=4.0, rng=1)
        angles = sorted(
            math.degrees(p.aoa) for p in deployment.channel().paths
        )
        assert angles[0] == pytest.approx(50.0, abs=1.0)
        assert angles[2] == pytest.approx(130.0, abs=1.0)

    def test_bounce_to_array_distance_near_paper(self):
        # dR2A ~ 2.6 m in the paper's layout.
        deployment = controlled_deployment(tag_distance=4.0, rng=1)
        reflected = [
            p for p in deployment.channel().paths if p.kind == "reflected"
        ]
        for path in reflected:
            assert path.legs[-1].length() == pytest.approx(2.6, abs=0.2)


class TestBlockers:
    def test_blockers_block_their_paths(self):
        deployment = controlled_deployment(tag_distance=4.0, rng=1)
        channel = deployment.channel()
        for index in range(channel.num_paths):
            blockers = deployment.blockers_for([index])
            assert path_blocked_by(
                channel.paths[index].legs, blockers[0].body()
            )

    def test_one_blocker_per_requested_path(self):
        deployment = controlled_deployment(tag_distance=4.0, rng=1)
        assert len(deployment.blockers_for([0, 1, 2])) == 3
