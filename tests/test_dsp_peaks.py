"""Tests for repro.dsp.peaks."""

import math

import numpy as np
import pytest

from repro.dsp.peaks import find_spectrum_peaks, peak_regions
from repro.dsp.spectrum import AngularSpectrum


def gaussian_mix_spectrum(centers_deg, amplitudes, width_deg=3.0):
    angles = np.linspace(0, math.pi, 721)
    values = np.zeros_like(angles)
    for center, amplitude in zip(centers_deg, amplitudes):
        values += amplitude * np.exp(
            -0.5 * ((angles - math.radians(center)) / math.radians(width_deg)) ** 2
        )
    return AngularSpectrum(angles, values)


class TestFindSpectrumPeaks:
    def test_finds_all_gaussians(self):
        spectrum = gaussian_mix_spectrum([40, 90, 140], [1.0, 0.8, 0.6])
        peaks = find_spectrum_peaks(spectrum)
        found = sorted(math.degrees(p.angle) for p in peaks)
        assert len(found) == 3
        assert found == pytest.approx([40, 90, 140], abs=0.5)

    def test_sorted_by_value(self):
        spectrum = gaussian_mix_spectrum([40, 90, 140], [0.6, 1.0, 0.8])
        peaks = find_spectrum_peaks(spectrum)
        values = [p.value for p in peaks]
        assert values == sorted(values, reverse=True)

    def test_min_height_filters_weak_peaks(self):
        spectrum = gaussian_mix_spectrum([40, 140], [1.0, 0.02])
        peaks = find_spectrum_peaks(spectrum, min_relative_height=0.05)
        assert len(peaks) == 1

    def test_min_separation_merges_close_peaks(self):
        spectrum = gaussian_mix_spectrum([88, 92], [1.0, 1.0])
        peaks = find_spectrum_peaks(spectrum, min_separation=math.radians(10))
        assert len(peaks) == 1

    def test_boundary_peak_detected(self):
        angles = np.linspace(0, math.pi, 181)
        values = np.exp(-angles / 0.1)  # maximum exactly at angle 0
        peaks = find_spectrum_peaks(AngularSpectrum(angles, values))
        assert any(p.index == 0 for p in peaks)

    def test_flat_zero_spectrum_has_no_peaks(self):
        spectrum = AngularSpectrum(np.linspace(0, math.pi, 10), np.zeros(10))
        assert find_spectrum_peaks(spectrum) == []


class TestPeakRegions:
    def test_regions_partition_grid(self):
        spectrum = gaussian_mix_spectrum([40, 90, 140], [1.0, 0.8, 0.6])
        peaks = find_spectrum_peaks(spectrum)
        regions = peak_regions(spectrum, peaks)
        assert regions[0][0] == 0
        assert regions[-1][1] == len(spectrum.values)
        for (_, end_a), (start_b, _) in zip(regions, regions[1:]):
            assert end_a == start_b

    def test_each_region_contains_its_peak(self):
        spectrum = gaussian_mix_spectrum([40, 90, 140], [1.0, 0.8, 0.6])
        peaks = find_spectrum_peaks(spectrum)
        regions = peak_regions(spectrum, peaks)
        ordered = sorted(peaks, key=lambda p: p.index)
        for peak, (start, end) in zip(ordered, regions):
            assert start <= peak.index < end

    def test_no_peaks_no_regions(self):
        spectrum = AngularSpectrum(np.linspace(0, math.pi, 10), np.zeros(10))
        assert peak_regions(spectrum, []) == []
