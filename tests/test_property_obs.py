"""Property-based tests (hypothesis) for the metrics layer.

Two contracts back the telemetry numbers operators read off dashboards:

* :class:`Histogram` aggregates agree with NumPy computed over the
  same values — exact for count/sum/min/max/mean, bracketed between
  the adjacent order statistics for the nearest-rank percentiles, and
  exact for the cumulative exposition buckets.
* A snapshot written through ``write_jsonl`` and re-loaded through
  ``load_snapshot_jsonl`` is the identical list of records, whatever
  metric mix and label sets the run produced.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    load_snapshot_jsonl,
)

# Finite, moderate magnitudes: the contract under test is rank/aggregate
# arithmetic, not float overflow behaviour.
values = st.lists(
    st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
    min_size=1,
    max_size=300,
)
percentiles = st.floats(min_value=0.0, max_value=100.0)

label_keys = st.text(
    alphabet="abcdefghij_", min_size=1, max_size=6
)
label_sets = st.dictionaries(
    label_keys, st.text(min_size=0, max_size=8), max_size=3
)


class TestHistogramAgainstNumpy:
    @given(values=values)
    @settings(max_examples=60, deadline=None)
    def test_exact_aggregates(self, values):
        histogram = Histogram("h")
        for v in values:
            histogram.observe(v)
        array = np.asarray(values)
        assert histogram.count == len(values)
        # Exact against the same left-to-right accumulation; NumPy's
        # pairwise summation may differ in the last ulps, so approx.
        assert histogram.total == sum(values)
        assert histogram.total == pytest.approx(float(np.sum(array)), rel=1e-9)
        assert histogram.min_value == float(np.min(array))
        assert histogram.max_value == float(np.max(array))
        assert histogram.mean == pytest.approx(float(np.mean(array)), rel=1e-9)

    @given(values=values, q=percentiles)
    @settings(max_examples=60, deadline=None)
    def test_percentile_is_bracketed_by_numpy_order_statistics(
        self, values, q
    ):
        # Nearest-rank must land on an actual sample, between NumPy's
        # floor ("lower") and ceiling ("higher") order statistics —
        # the tightest assertion that doesn't pin tie-rounding rules.
        histogram = Histogram("h")
        for v in values:
            histogram.observe(v)
        result = histogram.percentile(q)
        array = np.asarray(values)
        assert result in values
        assert (
            float(np.percentile(array, q, method="lower"))
            <= result
            <= float(np.percentile(array, q, method="higher"))
        )

    @given(values=values)
    @settings(max_examples=60, deadline=None)
    def test_median_matches_numpy_nearest(self, values):
        histogram = Histogram("h")
        for v in values:
            histogram.observe(v)
        expected = float(np.percentile(np.asarray(values), 50.0, method="nearest"))
        assert histogram.percentile(50.0) == expected

    @given(values=values)
    @settings(max_examples=60, deadline=None)
    def test_cumulative_buckets_match_numpy_counting(self, values):
        histogram = Histogram("h")
        for v in values:
            histogram.observe(v)
        array = np.asarray(values)
        for bound, cumulative in histogram.cumulative_buckets():
            assert cumulative == int(np.count_nonzero(array <= bound))
        # The implicit +Inf bucket the renderer appends equals count.
        assert histogram.count == len(values)


class TestSnapshotRoundTrip:
    @given(
        counter_values=st.lists(
            st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
            max_size=4,
        ),
        gauge_value=st.floats(
            min_value=-1e9, max_value=1e9, allow_nan=False
        ),
        labels=label_sets,
        samples=values,
    )
    @settings(max_examples=40, deadline=None)
    def test_write_then_load_is_identity(
        self, tmp_path_factory, counter_values, gauge_value, labels, samples
    ):
        path = tmp_path_factory.mktemp("obs") / "metrics.jsonl"
        registry = MetricsRegistry()
        for i, amount in enumerate(counter_values):
            registry.counter("events", labels={"idx": str(i)}).inc(amount)
        registry.gauge("level", labels=labels).set(gauge_value)
        histogram = registry.histogram("dist")
        for v in samples:
            histogram.observe(v)
        written = registry.write_jsonl(str(path))
        snapshot = registry.snapshot()
        assert written == len(snapshot)
        assert load_snapshot_jsonl(str(path)) == snapshot
