"""Tests for repro.rf.array (ULA geometry and steering vectors)."""

import math

import numpy as np
import pytest

from repro.constants import DEFAULT_WAVELENGTH_M
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.rf.array import UniformLinearArray, steering_matrix, steering_vector


HALF_WAVE = DEFAULT_WAVELENGTH_M / 2.0


class TestSteeringVector:
    def test_first_element_is_reference(self):
        vec = steering_vector(1.0, 8, HALF_WAVE, DEFAULT_WAVELENGTH_M)
        assert vec[0] == pytest.approx(1.0 + 0.0j)

    def test_unit_modulus_elements(self):
        vec = steering_vector(0.7, 8, HALF_WAVE, DEFAULT_WAVELENGTH_M)
        assert np.allclose(np.abs(vec), 1.0)

    def test_broadside_is_all_ones(self):
        vec = steering_vector(math.pi / 2, 8, HALF_WAVE, DEFAULT_WAVELENGTH_M)
        assert np.allclose(vec, 1.0)

    def test_phase_progression_matches_model(self):
        theta = math.radians(50)
        vec = steering_vector(theta, 4, HALF_WAVE, DEFAULT_WAVELENGTH_M)
        step = -2 * math.pi * HALF_WAVE / DEFAULT_WAVELENGTH_M * math.cos(theta)
        for m in range(4):
            assert np.angle(vec[m]) == pytest.approx(
                math.remainder(m * step, 2 * math.pi), abs=1e-9
            )

    def test_rejects_empty_array(self):
        with pytest.raises(ConfigurationError):
            steering_vector(1.0, 0, HALF_WAVE, DEFAULT_WAVELENGTH_M)


class TestSteeringMatrix:
    def test_shape(self):
        matrix = steering_matrix([0.3, 1.1, 2.0], 8, HALF_WAVE, DEFAULT_WAVELENGTH_M)
        assert matrix.shape == (8, 3)

    def test_columns_are_steering_vectors(self):
        thetas = [0.4, 1.5]
        matrix = steering_matrix(thetas, 6, HALF_WAVE, DEFAULT_WAVELENGTH_M)
        for column, theta in zip(matrix.T, thetas):
            assert np.allclose(
                column, steering_vector(theta, 6, HALF_WAVE, DEFAULT_WAVELENGTH_M)
            )

    def test_empty_angles(self):
        matrix = steering_matrix([], 8, HALF_WAVE, DEFAULT_WAVELENGTH_M)
        assert matrix.shape == (8, 0)


class TestUniformLinearArray:
    def test_element_positions_spacing(self):
        array = UniformLinearArray(reference=Point(0, 0), num_antennas=8)
        positions = array.element_positions()
        assert len(positions) == 8
        for first, second in zip(positions, positions[1:]):
            assert first.distance_to(second) == pytest.approx(array.spacing_m)

    def test_centroid_is_middle(self):
        array = UniformLinearArray(reference=Point(0, 0), num_antennas=8)
        centroid = array.centroid
        assert centroid.x == pytest.approx(3.5 * array.spacing_m)
        assert centroid.y == pytest.approx(0.0)

    def test_angle_to_broadside_target(self):
        array = UniformLinearArray(reference=Point(0, 0), num_antennas=8)
        above = array.centroid + Point(0, 5)
        assert array.angle_to(above) == pytest.approx(math.pi / 2)

    def test_angle_to_is_mirror_symmetric(self):
        # A ULA cannot tell front from back: symmetric points give the
        # same angle.
        array = UniformLinearArray(reference=Point(0, 0), num_antennas=8)
        front = array.centroid + Point(1, 2)
        back = array.centroid + Point(1, -2)
        assert array.angle_to(front) == pytest.approx(array.angle_to(back))

    def test_orientation_rotates_frame(self):
        array = UniformLinearArray(
            reference=Point(0, 0), orientation=math.pi / 2, num_antennas=4
        )
        along_axis = array.centroid + Point(0, 1)
        assert array.angle_to(along_axis) == pytest.approx(0.0)

    def test_with_antennas_preserves_geometry(self):
        array = UniformLinearArray(reference=Point(1, 2), num_antennas=8)
        smaller = array.with_antennas(4)
        assert smaller.num_antennas == 4
        assert smaller.reference == array.reference
        assert smaller.spacing_m == array.spacing_m

    def test_rejects_single_antenna(self):
        with pytest.raises(ConfigurationError):
            UniformLinearArray(reference=Point(0, 0), num_antennas=1)

    def test_steering_vector_shape(self):
        array = UniformLinearArray(reference=Point(0, 0), num_antennas=6)
        assert array.steering_vector(1.0).shape == (6,)
