"""Tests for repro.rf.propagation."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.reflection import Reflector
from repro.geometry.segment import Segment
from repro.rf.array import UniformLinearArray
from repro.rf.propagation import (
    PropagationPath,
    direct_path,
    enumerate_paths,
    free_space_amplitude,
    reflected_path,
)


@pytest.fixture
def array():
    return UniformLinearArray(reference=Point(0, 0))


class TestFreeSpaceAmplitude:
    def test_inverse_distance(self):
        lam = 0.325
        assert free_space_amplitude(4.0, lam) == pytest.approx(
            free_space_amplitude(2.0, lam) / 2.0
        )

    def test_near_field_clamped(self):
        lam = 0.325
        assert free_space_amplitude(0.0, lam) == free_space_amplitude(
            lam / 10.0, lam
        )


class TestDirectPath:
    def test_aoa_matches_geometry(self, array):
        tag_position = array.centroid + Point(0, 5)
        path = direct_path("tag", tag_position, array)
        assert path.aoa == pytest.approx(math.pi / 2)

    def test_single_leg_geometry(self, array):
        tag_position = array.centroid + Point(3, 4)
        path = direct_path("tag", tag_position, array)
        assert len(path.legs) == 1
        assert path.length == pytest.approx(5.0)

    def test_gain_magnitude_is_free_space(self, array):
        tag_position = array.centroid + Point(0, 4)
        path = direct_path("tag", tag_position, array)
        assert abs(path.gain) == pytest.approx(
            free_space_amplitude(4.0, array.wavelength_m)
        )

    def test_attenuated_scales_gain(self, array):
        path = direct_path("tag", array.centroid + Point(0, 4), array)
        attenuated = path.attenuated(0.14)
        assert abs(attenuated.gain) == pytest.approx(abs(path.gain) * 0.14)
        assert attenuated.aoa == path.aoa


class TestReflectedPath:
    def test_valid_bounce(self, array):
        reflector = Reflector(
            plate=Segment(Point(5, 0), Point(5, 10)), coefficient=0.8
        )
        tag_position = array.centroid + Point(2, 6)
        path = reflected_path("tag", tag_position, array, reflector)
        assert path is not None
        assert path.kind == "reflected"
        assert len(path.legs) == 2
        assert path.reflector_name == reflector.name

    def test_reflected_longer_and_weaker_than_direct(self, array):
        reflector = Reflector(
            plate=Segment(Point(5, 0), Point(5, 10)), coefficient=0.8
        )
        tag_position = array.centroid + Point(2, 6)
        direct = direct_path("tag", tag_position, array)
        reflected = reflected_path("tag", tag_position, array, reflector)
        assert reflected.length > direct.length
        assert abs(reflected.gain) < abs(direct.gain)

    def test_no_bounce_returns_none(self, array):
        # Plate far away to the side; mirror ray misses it entirely.
        reflector = Reflector(
            plate=Segment(Point(100, 100), Point(101, 100)), coefficient=0.8
        )
        assert (
            reflected_path("tag", array.centroid + Point(0, 5), array, reflector)
            is None
        )


class TestEnumeratePaths:
    def test_direct_plus_valid_reflections(self, array):
        reflectors = [
            Reflector(plate=Segment(Point(5, 0), Point(5, 10)), coefficient=0.8),
            Reflector(plate=Segment(Point(-5, 0), Point(-5, 10)), coefficient=0.8),
            Reflector(
                plate=Segment(Point(100, 100), Point(101, 100)), coefficient=0.8
            ),
        ]
        paths = enumerate_paths(
            "tag", array.centroid + Point(0, 5), array, reflectors
        )
        kinds = [p.kind for p in paths]
        assert kinds.count("direct") == 1
        assert kinds.count("reflected") == 2


class TestPropagationPathValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(GeometryError):
            PropagationPath(
                tag_id="t",
                aoa=1.0,
                gain=1.0,
                legs=(Segment(Point(0, 0), Point(1, 1)),),
                kind="diffracted",
            )

    def test_rejects_empty_legs(self):
        with pytest.raises(GeometryError):
            PropagationPath(tag_id="t", aoa=1.0, gain=1.0, legs=())
