"""Supervised ingest: retry policy and source resurrection."""

import pytest

from repro.errors import ConfigurationError, SourceUnavailableError
from repro.stream.events import TagRead
from repro.stream.supervise import RetryPolicy, supervised_reads


def read(n):
    return TagRead(reader_name="r", epc=f"tag-{n}", time_s=float(n), iq=1j)


class TestRetryPolicy:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_retries >= 1

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            max_retries=10, base_delay_s=0.1, multiplier=2.0, max_delay_s=0.5
        )
        delays = [policy.delay_for(i) for i in range(5)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError, match="base_delay"):
            RetryPolicy(base_delay_s=-0.1)
        with pytest.raises(ConfigurationError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError, match="max_delay"):
            RetryPolicy(base_delay_s=1.0, max_delay_s=0.5)
        with pytest.raises(ConfigurationError, match="attempt"):
            RetryPolicy().delay_for(-1)


class FlakySource:
    """Fails ``failures`` times (mid-stream), then delivers cleanly."""

    def __init__(self, failures, error=SourceUnavailableError):
        self.failures = failures
        self.error = error
        self.opens = 0

    def __call__(self):
        self.opens += 1
        yield read(0)
        if self.opens <= self.failures:
            raise self.error("reader went away")
        yield read(1)


class TestSupervisedReads:
    def test_clean_source_passes_through(self):
        sleeps = []
        out = list(
            supervised_reads(
                FlakySource(failures=0), sleep=sleeps.append
            )
        )
        assert [r.epc for r in out] == ["tag-0", "tag-1"]
        assert sleeps == []

    def test_source_is_rebuilt_with_backoff(self):
        source = FlakySource(failures=2)
        policy = RetryPolicy(max_retries=3, base_delay_s=0.05, multiplier=2.0)
        sleeps = []
        out = list(supervised_reads(source, policy, sleep=sleeps.append))
        assert source.opens == 3
        # Each successful yield resets the attempt counter, so both
        # retries slept the base delay.
        assert sleeps == pytest.approx([0.05, 0.05])
        assert [r.epc for r in out] == ["tag-0", "tag-0", "tag-0", "tag-1"]

    def test_os_errors_are_retryable(self):
        source = FlakySource(failures=1, error=ConnectionResetError)
        out = list(supervised_reads(source, sleep=lambda _: None))
        assert source.opens == 2
        assert out[-1].epc == "tag-1"

    def test_exhaustion_raises_source_unavailable(self):
        def always_down():
            raise SourceUnavailableError("cable cut")
            yield  # pragma: no cover - makes this a generator factory

        policy = RetryPolicy(max_retries=2)
        sleeps = []
        with pytest.raises(SourceUnavailableError, match="after 2 retries"):
            list(supervised_reads(always_down, policy, sleep=sleeps.append))
        assert len(sleeps) == 2

    def test_attempts_reset_after_successful_reads(self):
        # 3 single-failure outages with max_retries=1: survives because
        # every delivered read resets the budget.
        source = FlakySource(failures=3)
        policy = RetryPolicy(max_retries=1, base_delay_s=0.01)
        out = list(supervised_reads(source, policy, sleep=lambda _: None))
        assert source.opens == 4
        assert out[-1].epc == "tag-1"


class TestBackoffJitter:
    """Seeded jitter: the anti-thundering-herd satellite."""

    def test_jitter_bounds_are_validated(self):
        with pytest.raises(ConfigurationError, match="jitter"):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ConfigurationError, match="jitter"):
            RetryPolicy(jitter=1.0)

    def test_no_rng_keeps_the_schedule_exact(self):
        policy = RetryPolicy(base_delay_s=0.1, jitter=0.5)
        assert policy.delay_for(0) == pytest.approx(0.1)

    def test_jittered_delays_stay_within_the_band(self):
        from repro.utils.rng import ensure_rng

        policy = RetryPolicy(
            base_delay_s=0.1, multiplier=2.0, max_delay_s=0.8, jitter=0.25
        )
        rng = ensure_rng(7)
        for attempt in range(8):
            exact = policy.delay_for(attempt)
            jittered = policy.delay_for(attempt, rng=rng)
            assert 0.75 * exact <= jittered <= 1.25 * exact

    def test_same_seed_replays_the_same_schedule(self):
        from repro.utils.rng import ensure_rng

        policy = RetryPolicy(base_delay_s=0.1, jitter=0.25)
        first = [
            policy.delay_for(i, rng=ensure_rng(13)) for i in range(1)
        ] + [policy.delay_for(i, rng=ensure_rng(13)) for i in range(1)]
        assert first[0] == first[1]

    def test_distinct_seeds_desynchronize_the_herd(self):
        from repro.utils.rng import ensure_rng

        policy = RetryPolicy(base_delay_s=0.1, jitter=0.25)
        delays = {
            round(policy.delay_for(0, rng=ensure_rng(seed)), 12)
            for seed in range(16)
        }
        # Sixteen publishers, (almost surely) sixteen schedules.
        assert len(delays) > 1
