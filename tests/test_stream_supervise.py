"""Supervised ingest: retry policy and source resurrection."""

import pytest

from repro.errors import ConfigurationError, SourceUnavailableError
from repro.stream.events import TagRead
from repro.stream.supervise import RetryPolicy, supervised_reads


def read(n):
    return TagRead(reader_name="r", epc=f"tag-{n}", time_s=float(n), iq=1j)


class TestRetryPolicy:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_retries >= 1

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            max_retries=10, base_delay_s=0.1, multiplier=2.0, max_delay_s=0.5
        )
        delays = [policy.delay_for(i) for i in range(5)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError, match="base_delay"):
            RetryPolicy(base_delay_s=-0.1)
        with pytest.raises(ConfigurationError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError, match="max_delay"):
            RetryPolicy(base_delay_s=1.0, max_delay_s=0.5)
        with pytest.raises(ConfigurationError, match="attempt"):
            RetryPolicy().delay_for(-1)


class FlakySource:
    """Fails ``failures`` times (mid-stream), then delivers cleanly."""

    def __init__(self, failures, error=SourceUnavailableError):
        self.failures = failures
        self.error = error
        self.opens = 0

    def __call__(self):
        self.opens += 1
        yield read(0)
        if self.opens <= self.failures:
            raise self.error("reader went away")
        yield read(1)


class TestSupervisedReads:
    def test_clean_source_passes_through(self):
        sleeps = []
        out = list(
            supervised_reads(
                FlakySource(failures=0), sleep=sleeps.append
            )
        )
        assert [r.epc for r in out] == ["tag-0", "tag-1"]
        assert sleeps == []

    def test_source_is_rebuilt_with_backoff(self):
        source = FlakySource(failures=2)
        policy = RetryPolicy(max_retries=3, base_delay_s=0.05, multiplier=2.0)
        sleeps = []
        out = list(supervised_reads(source, policy, sleep=sleeps.append))
        assert source.opens == 3
        # Each successful yield resets the attempt counter, so both
        # retries slept the base delay.
        assert sleeps == pytest.approx([0.05, 0.05])
        assert [r.epc for r in out] == ["tag-0", "tag-0", "tag-0", "tag-1"]

    def test_os_errors_are_retryable(self):
        source = FlakySource(failures=1, error=ConnectionResetError)
        out = list(supervised_reads(source, sleep=lambda _: None))
        assert source.opens == 2
        assert out[-1].epc == "tag-1"

    def test_exhaustion_raises_source_unavailable(self):
        def always_down():
            raise SourceUnavailableError("cable cut")
            yield  # pragma: no cover - makes this a generator factory

        policy = RetryPolicy(max_retries=2)
        sleeps = []
        with pytest.raises(SourceUnavailableError, match="after 2 retries"):
            list(supervised_reads(always_down, policy, sleep=sleeps.append))
        assert len(sleeps) == 2

    def test_attempts_reset_after_successful_reads(self):
        # 3 single-failure outages with max_retries=1: survives because
        # every delivered read resets the budget.
        source = FlakySource(failures=3)
        policy = RetryPolicy(max_retries=1, base_delay_s=0.01)
        out = list(supervised_reads(source, policy, sleep=lambda _: None))
        assert source.opens == 4
        assert out[-1].epc == "tag-1"
