"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_child


class TestEnsureRng:
    def test_from_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_from_int_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1_000_000)
        b = ensure_rng(42).integers(0, 1_000_000)
        assert a == b

    def test_passthrough(self):
        generator = np.random.default_rng(1)
        assert ensure_rng(generator) is generator

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawnChild:
    def test_children_are_independent_of_consumption(self):
        parent_a = ensure_rng(7)
        parent_b = ensure_rng(7)
        parent_b.random(100)  # consume some of parent_b's stream
        child_a = spawn_child(parent_a, 3)
        child_b = spawn_child(parent_b, 3)
        assert child_a.integers(0, 2**32) == child_b.integers(0, 2**32)

    def test_distinct_indices_differ(self):
        parent = ensure_rng(7)
        a = spawn_child(parent, 0).integers(0, 2**32)
        b = spawn_child(parent, 1).integers(0, 2**32)
        assert a != b

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            spawn_child(ensure_rng(0), -1)
