"""Deployment registry: specs, shard-state transitions, persistence."""

import json

import pytest

from repro.errors import ConfigurationError, RegistryError
from repro.serve.registry import (
    REGISTRY_KIND,
    REGISTRY_SCHEMA,
    DeploymentRegistry,
    DeploymentSpec,
    default_fleet,
)


def spec(deployment_id="dep-00", **overrides):
    return DeploymentSpec(deployment_id=deployment_id, **overrides)


class TestDeploymentSpec:
    def test_roundtrip(self):
        original = spec(num_readers=3, seed=42, description="east wing")
        assert DeploymentSpec.from_dict(original.to_dict()) == original

    def test_reader_names_follow_scene_convention(self):
        assert spec(num_readers=3).reader_names == (
            "reader-0",
            "reader-1",
            "reader-2",
        )

    def test_invalid_reader_count_rejected(self):
        with pytest.raises(ConfigurationError, match="num_readers"):
            spec(num_readers=9)

    def test_unknown_environment_rejected(self):
        with pytest.raises(ConfigurationError, match="environment"):
            spec(environment="submarine")

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(RegistryError):
            DeploymentSpec.from_dict({"deployment_id": "x", "seed": "yes"})


class TestRegistry:
    def test_register_and_lookup(self):
        registry = DeploymentRegistry()
        registry.register(spec("dep-a"))
        registry.register(spec("dep-b", num_readers=2))
        assert registry.deployment_ids() == ["dep-a", "dep-b"]
        assert "dep-a" in registry
        assert len(registry) == 2
        assert registry.spec("dep-b").num_readers == 2

    def test_duplicate_registration_rejected(self):
        registry = DeploymentRegistry()
        registry.register(spec("dep-a"))
        with pytest.raises(RegistryError, match="already registered"):
            registry.register(spec("dep-a"))

    def test_unknown_deployment_rejected(self):
        with pytest.raises(RegistryError, match="unknown deployment"):
            DeploymentRegistry().spec("ghost")

    def test_legal_lifecycle_transitions(self):
        registry = DeploymentRegistry()
        registry.register(spec("dep-a"))
        for state in ("starting", "live", "draining", "stopped"):
            registry.set_state("dep-a", state)
        assert registry.state_of("dep-a") == "stopped"

    def test_illegal_transition_rejected(self):
        registry = DeploymentRegistry()
        registry.register(spec("dep-a"))
        with pytest.raises(RegistryError, match="illegal shard transition"):
            registry.set_state("dep-a", "draining")

    def test_failed_to_starting_counts_a_restart(self):
        registry = DeploymentRegistry()
        registry.register(spec("dep-a"))
        registry.set_state("dep-a", "starting")
        registry.set_state("dep-a", "failed", error="boom")
        snapshot = registry.snapshot()["dep-a"]
        assert snapshot["state"] == "failed"
        assert snapshot["last_error"] == "boom"
        registry.set_state("dep-a", "starting")
        assert registry.snapshot()["dep-a"]["restarts"] == 1


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        registry = DeploymentRegistry()
        registry.register(spec("dep-a", num_readers=2))
        registry.register(spec("dep-b", num_readers=4, seed=99))
        registry.set_state("dep-a", "starting")
        registry.set_state("dep-a", "live")
        registry.set_state("dep-b", "starting")
        registry.set_state("dep-b", "failed", error="crashed")
        path = tmp_path / "registry.json"
        registry.save(path)

        loaded = DeploymentRegistry.load(path)
        assert loaded.deployment_ids() == ["dep-a", "dep-b"]
        assert loaded.spec("dep-b").seed == 99
        # Runtime states do not survive a restart -- except failed,
        # which an operator must explicitly clear.
        assert loaded.state_of("dep-a") == "stopped"
        assert loaded.state_of("dep-b") == "failed"

    def test_document_is_versioned(self, tmp_path):
        registry = DeploymentRegistry()
        registry.register(spec("dep-a"))
        document = registry.to_document()
        assert document["kind"] == REGISTRY_KIND
        assert document["schema"] == REGISTRY_SCHEMA

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"kind": "dwatch-reads", "schema": 1}))
        with pytest.raises(RegistryError, match="kind"):
            DeploymentRegistry.load(path)

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(
            json.dumps(
                {"kind": REGISTRY_KIND, "schema": 99, "deployments": []}
            )
        )
        with pytest.raises(RegistryError, match="schema"):
            DeploymentRegistry.load(path)


class TestDefaultFleet:
    def test_fleet_shape(self):
        fleet = default_fleet(8)
        assert len(fleet) == 8
        assert len({spec.deployment_id for spec in fleet}) == 8
        # Rosters differ in size so cross-shard leakage cannot hide
        # behind identical reader names.
        assert len({spec.num_readers for spec in fleet}) > 1
        assert len({spec.seed for spec in fleet}) == 8


class TestForwardCompat:
    """Registry files written by newer builds must load, not crash."""

    def _document_with_state(self, state):
        registry = DeploymentRegistry()
        registry.register(spec("dep-a"))
        document = registry.to_document()
        document["deployments"][0]["state"] = state
        return document

    def test_unknown_shard_state_maps_to_failed(self):
        loaded = DeploymentRegistry.from_document(
            self._document_with_state("hibernating")
        )
        assert loaded.state_of("dep-a") == "failed"
        note = loaded.snapshot()["dep-a"]["last_error"]
        assert "hibernating" in note

    def test_known_states_still_load_exactly(self):
        loaded = DeploymentRegistry.from_document(
            self._document_with_state("failed")
        )
        assert loaded.state_of("dep-a") == "failed"

    def test_unknown_state_does_not_poison_the_fleet(self):
        document = self._document_with_state("hibernating")
        document["deployments"].append(
            {"spec": spec("dep-b").to_dict(), "state": "stopped"}
        )
        loaded = DeploymentRegistry.from_document(document)
        assert loaded.state_of("dep-b") == "stopped"
        # And the quarantined deployment can be recovered like any
        # failed one: an operator restart walks failed -> starting.
        loaded.set_state("dep-a", "starting")
        assert loaded.state_of("dep-a") == "starting"
