"""Tests for repro.core.likelihood."""

import math

import numpy as np
import pytest

from repro.core.detector import BlockedPath, _evidence_from_events
from repro.core.likelihood import LikelihoodMap
from repro.dsp.spectrum import default_angle_grid
from repro.errors import LocalizationError
from repro.geometry.point import Point
from repro.geometry.shapes import Rectangle
from repro.rf.array import UniformLinearArray
from repro.rfid.reader import Reader


ROOM = Rectangle(0.0, 0.0, 6.0, 6.0)


def make_reader(name, midpoint, orientation):
    probe = UniformLinearArray(reference=midpoint, orientation=orientation)
    half = (probe.num_antennas - 1) * probe.spacing_m / 2.0
    array = UniformLinearArray(
        reference=midpoint - probe.axis * half,
        orientation=orientation,
        num_antennas=8,
        name=name,
    )
    return Reader(array=array, name=name, rng=1)


@pytest.fixture
def readers():
    south = make_reader("south", Point(3.0, 0.05), 0.0)
    west = make_reader("west", Point(0.05, 3.0), math.pi / 2.0)
    return {"south": south, "west": west}


def evidence_for_target(readers, target, drop=1.0):
    items = []
    grid = default_angle_grid()
    for name, reader in readers.items():
        angle = reader.array.angle_to(target)
        event = BlockedPath(
            reader_name=name,
            epc="E" * 24,
            angle=angle,
            relative_drop=drop,
            baseline_power=1.0,
            online_power=1.0 - drop,
        )
        items.append(_evidence_from_events(name, [event], grid))
    return items


class TestEvaluate:
    def test_peak_near_true_target(self, readers):
        target = Point(2.0, 4.0)
        lmap = LikelihoodMap(room=ROOM, readers=readers, cell_size=0.05)
        xs, ys, likelihood = lmap.evaluate(evidence_for_target(readers, target))
        iy, ix = np.unravel_index(np.argmax(likelihood), likelihood.shape)
        peak = Point(float(xs[ix]), float(ys[iy]))
        assert peak.distance_to(target) < 0.25

    def test_no_detection_yields_zero_surface(self, readers):
        lmap = LikelihoodMap(room=ROOM, readers=readers)
        empty = [_evidence_from_events("south", [], default_angle_grid())]
        _, _, likelihood = lmap.evaluate(empty)
        assert np.all(likelihood == 0.0)


class TestBestEstimate:
    def test_refined_estimate_close(self, readers):
        target = Point(4.2, 2.7)
        lmap = LikelihoodMap(room=ROOM, readers=readers, cell_size=0.05)
        estimate = lmap.best_estimate(evidence_for_target(readers, target))
        assert estimate.position.distance_to(target) < 0.2
        assert estimate.likelihood > 0.0
        assert set(estimate.per_reader_angles) == {"south", "west"}

    def test_no_evidence_raises(self, readers):
        lmap = LikelihoodMap(room=ROOM, readers=readers)
        with pytest.raises(LocalizationError):
            lmap.best_estimate(
                [_evidence_from_events("south", [], default_angle_grid())]
            )

    def test_unknown_reader_rejected(self, readers):
        lmap = LikelihoodMap(room=ROOM, readers=readers)
        target = Point(3.0, 3.0)
        items = evidence_for_target(readers, target)
        items[0].reader_name = "mystery"
        with pytest.raises(LocalizationError):
            lmap.best_estimate(items)


class TestTopModes:
    def test_two_targets_two_modes(self, readers):
        lmap = LikelihoodMap(room=ROOM, readers=readers, cell_size=0.05)
        target_a, target_b = Point(1.5, 4.5), Point(4.5, 1.5)
        combined = []
        for item_a, item_b in zip(
            evidence_for_target(readers, target_a),
            evidence_for_target(readers, target_b),
        ):
            merged = _evidence_from_events(
                item_a.reader_name,
                item_a.events + item_b.events,
                item_a.drop.angles,
            )
            combined.append(merged)
        modes = lmap.top_modes(combined, max_modes=6, min_separation=0.5)
        hits = 0
        for target in (target_a, target_b):
            if any(m.position.distance_to(target) < 0.4 for m in modes):
                hits += 1
        assert hits == 2

    def test_mode_count_bounded(self, readers):
        lmap = LikelihoodMap(room=ROOM, readers=readers)
        target = Point(3.0, 3.0)
        modes = lmap.top_modes(
            evidence_for_target(readers, target), max_modes=3
        )
        assert len(modes) <= 3


class TestRayIntersections:
    def test_true_position_among_intersections(self, readers):
        target = Point(2.4, 3.6)
        lmap = LikelihoodMap(room=ROOM, readers=readers)
        crossings = lmap.ray_intersections(evidence_for_target(readers, target))
        assert any(c.distance_to(target) < 0.15 for c in crossings)

    def test_no_intersections_without_detection(self, readers):
        lmap = LikelihoodMap(room=ROOM, readers=readers)
        empty = [_evidence_from_events("south", [], default_angle_grid())]
        assert lmap.ray_intersections(empty) == []

    def test_duplicate_events_do_not_change_candidates(self, readers):
        # The ray dedupe keys on (reader, quantized bearing): repeating
        # the same blocked angle must not inflate the candidate set or
        # shift any crossing.
        target = Point(2.4, 3.6)
        lmap = LikelihoodMap(room=ROOM, readers=readers)
        unique = evidence_for_target(readers, target)
        grid = default_angle_grid()
        duplicated = [
            _evidence_from_events(item.reader_name, list(item.events) * 3, grid)
            for item in unique
        ]
        got = lmap.ray_intersections(duplicated)
        want = lmap.ray_intersections(unique)
        assert len(got) == len(want)
        for a, b in zip(got, want):
            assert a.distance_to(b) == 0.0

    def test_ray_cap_keeps_true_target_candidate(self, readers):
        # Flood one reader with distinct ghost angles so the ray list
        # crosses _MAX_RAYS; the true-target crossing from the leading
        # events must survive the cap.
        target = Point(2.4, 3.6)
        lmap = LikelihoodMap(room=ROOM, readers=readers)
        grid = default_angle_grid()

        def event(name, angle):
            return BlockedPath(
                reader_name=name,
                epc="E" * 24,
                angle=angle,
                relative_drop=1.0,
                baseline_power=1.0,
                online_power=0.0,
            )

        # True detections first, then a flood of distinct ghost angles
        # on one reader that pushes the ray count past _MAX_RAYS.
        items = [
            _evidence_from_events(
                name, [event(name, reader.array.angle_to(target))], grid
            )
            for name, reader in readers.items()
        ]
        ghosts = [
            event("south", 0.2 + 0.01 * k)
            for k in range(lmap._MAX_RAYS)
        ]
        items.append(_evidence_from_events("south", ghosts, grid))
        crossings = lmap.ray_intersections(items)
        assert any(c.distance_to(target) < 0.15 for c in crossings)


class TestLikelihoodAt:
    def test_higher_at_target_than_elsewhere(self, readers):
        target = Point(2.0, 2.0)
        lmap = LikelihoodMap(room=ROOM, readers=readers)
        evidence = evidence_for_target(readers, target)
        at_target = lmap.likelihood_at(target, evidence)
        away = lmap.likelihood_at(Point(5.0, 5.0), evidence)
        assert at_target > away * 10.0
