"""StreamRunner end to end: fixes, preconditions, drift and CLI parity."""

import copy
import hashlib

import numpy as np
import pytest

from repro.core.baseline import SpectrumSet
from repro.core.pipeline import DWatch
from repro.dsp.spectrum import AngularSpectrum
from repro.errors import CalibrationError, ConfigurationError, LocalizationError
from repro.sim.environments import hall_scene
from repro.sim.measurement import MeasurementSession
from repro.stream import StreamConfig, StreamRunner
from repro.stream.drift import BaselineDriftTracker
from repro.stream.synthetic import (
    SyntheticStreamConfig,
    synthetic_reads,
    target_positions,
)


@pytest.fixture(scope="module")
def tracking():
    """A small calibrated, baselined hall deployment shared by the module."""
    scene = hall_scene(rng=5, num_tags=8, num_antennas=6)
    dwatch = DWatch(scene, cell_size=0.1)
    dwatch.calibrate(rng=6)
    session = MeasurementSession(scene, rng=7)
    dwatch.collect_baseline([session.capture() for _ in range(2)])
    return scene, dwatch


class TestEndToEnd:
    def test_static_target_is_tracked_in_every_window(self, tracking):
        scene, dwatch = tracking
        config = SyntheticStreamConfig(fixes=3, moving=False)
        runner = StreamRunner(dwatch)
        fixes = list(
            runner.run(synthetic_reads(scene, config, rng=8))
        )
        assert [fix.index for fix in fixes] == [0, 1, 2]
        assert runner.fixes_emitted == 3
        assert all(fix.sweeps == config.sweeps_per_fix for fix in fixes)
        located = [fix for fix in fixes if fix.position is not None]
        assert located, "a static target in coverage must be found"
        truth = target_positions(scene, config)[0]
        for fix in located:
            error = float(np.hypot(fix.position.x - truth.x, fix.position.y - truth.y))
            assert error < 1.5

    def test_ingest_poll_finish_equals_run(self, tracking):
        scene, dwatch = tracking
        config = SyntheticStreamConfig(fixes=2, moving=False)
        reads = list(synthetic_reads(scene, config, rng=8))

        via_run = list(StreamRunner(dwatch).run(iter(reads)))

        runner = StreamRunner(dwatch)
        via_calls = []
        for read in reads:
            assert runner.ingest(read)
            via_calls.extend(runner.poll())
        via_calls.extend(runner.finish())

        assert len(via_calls) == len(via_run)
        for a, b in zip(via_calls, via_run):
            assert a.index == b.index
            assert a.position == b.position
            assert a.predicted_only == b.predicted_only


class TestPreconditions:
    def test_uncalibrated_pipeline_is_rejected(self, tracking):
        scene, _ = tracking
        bare = DWatch(scene, cell_size=0.1)
        with pytest.raises(CalibrationError, match="calibrat"):
            StreamRunner(bare)

    def test_missing_baseline_is_rejected(self, tracking):
        scene, dwatch = tracking
        calibrated = DWatch(scene, cell_size=0.1)
        calibrated.set_calibration(dwatch.calibration)
        with pytest.raises(LocalizationError, match="baseline"):
            StreamRunner(calibrated)

    def test_config_rejects_zero_targets(self):
        with pytest.raises(ConfigurationError):
            StreamConfig(max_targets=0)


def flat_set(level):
    """A one-reader, one-tag spectrum set at a constant ``level``."""
    angles = np.linspace(0.0, np.pi, 16)
    spectra = SpectrumSet()
    spectra.spectra["r"] = {
        "tag": AngularSpectrum(angles=angles, values=np.full(16, level))
    }
    return spectra


class TestDriftTracker:
    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            BaselineDriftTracker(alpha=-0.1)
        with pytest.raises(ConfigurationError):
            BaselineDriftTracker(alpha=1.0)

    def test_zero_alpha_disables_updates(self):
        tracker = BaselineDriftTracker(alpha=0.0)
        assert not tracker.enabled
        assert not tracker.update([flat_set(1.0)], flat_set(2.0), detecting=False)
        assert tracker.applied_updates == 0
        assert tracker.frozen_updates == 0

    def test_update_blends_toward_online(self):
        tracker = BaselineDriftTracker(alpha=0.25)
        baseline = [flat_set(1.0), flat_set(1.0)]
        assert tracker.update(baseline, flat_set(2.0), detecting=False)
        assert tracker.applied_updates == 1
        for spectrum_set in baseline:
            np.testing.assert_allclose(
                spectrum_set.spectra["r"]["tag"].values, 1.25
            )

    def test_detection_freezes_the_update(self):
        tracker = BaselineDriftTracker(alpha=0.25)
        baseline = [flat_set(1.0)]
        assert not tracker.update(baseline, flat_set(2.0), detecting=True)
        assert tracker.frozen_updates == 1
        assert tracker.applied_updates == 0
        np.testing.assert_allclose(baseline[0].spectra["r"]["tag"].values, 1.0)

    def test_missing_online_entries_are_skipped(self):
        tracker = BaselineDriftTracker(alpha=0.5)
        baseline = [flat_set(1.0)]
        empty = SpectrumSet()
        assert tracker.update(baseline, empty, detecting=False)
        np.testing.assert_allclose(baseline[0].spectra["r"]["tag"].values, 1.0)

    def test_runner_routes_every_window_through_the_tracker(self, tracking):
        scene, dwatch = tracking
        # Deep copy: drift mutates the baseline, and the fixture is shared.
        isolated = copy.deepcopy(dwatch)
        runner = StreamRunner(isolated, StreamConfig(drift_alpha=0.01))
        config = SyntheticStreamConfig(fixes=2, moving=False)
        fixes = list(runner.run(synthetic_reads(scene, config, rng=8)))
        drift = runner.drift
        assert drift.applied_updates + drift.frozen_updates == len(fixes)
        # A present target must freeze at least the windows that saw it.
        detected = [f for f in fixes if f.raw_estimates]
        assert drift.frozen_updates >= len(detected) > 0


class TestCliBitIdentity:
    """``repro stream`` output must not depend on observability flags."""

    @pytest.fixture(scope="class")
    def recording(self, tmp_path_factory):
        from repro.cli import main

        path = tmp_path_factory.mktemp("stream") / "hall.jsonl"
        assert (
            main(
                [
                    "--quiet",
                    "stream",
                    "--environment",
                    "hall",
                    "--seed",
                    "7",
                    "--fixes",
                    "2",
                    "--record",
                    str(path),
                ]
            )
            == 0
        )
        return path

    def replay_stdout(self, capsys, recording, extra):
        from repro.cli import main

        capsys.readouterr()  # discard anything pending
        code = main(
            ["--quiet", "stream", "--replay", str(recording), *extra]
        )
        assert code == 0
        return hashlib.sha256(capsys.readouterr().out.encode()).hexdigest()

    def test_stdout_hash_survives_trace_and_metrics(
        self, capsys, recording, tmp_path
    ):
        plain = self.replay_stdout(capsys, recording, [])
        observed = self.replay_stdout(
            capsys,
            recording,
            [
                "--trace",
                str(tmp_path / "trace.jsonl"),
                "--metrics",
                str(tmp_path / "metrics.jsonl"),
            ],
        )
        assert plain == observed
        assert (tmp_path / "trace.jsonl").exists()
        assert (tmp_path / "metrics.jsonl").exists()
