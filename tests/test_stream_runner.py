"""StreamRunner end to end: fixes, preconditions, drift and CLI parity."""

import copy
import hashlib

import numpy as np
import pytest

from repro import obs
from repro.core.baseline import SpectrumSet
from repro.core.pipeline import DWatch
from repro.dsp.spectrum import AngularSpectrum
from repro.errors import CalibrationError, ConfigurationError, LocalizationError
from repro.sim.environments import hall_scene
from repro.sim.measurement import MeasurementSession
from repro.stream import StreamConfig, StreamRunner
from repro.stream.drift import BaselineDriftTracker
from repro.stream.synthetic import (
    SyntheticStreamConfig,
    synthetic_reads,
    target_positions,
)
from repro.stream.window import WindowConfig


@pytest.fixture(scope="module")
def tracking():
    """A small calibrated, baselined hall deployment shared by the module."""
    scene = hall_scene(rng=5, num_tags=8, num_antennas=6)
    dwatch = DWatch(scene, cell_size=0.1)
    dwatch.calibrate(rng=6)
    session = MeasurementSession(scene, rng=7)
    dwatch.collect_baseline([session.capture() for _ in range(2)])
    return scene, dwatch


class TestEndToEnd:
    def test_static_target_is_tracked_in_every_window(self, tracking):
        scene, dwatch = tracking
        config = SyntheticStreamConfig(fixes=3, moving=False)
        runner = StreamRunner(dwatch)
        fixes = list(
            runner.run(synthetic_reads(scene, config, rng=8))
        )
        assert [fix.index for fix in fixes] == [0, 1, 2]
        assert runner.fixes_emitted == 3
        assert all(fix.sweeps == config.sweeps_per_fix for fix in fixes)
        located = [fix for fix in fixes if fix.position is not None]
        assert located, "a static target in coverage must be found"
        truth = target_positions(scene, config)[0]
        for fix in located:
            error = float(np.hypot(fix.position.x - truth.x, fix.position.y - truth.y))
            assert error < 1.5

    def test_ingest_poll_finish_equals_run(self, tracking):
        scene, dwatch = tracking
        config = SyntheticStreamConfig(fixes=2, moving=False)
        reads = list(synthetic_reads(scene, config, rng=8))

        via_run = list(StreamRunner(dwatch).run(iter(reads)))

        runner = StreamRunner(dwatch)
        via_calls = []
        for read in reads:
            assert runner.ingest(read)
            via_calls.extend(runner.poll())
        via_calls.extend(runner.finish())

        assert len(via_calls) == len(via_run)
        for a, b in zip(via_calls, via_run):
            assert a.index == b.index
            assert a.position == b.position
            assert a.predicted_only == b.predicted_only


class TestPreconditions:
    def test_uncalibrated_pipeline_is_rejected(self, tracking):
        scene, _ = tracking
        bare = DWatch(scene, cell_size=0.1)
        with pytest.raises(CalibrationError, match="calibrat"):
            StreamRunner(bare)

    def test_missing_baseline_is_rejected(self, tracking):
        scene, dwatch = tracking
        calibrated = DWatch(scene, cell_size=0.1)
        calibrated.set_calibration(dwatch.calibration)
        with pytest.raises(LocalizationError, match="baseline"):
            StreamRunner(calibrated)

    def test_config_rejects_zero_targets(self):
        with pytest.raises(ConfigurationError):
            StreamConfig(max_targets=0)


def flat_set(level):
    """A one-reader, one-tag spectrum set at a constant ``level``."""
    angles = np.linspace(0.0, np.pi, 16)
    spectra = SpectrumSet()
    spectra.spectra["r"] = {
        "tag": AngularSpectrum(angles=angles, values=np.full(16, level))
    }
    return spectra


class TestDriftTracker:
    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            BaselineDriftTracker(alpha=-0.1)
        with pytest.raises(ConfigurationError):
            BaselineDriftTracker(alpha=1.0)

    def test_zero_alpha_disables_updates(self):
        tracker = BaselineDriftTracker(alpha=0.0)
        assert not tracker.enabled
        assert not tracker.update([flat_set(1.0)], flat_set(2.0), detecting=False)
        assert tracker.applied_updates == 0
        assert tracker.frozen_updates == 0

    def test_update_blends_toward_online(self):
        tracker = BaselineDriftTracker(alpha=0.25)
        baseline = [flat_set(1.0), flat_set(1.0)]
        assert tracker.update(baseline, flat_set(2.0), detecting=False)
        assert tracker.applied_updates == 1
        for spectrum_set in baseline:
            np.testing.assert_allclose(
                spectrum_set.spectra["r"]["tag"].values, 1.25
            )

    def test_detection_freezes_the_update(self):
        tracker = BaselineDriftTracker(alpha=0.25)
        baseline = [flat_set(1.0)]
        assert not tracker.update(baseline, flat_set(2.0), detecting=True)
        assert tracker.frozen_updates == 1
        assert tracker.applied_updates == 0
        np.testing.assert_allclose(baseline[0].spectra["r"]["tag"].values, 1.0)

    def test_missing_online_entries_are_skipped(self):
        tracker = BaselineDriftTracker(alpha=0.5)
        baseline = [flat_set(1.0)]
        empty = SpectrumSet()
        assert tracker.update(baseline, empty, detecting=False)
        np.testing.assert_allclose(baseline[0].spectra["r"]["tag"].values, 1.0)

    def test_runner_routes_every_window_through_the_tracker(self, tracking):
        scene, dwatch = tracking
        # Deep copy: drift mutates the baseline, and the fixture is shared.
        isolated = copy.deepcopy(dwatch)
        runner = StreamRunner(isolated, StreamConfig(drift_alpha=0.01))
        config = SyntheticStreamConfig(fixes=2, moving=False)
        fixes = list(runner.run(synthetic_reads(scene, config, rng=8)))
        drift = runner.drift
        assert drift.applied_updates + drift.frozen_updates == len(fixes)
        # A present target must freeze at least the windows that saw it.
        detected = [f for f in fixes if f.raw_estimates]
        assert drift.frozen_updates >= len(detected) > 0


class TestCliBitIdentity:
    """``repro stream`` output must not depend on observability flags."""

    @pytest.fixture(scope="class")
    def recording(self, tmp_path_factory):
        from repro.cli import main

        path = tmp_path_factory.mktemp("stream") / "hall.jsonl"
        assert (
            main(
                [
                    "--quiet",
                    "stream",
                    "--environment",
                    "hall",
                    "--seed",
                    "7",
                    "--fixes",
                    "2",
                    "--record",
                    str(path),
                ]
            )
            == 0
        )
        return path

    def replay_stdout(self, capsys, recording, extra):
        from repro.cli import main

        capsys.readouterr()  # discard anything pending
        code = main(
            ["--quiet", "stream", "--replay", str(recording), *extra]
        )
        assert code == 0
        return hashlib.sha256(capsys.readouterr().out.encode()).hexdigest()

    def test_stdout_hash_survives_trace_and_metrics(
        self, capsys, recording, tmp_path
    ):
        plain = self.replay_stdout(capsys, recording, [])
        observed = self.replay_stdout(
            capsys,
            recording,
            [
                "--trace",
                str(tmp_path / "trace.jsonl"),
                "--metrics",
                str(tmp_path / "metrics.jsonl"),
            ],
        )
        assert plain == observed
        assert (tmp_path / "trace.jsonl").exists()
        assert (tmp_path / "metrics.jsonl").exists()


@pytest.fixture(scope="module")
def tiny_tracking():
    """A 3-antenna deployment: smoothing is the identity, so the rank-1
    eigen-update path is *eligible* (unlike the 6-antenna fixture)."""
    scene = hall_scene(rng=11, num_tags=4, num_antennas=3)
    dwatch = DWatch(scene, cell_size=0.1)
    dwatch.calibrate(rng=12)
    session = MeasurementSession(scene, rng=13)
    dwatch.collect_baseline([session.capture() for _ in range(2)])
    return scene, dwatch


def single_sweep_stream(scene, incremental=True):
    """Reads + runner config producing one-column folds per window."""
    config = SyntheticStreamConfig(fixes=6, moving=False, sweeps_per_fix=1)
    stream_config = StreamConfig(
        window=WindowConfig(sweeps_per_window=1), incremental=incremental
    )
    return config, stream_config


class TestIncrementalPath:
    def test_untouched_pair_is_served_from_the_cache(self, tracking):
        scene, dwatch = tracking
        runner = StreamRunner(dwatch)
        config = SyntheticStreamConfig(fixes=2, moving=False)
        list(runner.run(synthetic_reads(scene, config, rng=8)))
        reader_name, epc = next(iter(runner.bank._pairs))
        revision_before = runner.bank.pair_if_tracked(reader_name, epc).revision
        with obs.observed() as state:
            first = runner.pair_spectrum(reader_name, epc)
            second = runner.pair_spectrum(reader_name, epc)
            skipped = state.registry.counter("dsp.incremental.skipped")
            # Both polls hit the revision-keyed cache: the pair's
            # covariance never changed, so nothing recomputes.
            assert skipped.value == 2.0
        assert runner.bank.pair_if_tracked(reader_name, epc).revision == (
            revision_before
        )
        np.testing.assert_array_equal(first.values, second.values)

    def test_disabled_incremental_has_no_cache(self, tracking):
        scene, dwatch = tracking
        runner = StreamRunner(dwatch, StreamConfig(incremental=False))
        assert runner.spectra_cache is None
        config = SyntheticStreamConfig(fixes=1, moving=False)
        list(runner.run(synthetic_reads(scene, config, rng=8)))
        reader_name, epc = next(iter(runner.bank._pairs))
        with obs.observed() as state:
            runner.pair_spectrum(reader_name, epc)
            skipped = state.registry.counter("dsp.incremental.skipped")
            assert skipped.value == 0.0

    def test_rank_one_update_fires_on_single_sweep_windows(self, tiny_tracking):
        scene, dwatch = tiny_tracking
        config, stream_config = single_sweep_stream(scene)
        with obs.observed() as state:
            runner = StreamRunner(dwatch, stream_config)
            fixes = list(runner.run(synthetic_reads(scene, config, rng=14)))
            updates = state.registry.counter("dsp.incremental.updates")
            assert updates.value > 0.0
        assert len(fixes) == config.fixes

        full = StreamRunner(
            dwatch,
            StreamConfig(
                window=WindowConfig(sweeps_per_window=1), incremental=False
            ),
        )
        reference = list(full.run(synthetic_reads(scene, config, rng=14)))
        assert len(reference) == len(fixes)
        for a, b in zip(fixes, reference):
            assert a.position == b.position
            assert a.predicted_only == b.predicted_only
        # The exactness gate keeps incrementally-updated spectra within
        # the drift tolerance of a full recompute.
        for reader_name, epc in runner.bank._pairs:
            incremental = runner.pair_spectrum(reader_name, epc)
            recomputed = full.pair_spectrum(reader_name, epc)
            np.testing.assert_allclose(
                incremental.values, recomputed.values, rtol=1e-6, atol=1e-10
            )

    def test_forced_drift_rejects_every_update(self, tiny_tracking):
        scene, dwatch = tiny_tracking
        config, stream_config = single_sweep_stream(scene)
        with obs.observed() as state:
            runner = StreamRunner(dwatch, stream_config)
            runner.drift_tolerance = 0.0
            fixes = list(runner.run(synthetic_reads(scene, config, rng=14)))
            fallbacks = state.registry.counter("dsp.incremental.fallbacks")
            updates = state.registry.counter("dsp.incremental.updates")
            # Zero tolerance: every proposed rank-1 factorization fails
            # the gate and falls back to the exact full recompute.
            assert fallbacks.value > 0.0
            assert updates.value == 0.0
        full = StreamRunner(
            dwatch,
            StreamConfig(
                window=WindowConfig(sweeps_per_window=1), incremental=False
            ),
        )
        reference = list(full.run(synthetic_reads(scene, config, rng=14)))
        for a, b in zip(fixes, reference):
            assert a.position == b.position

    def test_multi_sweep_stream_is_identical_with_toggle(self, tracking):
        # Default windows fold many columns at once: the rank-1 branch
        # never engages and the cache only ever returns spectra a full
        # recompute just produced — output must be bit-identical.
        scene, dwatch = tracking
        config = SyntheticStreamConfig(fixes=3, moving=False)
        on = list(
            StreamRunner(dwatch, StreamConfig(incremental=True)).run(
                synthetic_reads(scene, config, rng=8)
            )
        )
        off = list(
            StreamRunner(dwatch, StreamConfig(incremental=False)).run(
                synthetic_reads(scene, config, rng=8)
            )
        )
        assert len(on) == len(off) == config.fixes
        for a, b in zip(on, off):
            assert a.position == b.position
            assert a.predicted_only == b.predicted_only
            assert a.raw_estimates == b.raw_estimates
