"""Tests for repro.core.presence."""

import pytest

from repro.core.detector import BlockedPath, _evidence_from_events
from repro.core.presence import (
    PresenceDetector,
    auc,
    presence_score,
    roc_curve,
)
from repro.dsp.spectrum import default_angle_grid
from repro.errors import ConfigurationError


def make_evidence(drops, reader="r"):
    grid = default_angle_grid()
    events = [
        BlockedPath(
            reader_name=reader,
            epc="E" * 24,
            angle=1.0 + 0.1 * i,
            relative_drop=drop,
            baseline_power=1.0,
            online_power=1.0 - drop,
        )
        for i, drop in enumerate(drops)
    ]
    return _evidence_from_events(reader, events, grid)


class TestPresenceScore:
    def test_zero_when_quiet(self):
        assert presence_score([make_evidence([])]) == 0.0

    def test_sums_weights(self):
        evidence = [make_evidence([0.9, 0.8])]
        assert presence_score(evidence) == pytest.approx(1.7)

    def test_across_readers(self):
        evidence = [make_evidence([0.9], "a"), make_evidence([0.7], "b")]
        assert presence_score(evidence) == pytest.approx(1.6)


class TestPresenceDetector:
    def test_detects_strong_block(self):
        detector = PresenceDetector(threshold=0.75)
        assert detector.detect([make_evidence([0.95])])

    def test_quiet_area_silent(self):
        detector = PresenceDetector()
        assert not detector.detect([make_evidence([])])

    def test_threshold_respected(self):
        detector = PresenceDetector(threshold=2.0)
        assert not detector.detect([make_evidence([0.9])])
        assert detector.detect([make_evidence([0.9, 0.8, 0.7])])

    def test_min_readers(self):
        detector = PresenceDetector(threshold=0.5, min_readers=2)
        assert not detector.detect([make_evidence([0.9], "a")])
        assert detector.detect(
            [make_evidence([0.9], "a"), make_evidence([0.9], "b")]
        )

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            PresenceDetector(threshold=0.0)
        with pytest.raises(ConfigurationError):
            PresenceDetector(min_readers=0)


class TestRoc:
    def test_separable_classes_perfect_auc(self):
        points = roc_curve([5.0, 6.0, 7.0], [0.0, 0.1, 0.2])
        assert auc(points) == pytest.approx(1.0, abs=0.02)

    def test_identical_classes_chance_auc(self, rng):
        scores = list(rng.random(200))
        points = roc_curve(scores, scores)
        assert auc(points) == pytest.approx(0.5, abs=0.05)

    def test_rates_monotone_in_threshold(self):
        points = roc_curve([1.0, 2.0, 3.0], [0.5, 1.5, 2.5], num_thresholds=10)
        thresholds = [p.threshold for p in points]
        tprs = [p.true_positive_rate for p in points]
        assert thresholds == sorted(thresholds)
        assert tprs == sorted(tprs, reverse=True)

    def test_empty_class_rejected(self):
        with pytest.raises(ConfigurationError):
            roc_curve([], [1.0])

    def test_auc_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            auc([])
