"""Checkpoint/restore: format validation and faithful state transfer."""

import json

import pytest

from repro.core.pipeline import DWatch
from repro.errors import CheckpointError
from repro.sim.environments import hall_scene
from repro.sim.measurement import MeasurementSession
from repro.stream import (
    CHECKPOINT_KIND,
    CHECKPOINT_SCHEMA,
    INTEGRITY_KEY,
    QUARANTINE_SUFFIX,
    StreamRunner,
    checkpoint_history_dir,
    checkpoint_id,
    checkpoint_state,
    durable_write_json,
    load_checkpoint,
    quarantine_checkpoint,
    restore_state,
    save_checkpoint,
    seal_state,
)
from repro.stream.synthetic import SyntheticStreamConfig, synthetic_reads


@pytest.fixture(scope="module")
def tracking():
    scene = hall_scene(rng=5, num_tags=8, num_antennas=6)
    dwatch = DWatch(scene, cell_size=0.1)
    dwatch.calibrate(rng=6)
    session = MeasurementSession(scene, rng=7)
    dwatch.collect_baseline([session.capture() for _ in range(2)])
    return scene, dwatch


def mid_run_state(scene, dwatch, fixes=3):
    """Run half a stream, checkpoint, and hand back the leftovers."""
    config = SyntheticStreamConfig(fixes=fixes, moving=False)
    reads = list(synthetic_reads(scene, config, rng=8))
    half = len(reads) // 2
    runner = StreamRunner(dwatch)
    consumed = []
    for read in reads[:half]:
        runner.ingest(read)
        consumed.extend(runner.poll())
    return runner, checkpoint_state(runner), reads[half:], consumed


class TestFormat:
    def test_header_identifies_the_format(self, tracking):
        scene, dwatch = tracking
        _, state, _, _ = mid_run_state(scene, dwatch)
        assert state["kind"] == CHECKPOINT_KIND
        assert state["schema"] == CHECKPOINT_SCHEMA
        assert state["fingerprint"]["readers"] == sorted(
            r.name for r in scene.readers
        )

    def test_state_is_json_round_trippable(self, tracking):
        scene, dwatch = tracking
        _, state, _, _ = mid_run_state(scene, dwatch)
        clone = json.loads(json.dumps(state))
        assert clone == state

    def test_wrong_kind_is_rejected(self, tracking):
        scene, dwatch = tracking
        runner, state, _, _ = mid_run_state(scene, dwatch)
        state["kind"] = "pickle-of-doom"
        with pytest.raises(CheckpointError, match="dwatch-checkpoint"):
            restore_state(StreamRunner(dwatch), state)

    def test_wrong_schema_is_rejected(self, tracking):
        scene, dwatch = tracking
        _, state, _, _ = mid_run_state(scene, dwatch)
        state["schema"] = CHECKPOINT_SCHEMA + 1
        with pytest.raises(CheckpointError, match="schema"):
            restore_state(StreamRunner(dwatch), state)

    def test_fingerprint_mismatch_is_rejected(self, tracking):
        scene, dwatch = tracking
        _, state, _, _ = mid_run_state(scene, dwatch)
        state["fingerprint"]["readers"] = ["somebody", "else"]
        with pytest.raises(CheckpointError, match="fingerprint"):
            restore_state(StreamRunner(dwatch), state)

    def test_malformed_body_is_rejected(self, tracking):
        scene, dwatch = tracking
        _, state, _, _ = mid_run_state(scene, dwatch)
        state["bank"] = [{"nonsense": True}]
        with pytest.raises(CheckpointError, match="malformed"):
            restore_state(StreamRunner(dwatch), state)


class TestRestore:
    def test_resumed_runner_matches_uninterrupted_run(self, tracking):
        scene, dwatch = tracking
        config = SyntheticStreamConfig(fixes=3, moving=False)
        reads = list(synthetic_reads(scene, config, rng=8))

        straight = StreamRunner(dwatch)
        expected = list(straight.run(iter(reads)))

        runner, state, rest, head = mid_run_state(scene, dwatch)
        resumed = StreamRunner(dwatch)
        restore_state(resumed, state)
        tail = []
        for read in rest:
            resumed.ingest(read)
            tail.extend(resumed.poll())
        tail.extend(resumed.finish())

        combined = head + tail
        assert len(combined) == len(expected)
        for a, b in zip(combined, expected):
            assert a.index == b.index
            assert a.time_s == b.time_s
            assert a.position == b.position
            assert a.predicted_only == b.predicted_only
            assert a.quality == b.quality

    def test_checkpoint_of_restored_runner_is_bit_identical(self, tracking):
        # Bit-identical except for lineage, which deliberately grows by
        # exactly the restored checkpoint's id — the audit trail of the
        # resume itself.
        scene, dwatch = tracking
        _, state, _, _ = mid_run_state(scene, dwatch)
        resumed = StreamRunner(dwatch)
        restore_state(resumed, state)
        again = checkpoint_state(resumed)
        assert again["lineage"] == state["lineage"] + [checkpoint_id(state)]
        stripped = {k: v for k, v in again.items() if k != "lineage"}
        original = {k: v for k, v in state.items() if k != "lineage"}
        assert json.dumps(stripped, sort_keys=True) == json.dumps(
            original, sort_keys=True
        )

    def test_lineage_chains_across_repeated_restores(self, tracking):
        scene, dwatch = tracking
        _, state, _, _ = mid_run_state(scene, dwatch)
        first = StreamRunner(dwatch)
        restore_state(first, state)
        second_state = checkpoint_state(first)
        second = StreamRunner(dwatch)
        restore_state(second, second_state)
        assert second.lineage == [
            checkpoint_id(state),
            checkpoint_id(second_state),
        ]

    def test_pre_lineage_checkpoints_still_restore(self, tracking):
        scene, dwatch = tracking
        _, state, _, _ = mid_run_state(scene, dwatch)
        legacy = {k: v for k, v in state.items() if k != "lineage"}
        resumed = StreamRunner(dwatch)
        restore_state(resumed, legacy)
        assert resumed.lineage == [checkpoint_id(legacy)]


class TestFiles:
    def test_save_load_round_trip(self, tracking, tmp_path):
        scene, dwatch = tracking
        runner, state, _, _ = mid_run_state(scene, dwatch)
        path = tmp_path / "run.ckpt.json"
        save_checkpoint(path, runner)
        assert load_checkpoint(path) == state

    def test_missing_file_raises_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="open"):
            load_checkpoint(tmp_path / "absent.json")

    def test_garbage_file_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("not json {")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_non_object_payload_raises(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(CheckpointError, match="object"):
            load_checkpoint(path)


class TestIntegrity:
    def test_saved_files_carry_an_integrity_digest(
        self, tracking, tmp_path
    ):
        scene, dwatch = tracking
        runner, state, _, _ = mid_run_state(scene, dwatch)
        path = tmp_path / "run.ckpt.json"
        save_checkpoint(path, runner)
        raw = json.loads(path.read_text())
        assert raw[INTEGRITY_KEY] == checkpoint_id(state)

    def test_digest_excluded_from_checkpoint_id(self, tracking):
        scene, dwatch = tracking
        _, state, _, _ = mid_run_state(scene, dwatch)
        assert checkpoint_id(seal_state(state)) == checkpoint_id(state)

    def test_bit_flip_is_caught_on_load(self, tracking, tmp_path):
        scene, dwatch = tracking
        runner, _, _, _ = mid_run_state(scene, dwatch)
        path = tmp_path / "run.ckpt.json"
        save_checkpoint(path, runner)
        raw = json.loads(path.read_text())
        raw["fixes_emitted"] = int(raw["fixes_emitted"]) + 1
        path.write_text(json.dumps(raw, sort_keys=True))
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(path)

    def test_verify_false_loads_a_tampered_file(self, tracking, tmp_path):
        scene, dwatch = tracking
        runner, _, _, _ = mid_run_state(scene, dwatch)
        path = tmp_path / "run.ckpt.json"
        save_checkpoint(path, runner)
        raw = json.loads(path.read_text())
        raw["fixes_emitted"] = int(raw["fixes_emitted"]) + 1
        path.write_text(json.dumps(raw, sort_keys=True))
        loaded = load_checkpoint(path, verify=False)
        assert INTEGRITY_KEY not in loaded

    def test_legacy_files_without_digest_load(self, tracking, tmp_path):
        scene, dwatch = tracking
        _, state, _, _ = mid_run_state(scene, dwatch)
        path = tmp_path / "legacy.ckpt.json"
        path.write_text(json.dumps(state, sort_keys=True))
        assert load_checkpoint(path) == state


class TestQuarantine:
    def test_quarantine_renames_never_deletes(self, tmp_path):
        path = tmp_path / "dep.ckpt.json"
        path.write_text("broken {")
        moved = quarantine_checkpoint(path)
        assert not path.exists()
        assert moved == tmp_path / ("dep.ckpt.json" + QUARANTINE_SUFFIX)
        assert moved.read_text() == "broken {"

    def test_repeat_quarantine_keeps_every_specimen(self, tmp_path):
        path = tmp_path / "dep.ckpt.json"
        path.write_text("first")
        first = quarantine_checkpoint(path)
        path.write_text("second")
        second = quarantine_checkpoint(path)
        assert first != second
        assert first.read_text() == "first"
        assert second.read_text() == "second"

    def test_quarantining_a_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="quarantine"):
            quarantine_checkpoint(tmp_path / "absent.json")


class TestDurableWrite:
    def test_no_temp_sibling_left_behind(self, tmp_path):
        path = tmp_path / "doc.json"
        durable_write_json(path, {"a": 1})
        assert json.loads(path.read_text()) == {"a": 1}
        assert list(tmp_path.iterdir()) == [path]

    def test_replaces_existing_file_atomically(self, tmp_path):
        path = tmp_path / "doc.json"
        durable_write_json(path, {"v": 1})
        durable_write_json(path, {"v": 2})
        assert json.loads(path.read_text()) == {"v": 2}

    def test_history_dir_is_a_sibling(self, tmp_path):
        path = tmp_path / "dep-00.ckpt.json"
        assert checkpoint_history_dir(path) == tmp_path / (
            "dep-00.ckpt.json.history"
        )
