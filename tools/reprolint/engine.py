"""Core machinery of reprolint: findings, suppressions, file walking.

The engine is rule-agnostic.  It parses every source file, collects the
``# reprolint: disable=...`` escape hatches from the token stream, runs
the AST checkers from :mod:`tools.reprolint.rules`, and filters the raw
findings through the suppressions.

Since the concurrency rule family (RL007-RL010) the engine is
**two-pass**: :func:`lint_paths` first parses every file and builds the
cross-module :class:`~tools.reprolint.concurrency.ProjectModel` (lock
registries, shared-state sets, the lock acquisition graph), then lints
each file against that model, and finally runs the deferred
project-wide checks (the RL008 lock-order cycle detection) whose
findings only exist once every module has been seen.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

#: Matches both suppression forms::
#:
#:     x = legacy_call()  # reprolint: disable=RL001
#:     # reprolint: disable-next-line=RL001,RL003
#:     x = legacy_call()
#:
#: ``disable=all`` silences every rule on the covered line.
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable|disable-next-line)\s*=\s*"
    r"(?P<codes>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

ALL_CODES = "all"


class UsageError(Exception):
    """A command-line usage failure (exit code 2).

    Mirrors the semantics of ``repro.errors.UsageError`` without
    importing it: the linter must run without ``src`` on the path
    (``python -m tools.reprolint src/``), so it carries its own copy of
    the contract — bad invocations fail with a typed error and exit 2,
    never with a silent empty run.
    """


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


@dataclass(frozen=True)
class ParseFailure:
    """A file the engine could not parse (reported as a finding itself)."""

    path: str
    line: int
    message: str

    def to_finding(self) -> Finding:
        return Finding(self.path, self.line, 0, "RL000", self.message)


def collect_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of rule codes suppressed on that line.

    A trailing ``disable=`` comment covers its own line; a standalone
    ``disable-next-line=`` comment covers the following line.  The
    special code ``all`` suppresses every rule.
    """
    suppressed: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            codes = {code.strip() for code in match.group("codes").split(",")}
            line = token.start[0]
            if match.group("kind") == "disable-next-line":
                line += 1
            suppressed.setdefault(line, set()).update(codes)
    except tokenize.TokenError:  # reprolint: disable=RL006
        # A tokenization failure will surface as a parse failure anyway.
        pass
    return suppressed


def is_suppressed(
    finding: Finding, suppressions: Dict[int, Set[str]]
) -> bool:
    codes = suppressions.get(finding.line)
    if not codes:
        return False
    return finding.code in codes or ALL_CODES in codes


def _filter(
    findings: Iterable[Finding],
    suppressions: Dict[int, Set[str]],
    select: Optional[Set[str]],
    ignore: Optional[Set[str]],
) -> List[Finding]:
    kept = []
    for finding in findings:
        if select is not None and finding.code not in select:
            continue
        if ignore is not None and finding.code in ignore:
            continue
        if is_suppressed(finding, suppressions):
            continue
        kept.append(finding)
    return kept


def _sorted(findings: Iterable[Finding]) -> List[Finding]:
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.code))


def lint_source(
    source: str,
    path: str,
    select: Optional[Set[str]] = None,
    ignore: Optional[Set[str]] = None,
    model: Optional[object] = None,
) -> List[Finding]:
    """Lint one source string; ``path`` is used for reporting and for the
    per-module whitelists some rules carry (e.g. RL001 ignores
    ``utils/rng.py``).

    ``model`` is the cross-module :class:`ProjectModel` when called
    from :func:`lint_paths`.  Standalone (``model=None``) the file is
    its own project: a single-file model is built and the deferred
    lock-order check runs over just this module, so single-file
    fixtures still exercise RL008.
    """
    from tools.reprolint import concurrency
    from tools.reprolint.rules import run_rules

    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        line = exc.lineno if exc.lineno is not None else 1
        return [ParseFailure(path, line, f"syntax error: {exc.msg}").to_finding()]
    standalone = model is None
    if standalone:
        model = concurrency.build_project_model([(path, tree, source)])
    assert isinstance(model, concurrency.ProjectModel)
    findings = list(run_rules(tree, source, path, model))
    if standalone:
        findings.extend(concurrency.order_findings(model))
    suppressions = collect_suppressions(source)
    return _sorted(_filter(findings, suppressions, select, ignore))


def iter_python_files(paths: Sequence[str]) -> Iterable[Path]:
    """Yield every ``.py`` file under the given files/directories.

    A path that does not exist raises :class:`UsageError`: a typo'd
    invocation must fail loudly (exit 2) rather than "pass" by linting
    nothing.
    """
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise UsageError(f"path does not exist: {raw}")
        if path.is_dir():
            for child in sorted(path.rglob("*.py")):
                if "__pycache__" in child.parts:
                    continue
                yield child
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: Sequence[str],
    select: Optional[Set[str]] = None,
    ignore: Optional[Set[str]] = None,
) -> List[Finding]:
    """Lint every Python file reachable from ``paths`` (two passes).

    Pass 1 parses everything and builds the project model; pass 2
    lints each file against it; finally the deferred project-wide
    checks (RL008 lock-order cycles) run over the accumulated
    acquisition graph, their findings filtered through each file's own
    suppression comments.
    """
    from tools.reprolint import concurrency

    findings: List[Finding] = []
    parsed: List[tuple] = []  # (path, tree, source)
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            findings.append(
                ParseFailure(str(path), 1, f"unreadable file: {exc}").to_finding()
            )
            continue
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            line = exc.lineno if exc.lineno is not None else 1
            findings.append(
                ParseFailure(
                    str(path), line, f"syntax error: {exc.msg}"
                ).to_finding()
            )
            continue
        parsed.append((str(path), tree, source))

    model = concurrency.build_project_model(parsed)
    suppressions_by_path: Dict[str, Dict[int, Set[str]]] = {}
    for path_str, tree, source in parsed:
        from tools.reprolint.rules import run_rules

        suppressions = collect_suppressions(source)
        suppressions_by_path[path_str] = suppressions
        findings.extend(
            _filter(
                run_rules(tree, source, path_str, model),
                suppressions,
                select,
                ignore,
            )
        )
    for finding in concurrency.order_findings(model):
        kept = _filter(
            [finding],
            suppressions_by_path.get(finding.path, {}),
            select,
            ignore,
        )
        findings.extend(kept)
    return _sorted(findings)
