"""reprolint: domain-aware static analysis for the D-Watch reproduction.

A small AST linter enforcing invariants the Python type system cannot
see: reproducible randomness (RL001), radian discipline (RL002), no
silent complex→real narrowing in the MUSIC/P-MUSIC math (RL003),
annotated public APIs (RL004), and the classic Python footguns RL005.

Run with ``python -m tools.reprolint src/``.
"""

from tools.reprolint.engine import Finding, lint_paths, lint_source
from tools.reprolint.rules import RULES

__all__ = ["Finding", "RULES", "lint_paths", "lint_source"]
