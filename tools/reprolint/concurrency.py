"""The concurrency rule family (RL007-RL010): model pass + checks.

Unlike RL001-RL006, which judge one expression at a time, the
concurrency rules need context that spans methods, classes and modules:
*which attributes are locks*, *which attributes are shared mutable
state*, and *in which order the codebase as a whole acquires its
locks*.  The analyzer therefore runs in two passes:

**Pass 1 — model building** (:func:`build_project_model`).  Every
module is scanned for classes that declare locks::

    self._lock = threading.Lock()          # or RLock()
    self._lock = sanitized_lock("name")    # the debug-gated factory
    self._not_full = threading.Condition(self._lock)   # aliases _lock

For each lock-owning class the pass also derives the **shared mutable
attribute set**: attributes assigned in any non-``__init__`` method,
plus attributes initialized to a mutable container (list/dict/set/
deque/``field(default_factory=list)`` ...).  An attribute can opt out
with a ``# reprolint: lockfree`` comment on its assignment line (for
state that is provably confined to one thread).  Attributes assigned
from ``open(...)`` or ``socket.*`` calls are remembered as *blocking
handles* for RL009.

**Pass 2 — enforcement**, with the model in hand:

========  ==============================================================
RL007     In a lock-owning class, every read/write of a shared mutable
          attribute must sit lexically inside a ``with self._lock:``
          block (or the attribute is declared lock-free).  ``__init__``/
          ``__post_init__`` are exempt (the object is not yet
          published), as are methods named ``*_locked`` (the documented
          "caller holds the lock" convention).
RL008     The project-wide lock acquisition graph (lock identity =
          ``ClassName.attr``, conditions resolved to their lock) must
          be cycle-free: acquiring B while holding A on one path and A
          while holding B on another is a deadlock waiting for the
          right interleaving.  Nesting the *same* non-reentrant lock is
          reported immediately.
RL009     No blocking call while holding a lock: ``open()``,
          ``time.sleep``, ``subprocess.*``, ``socket.*``,
          ``os.system``/``os.popen``, method calls on a blocking handle
          attribute, or joining a shared thread attribute.
RL010     ``threading.Thread(...)`` must pass ``daemon=`` explicitly,
          and the created thread must be joined somewhere in the module
          or handed to a ``*register*`` call for shutdown.
========  ==============================================================

The runtime twin of this file is :mod:`repro.analysis.sanitizer`, which
witnesses the same invariants dynamically under ``REPRO_DEBUG=1``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from tools.reprolint.engine import Finding

#: Opt-out comment for RL007 on an attribute's assignment line.
_LOCKFREE_RE = re.compile(r"#\s*reprolint:\s*lockfree\b")

#: Call names that create a lock object (pass 1).
_LOCK_FACTORIES = frozenset({"Lock", "RLock", "sanitized_lock"})

#: Init-like methods: assignments here are initialization, and the
#: object is not yet visible to other threads.
_INIT_METHODS = frozenset({"__init__", "__post_init__", "__new__"})

#: Mutable container constructors (pass 1 shared-state inference).
_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "deque", "defaultdict", "bytearray", "OrderedDict"}
)

#: Module roots whose calls block (RL009).
_BLOCKING_ROOTS = frozenset({"subprocess", "socket", "requests"})

#: Exact dotted calls that block (RL009).
_BLOCKING_CHAINS = frozenset(
    {("time", "sleep"), ("os", "system"), ("os", "popen")}
)


def _terminal_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _attr_chain(node: ast.AST) -> Optional[List[str]]:
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return list(reversed(parts))
    return None


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.X`` -> ``"X"``; anything else -> ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


@dataclass
class ClassModel:
    """What pass 1 knows about one lock-owning (or plain) class."""

    name: str
    path: str
    #: lock attribute -> how it was created ("Lock", "RLock", ...).
    locks: Dict[str, str] = field(default_factory=dict)
    #: condition attribute -> the lock attribute it wraps.
    aliases: Dict[str, str] = field(default_factory=dict)
    #: attributes assigned outside __init__ or initialized to a
    #: mutable container — the state RL007 wants guarded.
    shared: Set[str] = field(default_factory=set)
    #: attributes exempted via ``# reprolint: lockfree``.
    lockfree: Set[str] = field(default_factory=set)
    #: attributes assigned from open()/socket.* — blocking handles.
    handles: Set[str] = field(default_factory=set)

    @property
    def concurrent(self) -> bool:
        """RL007 applies only to classes that declare locks."""
        return bool(self.locks) or bool(self.aliases)

    def lock_id(self, attr: str) -> str:
        """Project-wide lock identity, conditions resolved to locks."""
        return f"{self.name}.{self.aliases.get(attr, attr)}"

    def guard_attrs(self) -> Set[str]:
        """Attributes whose ``with self.X:`` acquires a known lock."""
        return set(self.locks) | set(self.aliases)


@dataclass
class ProjectModel:
    """Everything pass 2 needs, accumulated across all modules."""

    #: (path, class name) -> model.
    classes: Dict[Tuple[str, str], ClassModel] = field(default_factory=dict)
    #: (outer lock id, inner lock id) -> acquisition sites.
    edges: Dict[Tuple[str, str], List[Tuple[str, int, int]]] = field(
        default_factory=dict
    )

    def lookup(self, path: str, class_name: str) -> Optional[ClassModel]:
        return self.classes.get((path, class_name))

    def add_edge(
        self, outer: str, inner: str, path: str, line: int, col: int
    ) -> None:
        self.edges.setdefault((outer, inner), []).append((path, line, col))


def _is_lock_call(value: ast.AST) -> Optional[str]:
    """``threading.Lock()`` / ``RLock()`` / ``sanitized_lock(...)`` kind."""
    if isinstance(value, ast.Call):
        name = _terminal_name(value.func)
        if name in _LOCK_FACTORIES:
            return name
    return None


def _condition_lock(value: ast.AST) -> Optional[Tuple[bool, Optional[str]]]:
    """``threading.Condition(...)``: (is_condition, wrapped self attr)."""
    if isinstance(value, ast.Call) and _terminal_name(value.func) == "Condition":
        if value.args:
            return True, _self_attr(value.args[0])
        return True, None
    return None


def _is_mutable_init(value: ast.AST) -> bool:
    """A value that makes the attribute shared mutable state."""
    if isinstance(
        value,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    ):
        return True
    if isinstance(value, ast.Call):
        name = _terminal_name(value.func)
        if name in _MUTABLE_FACTORIES:
            return True
        if name == "field":  # dataclasses.field(default_factory=list)
            for keyword in value.keywords:
                if keyword.arg == "default_factory":
                    factory = _terminal_name(keyword.value)
                    if factory in _MUTABLE_FACTORIES:
                        return True
    return False


def _is_handle_call(value: ast.AST) -> bool:
    """``open(...)`` or ``socket.*(...)`` — a blocking-I/O handle."""
    if not isinstance(value, ast.Call):
        return False
    if isinstance(value.func, ast.Name) and value.func.id == "open":
        return True
    chain = _attr_chain(value.func)
    return bool(chain) and chain[0] == "socket"


def _assign_targets(node: ast.AST) -> List[ast.AST]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        return [node.target]
    return []


def _assigned_value(node: ast.AST) -> Optional[ast.AST]:
    if isinstance(node, (ast.Assign, ast.AnnAssign)):
        return node.value
    if isinstance(node, ast.AugAssign):
        return node.value
    return None


def _build_class_model(
    node: ast.ClassDef, path: str, source_lines: Sequence[str]
) -> ClassModel:
    model = ClassModel(name=node.name, path=path)
    mutable_inits: Set[str] = set()

    def lockfree_here(lineno: int) -> bool:
        if 1 <= lineno <= len(source_lines):
            return bool(_LOCKFREE_RE.search(source_lines[lineno - 1]))
        return False

    # Class-level dataclass fields: ``x: List[int] = field(...)``.
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            if stmt.value is not None and _is_mutable_init(stmt.value):
                if lockfree_here(stmt.lineno):
                    model.lockfree.add(stmt.target.id)
                else:
                    mutable_inits.add(stmt.target.id)

    for method in [n for n in node.body if isinstance(n, ast.FunctionDef)]:
        init_like = method.name in _INIT_METHODS
        for sub in ast.walk(method):
            value = _assigned_value(sub)
            if value is None:
                continue
            for target in _assign_targets(sub):
                attr = _self_attr(target)
                if attr is None:
                    continue
                lock_kind = _is_lock_call(value)
                condition = _condition_lock(value)
                if lock_kind is not None:
                    model.locks[attr] = lock_kind
                    continue
                if condition is not None:
                    _, wrapped = condition
                    # A bare Condition() owns its internal lock; model
                    # it as a lock in its own right.
                    if wrapped is None:
                        model.locks[attr] = "Condition"
                    else:
                        model.aliases[attr] = wrapped
                    continue
                if _is_handle_call(value):
                    model.handles.add(attr)
                if lockfree_here(sub.lineno):
                    model.lockfree.add(attr)
                    continue
                if init_like:
                    if _is_mutable_init(value):
                        mutable_inits.add(attr)
                else:
                    model.shared.add(attr)

    model.shared |= mutable_inits
    model.shared -= model.guard_attrs()
    model.shared -= model.lockfree
    return model


def build_project_model(
    modules: Sequence[Tuple[str, ast.AST, str]],
) -> ProjectModel:
    """Pass 1 over every parsed module: ``(path, tree, source)`` triples."""
    project = ProjectModel()
    for path, tree, source in modules:
        source_lines = source.splitlines()
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                project.classes[(path, node.name)] = _build_class_model(
                    node, path, source_lines
                )
    return project


class ConcurrencyChecker(ast.NodeVisitor):
    """Pass 2 over one module, armed with the project model.

    Emits RL007/RL009/RL010 findings directly and feeds the lock
    acquisition graph for the deferred RL008 cycle check
    (:func:`order_findings`).
    """

    def __init__(self, path: str, model: ProjectModel) -> None:
        self.path = path
        self.model = model
        self.findings: List[Finding] = []
        self._class: Optional[ClassModel] = None
        self._method: Optional[str] = None
        self._held: List[str] = []
        self._sleep_aliases: Set[str] = set()
        self._thread_callees: Set[str] = set()
        # Module-wide prepass results (RL010): names that get .join()ed
        # and names handed to a *register* call.
        self._join_receivers: Set[str] = set()
        self._registered: Set[str] = set()
        self._handled_threads: Set[int] = set()

    # -- module prepass -------------------------------------------------

    def check(self, tree: ast.AST) -> List[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            if isinstance(callee, ast.Attribute) and callee.attr == "join":
                receiver = _terminal_name(callee.value)
                if receiver is not None:
                    self._join_receivers.add(receiver)
            name = _terminal_name(callee)
            if name is not None and "register" in name.lower():
                for arg in node.args:
                    arg_name = _terminal_name(arg)
                    if arg_name is not None:
                        self._registered.add(arg_name)
        self.visit(tree)
        return self.findings

    # -- bookkeeping ----------------------------------------------------

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            Finding(
                self.path,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0),
                code,
                message,
            )
        )

    def visit_Import(self, node: ast.Import) -> None:
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name
            if node.module == "time" and alias.name == "sleep":
                self._sleep_aliases.add(bound)
            if node.module == "threading" and alias.name == "Thread":
                self._thread_callees.add(bound)
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        previous_class = self._class
        previous_held = self._held
        self._class = self.model.lookup(self.path, node.name)
        self._held = []
        try:
            self.generic_visit(node)
        finally:
            self._class = previous_class
            self._held = previous_held

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_method(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_method(node)

    def _visit_method(self, node: ast.AST) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        previous = self._method
        # Only the class's direct methods reset the context; nested
        # defs inherit it (they close over self and the held stack).
        if self._method is None:
            self._method = node.name
            held = self._held
            self._held = []
        else:
            held = None
        try:
            self.generic_visit(node)
        finally:
            self._method = previous
            if held is not None:
                self._held = held

    # -- with-lock tracking (RL007 context, RL008 edges) ---------------

    def _lock_of(self, expr: ast.AST) -> Optional[str]:
        if self._class is None:
            return None
        attr = _self_attr(expr)
        if attr is not None and attr in self._class.guard_attrs():
            return self._class.lock_id(attr)
        return None

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: ast.AST) -> None:
        assert isinstance(node, (ast.With, ast.AsyncWith))
        pushed = 0
        for item in node.items:
            lock_id = self._lock_of(item.context_expr)
            if lock_id is None:
                continue
            if lock_id in self._held:
                self._report(
                    item.context_expr,
                    "RL008",
                    f"nested acquisition of non-reentrant lock '{lock_id}' "
                    "(guaranteed self-deadlock)",
                )
            else:
                for outer in self._held:
                    self.model.add_edge(
                        outer,
                        lock_id,
                        self.path,
                        getattr(item.context_expr, "lineno", 1),
                        getattr(item.context_expr, "col_offset", 0),
                    )
            self._held.append(lock_id)
            pushed += 1
        try:
            self.generic_visit(node)
        finally:
            for _ in range(pushed):
                self._held.pop()

    # -- RL007: guarded shared state -----------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        cls = self._class
        method = self._method
        if (
            cls is not None
            and cls.concurrent
            and method is not None
            and method not in _INIT_METHODS
            and not method.endswith("_locked")
            and not self._held
        ):
            attr = _self_attr(node)
            if (
                attr is not None
                and attr in cls.shared
                and attr not in cls.lockfree
            ):
                self._report(
                    node,
                    "RL007",
                    f"'{cls.name}.{attr}' is shared mutable state accessed "
                    "outside any 'with self.<lock>:' block; guard it, or "
                    "declare it '# reprolint: lockfree'",
                )
        self.generic_visit(node)

    # -- RL009 / RL010: calls ------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        if isinstance(node.value, ast.Call) and self._is_thread_call(
            node.value
        ):
            names = []
            for target in node.targets:
                target_name = _terminal_name(target)
                if target_name is not None:
                    names.append(target_name)
            self._check_thread(node.value, names)
            self._handled_threads.add(id(node.value))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if self._is_thread_call(node) and id(node) not in self._handled_threads:
            self._check_thread(node, [])
        if self._held:
            self._check_blocking(node)
        self.generic_visit(node)

    def _is_thread_call(self, node: ast.Call) -> bool:
        chain = _attr_chain(node.func)
        if chain is not None and chain[-2:] == ["threading", "Thread"]:
            return True
        name = _terminal_name(node.func)
        return isinstance(node.func, ast.Name) and name in self._thread_callees

    def _check_thread(self, node: ast.Call, target_names: List[str]) -> None:
        keywords = {kw.arg for kw in node.keywords if kw.arg is not None}
        if "daemon" not in keywords:
            self._report(
                node,
                "RL010",
                "threading.Thread(...) without an explicit daemon= choice; "
                "decide (and declare) whether it may outlive the process",
            )
        joined = any(
            name in self._join_receivers or name in self._registered
            for name in target_names
        )
        if not joined:
            self._report(
                node,
                "RL010",
                "thread is neither joined nor registered for shutdown in "
                "this module; a fix must account for its lifetime",
            )

    def _check_blocking(self, node: ast.Call) -> None:
        func = node.func
        how: Optional[str] = None
        if isinstance(func, ast.Name):
            if func.id == "open":
                how = "open()"
            elif func.id in self._sleep_aliases:
                how = "time.sleep()"
        chain = _attr_chain(func)
        if how is None and chain is not None:
            if tuple(chain[-2:]) in _BLOCKING_CHAINS:
                how = ".".join(chain[-2:]) + "()"
            elif chain[0] in _BLOCKING_ROOTS:
                how = ".".join(chain) + "()"
        if how is None and isinstance(func, ast.Attribute):
            receiver = _self_attr(func.value)
            if (
                receiver is not None
                and self._class is not None
                and receiver in self._class.handles
            ):
                how = f"I/O on handle 'self.{receiver}'"
            elif (
                func.attr == "join"
                and receiver is not None
                and self._class is not None
                and receiver in self._class.shared
            ):
                how = f"'self.{receiver}.join()'"
        if how is not None:
            self._report(
                node,
                "RL009",
                f"blocking call {how} while holding lock "
                f"'{self._held[-1]}'; move it outside the with-block",
            )


def run_concurrency_rules(
    tree: ast.AST, path: str, model: ProjectModel
) -> List[Finding]:
    """Pass 2 (RL007/RL009/RL010 + RL008 edge collection) for one module."""
    return ConcurrencyChecker(path, model).check(tree)


def order_findings(model: ProjectModel) -> List[Finding]:
    """The deferred RL008 check: flag every acquisition edge on a cycle.

    Run once after every module has fed :attr:`ProjectModel.edges`.
    An edge ``A -> B`` is inconsistent when the rest of the graph can
    get from ``B`` back to ``A``; both directions of a two-lock
    inversion are reported, each at its own acquisition site.
    """
    adjacency: Dict[str, Set[str]] = {}
    for outer, inner in model.edges:
        adjacency.setdefault(outer, set()).add(inner)

    def reachable(start: str, goal: str) -> bool:
        seen: Set[str] = set()
        frontier = [start]
        while frontier:
            current = frontier.pop()
            if current == goal:
                return True
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(sorted(adjacency.get(current, ())))
        return False

    findings: List[Finding] = []
    for (outer, inner) in sorted(model.edges):
        if not reachable(inner, outer):
            continue
        for path, line, col in sorted(model.edges[(outer, inner)]):
            findings.append(
                Finding(
                    path,
                    line,
                    col,
                    "RL008",
                    f"lock-order inversion: '{inner}' acquired while "
                    f"holding '{outer}' here, but the opposite order "
                    "exists elsewhere in the project (deadlock risk)",
                )
            )
    return findings
