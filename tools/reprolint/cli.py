"""Command-line entry point: ``python -m tools.reprolint src/``.

Exit codes follow the usual linter convention: 0 clean, 1 findings,
2 usage error (unknown rule codes, nonexistent paths).  Output is
deterministic: findings sort globally by (path, line, col, code), the
``--statistics`` table sorts by code, and ``--format json`` emits a
stable object (``{"findings": [...], "statistics": {...}}``) suitable
for CI artifact diffing.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from typing import List, Optional, Set

from tools.reprolint.engine import UsageError, lint_paths
from tools.reprolint.rules import RULES


def _parse_codes(raw: Optional[str]) -> Optional[Set[str]]:
    if raw is None:
        return None
    codes = {code.strip().upper() for code in raw.split(",") if code.strip()}
    unknown = codes - set(RULES)
    if unknown:
        raise UsageError(
            f"unknown rule code(s): {', '.join(sorted(unknown))}"
        )
    return codes


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="Project-specific static analysis for the D-Watch reproduction.",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories")
    parser.add_argument("--select", help="comma-separated rule codes to run exclusively")
    parser.add_argument("--ignore", help="comma-separated rule codes to skip")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    parser.add_argument(
        "--statistics", action="store_true", help="print a per-rule finding count"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule codes and exit"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in sorted(RULES):
            print(f"{code}  {RULES[code]}")
        return 0

    try:
        select = _parse_codes(args.select)
        ignore = _parse_codes(args.ignore)
        paths = args.paths or ["src"]
        findings = lint_paths(paths, select=select, ignore=ignore)
    except UsageError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2

    counts = Counter(f.code for f in findings)
    statistics = {code: counts[code] for code in sorted(counts)}

    if args.format == "json":
        if args.statistics:
            document = {
                "findings": [f.as_dict() for f in findings],
                "statistics": statistics,
            }
            print(json.dumps(document, indent=2, sort_keys=True))
        else:
            print(json.dumps([f.as_dict() for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding.format())
        if args.statistics:
            for code, count in statistics.items():
                print(f"{code}: {count}")

    if findings:
        if args.format == "text":
            print(f"reprolint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0
