"""The project-specific rules reprolint enforces.

========  ==============================================================
Code      Invariant
========  ==============================================================
RL001     All randomness flows through ``repro.utils.rng`` — no legacy
          ``np.random.*`` global-state API, no ``RandomState``, and no
          direct ``default_rng`` construction outside ``utils/rng.py``.
RL002     Angles are radians everywhere: no trig on ``*_deg`` values and
          no raw ``np.deg2rad``/``np.rad2deg``/``np.radians``/
          ``np.degrees`` (or the ``math`` equivalents) outside
          ``utils/angles.py``.
RL003     No silent complex→real narrowing of covariance/eigen/subspace
          math: ``float(...)``, ``np.real(...)``, ``.real`` and
          ``.astype(float)`` on such values need an explicit
          justification (a ``# reprolint: disable=RL003`` comment).
RL004     Public API functions under ``src/repro`` declare their return
          type.
RL005     No mutable default arguments and no bare/broad ``except``.
RL006     No silently swallowed exceptions: an ``except`` body that is
          only ``pass``/``...`` hides failures the health layer should
          count — handle, log or re-raise (or justify with a
          ``# reprolint: disable=RL006`` comment).
RL007     Shared mutable attributes of lock-owning classes are only
          touched inside ``with self.<lock>:`` blocks (or carry a
          ``# reprolint: lockfree`` exemption).
RL008     The project-wide lock acquisition graph is cycle-free (no
          lock-order inversions), and no non-reentrant lock is
          acquired while already held.
RL009     No blocking call (file/socket I/O, ``time.sleep``,
          ``subprocess``, joining a thread) while holding a lock.
RL010     ``threading.Thread`` construction is daemon-explicit and the
          thread is joined or registered for shutdown.
RL011     Dense kernels inside ``src/repro/dsp/`` route through the
          array-backend layer: no direct ``np.linalg.eigh`` /
          ``np.linalg.eigvalsh`` / ``np.einsum`` outside
          ``dsp/backend.py`` (a deliberate NumPy pin is justified with
          a ``# reprolint: disable=RL011`` comment).
========  ==============================================================

RL007-RL010 are cross-module: they consume the two-pass project model
built by :mod:`tools.reprolint.concurrency`, where the family is
implemented and documented in detail.

Each rule reports a code and message; every report can be silenced on
its line with ``# reprolint: disable=RLxxx`` (see
:mod:`tools.reprolint.engine`).
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set

from tools.reprolint.engine import Finding

if TYPE_CHECKING:
    from tools.reprolint import concurrency

RULES: Dict[str, str] = {
    "RL001": "legacy/global NumPy randomness (route through repro.utils.rng)",
    "RL002": "angle-unit discipline (radians everywhere; use repro.utils.angles)",
    "RL003": "silent complex-to-real narrowing of covariance/subspace math",
    "RL004": "public API function missing a return annotation",
    "RL005": "mutable default argument or bare/broad except",
    "RL006": "exception swallowed by an empty except body",
    "RL007": "shared mutable attribute accessed outside its lock",
    "RL008": "lock-order inversion / nested acquisition of the same lock",
    "RL009": "blocking call while holding a lock",
    "RL010": "thread without explicit daemon= or without join/registration",
    "RL011": "direct dense kernel in dsp/ (route through repro.dsp.backend)",
}

#: Dense primitives RL011 pins to the backend layer: the batched hot
#: path dispatches these through ``repro.dsp.backend`` so CuPy/torch
#: can take them over; a direct NumPy call silently opts out.
_DENSE_LINALG = frozenset({"eigh", "eigvalsh"})
_DENSE_TOPLEVEL = frozenset({"einsum"})

#: numpy.random attributes that talk to the legacy global-state API (or
#: construct the legacy RandomState).  ``Generator``/``SeedSequence``/
#: ``BitGenerator`` & friends are the modern API and stay allowed.
_LEGACY_RANDOM = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "random_integers",
        "ranf",
        "sample",
        "bytes",
        "choice",
        "shuffle",
        "permutation",
        "get_state",
        "set_state",
        "RandomState",
        "beta",
        "binomial",
        "chisquare",
        "dirichlet",
        "exponential",
        "gamma",
        "geometric",
        "gumbel",
        "hypergeometric",
        "laplace",
        "logistic",
        "lognormal",
        "logseries",
        "multinomial",
        "multivariate_normal",
        "negative_binomial",
        "noncentral_chisquare",
        "noncentral_f",
        "normal",
        "pareto",
        "poisson",
        "power",
        "rayleigh",
        "standard_cauchy",
        "standard_exponential",
        "standard_gamma",
        "standard_normal",
        "standard_t",
        "triangular",
        "uniform",
        "vonmises",
        "wald",
        "weibull",
        "zipf",
    }
)

_TRIG_NAMES = frozenset({"sin", "cos", "tan"})
_ANGLE_CONVERTERS = frozenset({"deg2rad", "rad2deg", "radians", "degrees"})
_DEG_TOKENS = frozenset({"deg", "degs", "degree", "degrees"})

#: Identifier tokens that mark a value as part of the complex
#: covariance/subspace chain (RL003).
_CARRIER_PREFIXES = ("cov", "eig", "subspace", "steer")
_CARRIER_TOKENS = frozenset({"csi", "iq", "snapshot", "snapshots"})

#: Calls whose result is real-valued regardless of their (possibly
#: complex) input — subtrees under these are not complex carriers.
_REAL_PRODUCING = frozenset(
    {"abs", "absolute", "angle", "imag", "norm", "hypot", "isfinite", "isnan", "len"}
)

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict", "deque", "bytearray"})


def _path_endswith(path: str, suffix: str) -> bool:
    return PurePosixPath(path).as_posix().endswith(suffix)


def _identifier_tokens(name: str) -> List[str]:
    return name.lower().split("_")


def _has_deg_token(name: str) -> bool:
    return any(token in _DEG_TOKENS for token in _identifier_tokens(name))


def _is_carrier_name(name: str) -> bool:
    for token in _identifier_tokens(name):
        if not token:
            continue
        if token in _CARRIER_TOKENS:
            return True
        if any(token.startswith(prefix) for prefix in _CARRIER_PREFIXES):
            return True
    return False


class _NameScan(ast.NodeVisitor):
    """Collect identifiers in an expression, pruning subtrees rooted at
    calls to real-producing functions (``abs``, ``np.angle``, ...)."""

    def __init__(self) -> None:
        self.names: List[str] = []

    def visit_Call(self, node: ast.Call) -> None:
        callee = _terminal_name(node.func)
        if callee in _REAL_PRODUCING:
            return  # prune: the call's result carries no imaginary part
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        self.names.append(node.id)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self.names.append(node.attr)
        self.generic_visit(node)


def _scan_names(node: ast.AST) -> List[str]:
    scanner = _NameScan()
    scanner.visit(node)
    return scanner.names


def _terminal_name(node: ast.AST) -> Optional[str]:
    """The final identifier of a ``Name`` or dotted ``Attribute``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _attr_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` -> ``["a", "b", "c"]``; ``None`` for non-dotted exprs."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return list(reversed(parts))
    return None


def _is_complex_producing(node: ast.AST) -> bool:
    """Matrix products and einsums over complex arrays stay complex."""
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
        return True
    if isinstance(node, ast.Call):
        name = _terminal_name(node.func)
        return name in {"einsum", "matmul", "dot", "vdot", "tensordot"}
    return False


class _Checker(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[Finding] = []
        # Names bound to the numpy / numpy.random / math modules.
        self.numpy_aliases: Set[str] = set()
        self.numpy_random_aliases: Set[str] = set()
        self.math_aliases: Set[str] = set()
        # Function names imported directly from numpy / math / numpy.random.
        self.direct_trig: Set[str] = set()
        self.direct_converters: Set[str] = set()
        # Names imported straight off numpy/numpy.linalg that RL011
        # watches (``from numpy.linalg import eigh`` and friends).
        self.direct_dense: Set[str] = set()
        self.linalg_aliases: Set[str] = set()
        self._function_depth = 0
        self._in_rng_module = _path_endswith(path, "utils/rng.py")
        self._in_angles_module = _path_endswith(path, "utils/angles.py")
        parts = PurePosixPath(path).parts
        self._in_repro = "repro" in parts
        self._rl011_scope = (
            self._in_repro
            and "dsp" in parts
            and not _path_endswith(path, "dsp/backend.py")
        )

    # -- reporting ----------------------------------------------------

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            Finding(
                self.path,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0),
                code,
                message,
            )
        )

    # -- import tracking ----------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "numpy":
                self.numpy_aliases.add(bound)
            elif alias.name == "numpy.random":
                if alias.asname is not None:
                    self.numpy_random_aliases.add(bound)
                else:
                    self.numpy_aliases.add(bound)
            elif alias.name == "math":
                self.math_aliases.add(bound)
            elif alias.name == "numpy.linalg" and alias.asname is not None:
                self.linalg_aliases.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            bound = alias.asname or alias.name
            if module == "numpy":
                if alias.name == "random":
                    self.numpy_random_aliases.add(bound)
                elif alias.name == "linalg":
                    self.linalg_aliases.add(bound)
                elif alias.name in _TRIG_NAMES:
                    self.direct_trig.add(bound)
                elif alias.name in _ANGLE_CONVERTERS:
                    self.direct_converters.add(bound)
                elif alias.name in _DENSE_TOPLEVEL:
                    self.direct_dense.add(bound)
            elif module == "numpy.linalg":
                if alias.name in _DENSE_LINALG:
                    self.direct_dense.add(bound)
            elif module == "math":
                if alias.name in _TRIG_NAMES:
                    self.direct_trig.add(bound)
                elif alias.name in {"radians", "degrees"}:
                    self.direct_converters.add(bound)
            elif module == "numpy.random":
                if not self._in_rng_module and alias.name in _LEGACY_RANDOM:
                    self._report(
                        node,
                        "RL001",
                        f"import of legacy numpy.random.{alias.name}; "
                        "route randomness through repro.utils.rng.ensure_rng",
                    )
        self.generic_visit(node)

    # -- helpers over tracked aliases ---------------------------------

    def _random_attr(self, node: ast.Attribute) -> Optional[str]:
        """``np.random.X`` / ``nprandom.X`` -> ``X``; else ``None``."""
        value = node.value
        if isinstance(value, ast.Attribute) and value.attr == "random":
            root = value.value
            if isinstance(root, ast.Name) and root.id in self.numpy_aliases:
                return node.attr
        if isinstance(value, ast.Name) and value.id in self.numpy_random_aliases:
            return node.attr
        return None

    def _is_module_func(self, func: ast.AST, modules: Set[str], names: Set[str]) -> bool:
        if isinstance(func, ast.Attribute) and func.attr in names:
            return isinstance(func.value, ast.Name) and func.value.id in modules
        return False

    # -- RL001 / RL002 / RL003: expression checks ---------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = self._random_attr(node)
        if attr is not None and not self._in_rng_module:
            if attr in _LEGACY_RANDOM:
                self._report(
                    node,
                    "RL001",
                    f"legacy/global numpy randomness 'np.random.{attr}'; "
                    "take an np.random.Generator via repro.utils.rng.ensure_rng",
                )
            elif attr == "default_rng":
                self._report(
                    node,
                    "RL001",
                    "direct np.random.default_rng() construction; "
                    "accept an RngLike and call repro.utils.rng.ensure_rng",
                )
        if node.attr == "real":
            self._check_complex_narrowing(node, node.value, ".real")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        self._check_rl002_call(node)
        self._check_rl003_call(node)
        self._check_rl011_call(node)
        self.generic_visit(node)

    def _check_rl011_call(self, node: ast.Call) -> None:
        """Direct dense kernels in ``dsp/`` modules other than backend.py."""
        if not self._rl011_scope:
            return
        func = node.func
        name: Optional[str] = None
        if isinstance(func, ast.Name) and func.id in self.direct_dense:
            name = func.id
        elif isinstance(func, ast.Attribute):
            chain = _attr_chain(func)
            if chain is None:
                return
            if (
                len(chain) == 3
                and chain[0] in self.numpy_aliases
                and chain[1] == "linalg"
                and chain[2] in _DENSE_LINALG
            ):
                name = f"linalg.{chain[2]}"
            elif (
                len(chain) == 2
                and chain[0] in self.linalg_aliases
                and chain[1] in _DENSE_LINALG
            ):
                name = f"linalg.{chain[1]}"
            elif (
                len(chain) == 2
                and chain[0] in self.numpy_aliases
                and chain[1] in _DENSE_TOPLEVEL
            ):
                name = chain[1]
        if name is not None:
            self._report(
                node,
                "RL011",
                f"direct NumPy '{name}' inside repro.dsp; dispatch through "
                "repro.dsp.backend (get_backend/xp) so non-NumPy backends "
                "stay engaged, or justify the pin with a disable comment",
            )

    def _check_rl002_call(self, node: ast.Call) -> None:
        func = node.func
        # (a) trig on degree-named values.
        is_trig = self._is_module_func(
            func, self.numpy_aliases | self.math_aliases, _TRIG_NAMES
        ) or (isinstance(func, ast.Name) and func.id in self.direct_trig)
        if is_trig:
            for arg in node.args:
                if any(_has_deg_token(name) for name in self._names_outside_conversions(arg)):
                    self._report(
                        node,
                        "RL002",
                        "trigonometric call on a degree-named value; convert with "
                        "repro.utils.angles.deg2rad first",
                    )
                    break
        # (b) raw converters outside utils/angles.py.
        if self._in_angles_module:
            return
        is_converter = self._is_module_func(
            func, self.numpy_aliases, _ANGLE_CONVERTERS
        ) or self._is_module_func(func, self.math_aliases, {"radians", "degrees"})
        if not is_converter and isinstance(func, ast.Name):
            is_converter = func.id in self.direct_converters
        if is_converter and self._in_repro:
            name = _terminal_name(func)
            self._report(
                node,
                "RL002",
                f"raw angle conversion '{name}'; use repro.utils.angles."
                f"{'deg2rad' if name in {'deg2rad', 'radians'} else 'rad2deg'} "
                "so units stay auditable",
            )

    def _names_outside_conversions(self, node: ast.AST) -> List[str]:
        """Names in ``node`` not wrapped by a deg/rad conversion call."""

        class Scan(ast.NodeVisitor):
            def __init__(self) -> None:
                self.names: List[str] = []

            def visit_Call(self, call: ast.Call) -> None:
                callee = _terminal_name(call.func)
                if callee in _ANGLE_CONVERTERS:
                    return  # converted: degree names under here are fine
                self.generic_visit(call)

            def visit_Name(self, name: ast.Name) -> None:
                self.names.append(name.id)

            def visit_Attribute(self, attribute: ast.Attribute) -> None:
                self.names.append(attribute.attr)
                self.generic_visit(attribute)

        scanner = Scan()
        scanner.visit(node)
        return scanner.names

    def _check_rl003_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "float" and len(node.args) == 1:
            self._check_complex_narrowing(node, node.args[0], "float()")
        elif self._is_module_func(func, self.numpy_aliases, {"real"}) and node.args:
            self._check_complex_narrowing(node, node.args[0], "np.real()")
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "astype"
            and node.args
            and _terminal_name(node.args[0]) in {"float", "float64", "float32"}
        ):
            self._check_complex_narrowing(node, func.value, ".astype(float)")

    def _check_complex_narrowing(
        self, node: ast.AST, value: ast.AST, how: str
    ) -> None:
        carrier = any(_is_carrier_name(name) for name in _scan_names(value))
        if carrier or _is_complex_producing(value):
            self._report(
                node,
                "RL003",
                f"{how} silently drops the imaginary part of covariance/subspace "
                "math; use np.abs/np.angle, or justify with a disable comment",
            )

    # -- RL004: public return annotations -----------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)

    def _check_function(self, node: ast.AST) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        public_api = (
            self._in_repro
            and self._function_depth == 0
            and not node.name.startswith("_")
        )
        if public_api and node.returns is None:
            self._report(
                node,
                "RL004",
                f"public function '{node.name}' is missing a return annotation",
            )
        self._check_defaults(node)
        self._function_depth += 1
        try:
            self.generic_visit(node)
        finally:
            self._function_depth -= 1

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        # Methods of a class count as module-level API, not nested defs.
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._function_depth += 1
        try:
            self.generic_visit(node)
        finally:
            self._function_depth -= 1

    # -- RL005: mutable defaults and broad excepts --------------------

    def _check_defaults(self, node: ast.AST) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if isinstance(
                default,
                (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
            ):
                self._report(
                    default,
                    "RL005",
                    f"mutable default argument in '{node.name}'; "
                    "default to None and build inside the body",
                )
            elif (
                isinstance(default, ast.Call)
                and _terminal_name(default.func) in _MUTABLE_CALLS
            ):
                self._report(
                    default,
                    "RL005",
                    f"mutable default argument (call) in '{node.name}'; "
                    "default to None and build inside the body",
                )

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._report(
                node, "RL005", "bare 'except:'; catch a specific exception type"
            )
        else:
            exception_types = (
                node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
            )
            for exc_type in exception_types:
                if _terminal_name(exc_type) in {"Exception", "BaseException"}:
                    self._report(
                        node,
                        "RL005",
                        f"broad 'except {_terminal_name(exc_type)}'; catch a "
                        "specific exception type (repro.errors has the taxonomy)",
                    )
                    break
        self._check_swallow(node)
        self.generic_visit(node)

    # -- RL006: silently swallowed exceptions -------------------------

    def _check_swallow(self, node: ast.ExceptHandler) -> None:
        """Flag handlers whose whole body is ``pass``/``...`` (RL006)."""
        meaningful = [
            stmt
            for stmt in node.body
            if not (
                isinstance(stmt, ast.Pass)
                or (
                    isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)
                    and (
                        stmt.value.value is Ellipsis
                        or isinstance(stmt.value.value, str)
                    )
                )
            )
        ]
        if not meaningful:
            self._report(
                node,
                "RL006",
                "exception silently swallowed ('except ...: pass'); handle "
                "it, count it (repro.obs / health tracking) or re-raise",
            )


def run_rules(
    tree: ast.AST,
    source: str,
    path: str,
    model: Optional["concurrency.ProjectModel"] = None,
) -> Sequence[Finding]:
    """Run every rule over one parsed module.

    ``model`` carries the cross-module state the concurrency family
    needs; when absent a single-file model is built on the spot so the
    per-file rules of the family still run.
    """
    from tools.reprolint import concurrency

    checker = _Checker(path)
    checker.visit(tree)
    findings = list(checker.findings)
    if model is None:
        model = concurrency.build_project_model([(path, tree, source)])
    findings.extend(concurrency.run_concurrency_rules(tree, path, model))
    return findings
