"""Fig. 14 — overall localization accuracy in the three environments."""

from conftest import print_rows, run_once

from repro.experiments import run_fig14


def test_fig14_overall_localization(benchmark):
    result = run_once(
        benchmark, run_fig14, num_locations=16, repeats=2, rng=107
    )
    print_rows("Fig. 14: per-environment localization", result)
    # Paper: decimeter-level medians (16.5 / 25.3 / 32.1 cm).  The
    # simulated substrate reproduces the decimeter regime for covered
    # locations in every environment.
    for name, outcome in result.results.items():
        assert outcome.covered > 0, f"{name} produced no covered locations"
        assert outcome.summary().median < 0.6, name
    # The rich-multipath library covers at least as much of the area as
    # the near-empty hall (the paper's central "bad multipath" claim).
    assert (
        result.results["library"].coverage
        >= result.results["hall"].coverage - 1e-9
    )
