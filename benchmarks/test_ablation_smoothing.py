"""Ablation — spatial smoothing for coherent backscatter multipath.

Section 4.2 of the paper adopts spatial smoothing "to remove the
coherence among received signals".  This benchmark quantifies what
happens without it: coherent paths leave the covariance rank-1 and
MUSIC grows spurious arrivals.
"""

import math


from conftest import run_once

from repro.dsp.music import MusicEstimator
from repro.geometry.point import Point
from repro.rf.array import UniformLinearArray
from repro.rf.channel import MultipathChannel
from repro.rf.propagation import PropagationPath
from repro.geometry.segment import Segment

TRUE_ANGLES = (80.0, 100.0)


def _channel(array):
    paths = []
    for angle_deg in TRUE_ANGLES:
        angle = math.radians(angle_deg)
        source = array.centroid + Point(math.cos(angle), math.sin(angle)) * 4.0
        paths.append(
            PropagationPath(
                tag_id="t",
                aoa=angle,
                gain=0.01,
                legs=(Segment(source, array.centroid),),
            )
        )
    return MultipathChannel(array=array, paths=paths)


def _spurious_rate(estimator, channel, trials=12):
    spurious = 0
    for trial in range(trials):
        x = channel.snapshots(60, snr_db=25, rng=trial)
        peaks = estimator.estimate_aoas(x)
        for peak in peaks:
            off = min(
                abs(math.degrees(peak.angle) - t) for t in TRUE_ANGLES
            )
            if off > 5.0:
                spurious += 1
                break
    return spurious / trials


def test_ablation_spatial_smoothing(benchmark):
    array = UniformLinearArray(reference=Point(0, 0))
    channel = _channel(array)
    smoothed = MusicEstimator(
        spacing_m=array.spacing_m, wavelength_m=array.wavelength_m
    )
    unsmoothed = MusicEstimator(
        spacing_m=array.spacing_m,
        wavelength_m=array.wavelength_m,
        subarray_size=8,
        forward_backward=False,
    )

    def run():
        return _spurious_rate(smoothed, channel), _spurious_rate(
            unsmoothed, channel
        )

    with_smoothing, without_smoothing = run_once(benchmark, run)
    print(
        f"\n=== Ablation: spatial smoothing ===\n"
        f"spurious-peak rate  with smoothing: {with_smoothing:.0%}  "
        f"without: {without_smoothing:.0%}"
    )
    assert with_smoothing < 0.2
    assert without_smoothing > with_smoothing
