"""Fig. 13 — detection rate of P-MUSIC vs classic MUSIC."""

import numpy as np

from conftest import print_rows, run_once

from repro.experiments import run_fig13


def test_fig13_detection_rate(benchmark):
    result = run_once(
        benchmark,
        run_fig13,
        distances_m=(2.0, 4.0, 6.0, 8.0),
        trials=8,
        rng=106,
    )
    print_rows("Fig. 13: detection rates", result)
    # Paper: P-MUSIC near 100% for single blocks; classic MUSIC never
    # detects the all-blocked case.
    assert np.mean(result.pmusic_one) > 0.85
    assert np.mean(result.music_all) <= 0.15
    assert np.mean(result.pmusic_all) > np.mean(result.music_all)
