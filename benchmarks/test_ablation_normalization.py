"""Ablation — P-MUSIC's peak normalization function ``Nor(.)``.

Eq. 14 multiplies the Bartlett power by a MUSIC spectrum whose peaks
are normalized to 1.  Skipping the normalization (raw ``PB * B``)
re-injects MUSIC's probability-valued amplitudes and destroys the
linear relation between peak height and per-path power that D-Watch's
drop detection relies on.
"""

import math

import numpy as np

from conftest import run_once

from repro.dsp.bartlett import bartlett_power_spectrum
from repro.dsp.music import MusicEstimator
from repro.dsp.pmusic import PMusicEstimator
from repro.dsp.spectrum import AngularSpectrum
from repro.geometry.point import Point
from repro.geometry.segment import Segment
from repro.rf.array import UniformLinearArray
from repro.rf.channel import MultipathChannel
from repro.rf.propagation import PropagationPath

GAINS = {50.0: 0.010, 90.0: 0.008, 130.0: 0.006}


def _channel(array):
    paths = []
    for angle_deg, gain in GAINS.items():
        angle = math.radians(angle_deg)
        source = array.centroid + Point(math.cos(angle), math.sin(angle)) * 4.0
        paths.append(
            PropagationPath(
                tag_id="t",
                aoa=angle,
                gain=gain,
                legs=(Segment(source, array.centroid),),
            )
        )
    return MultipathChannel(array=array, paths=paths)


def _power_tracking_error(spectrum, window=math.radians(2.5)):
    """Mean relative error of per-path power readings vs |gain|^2."""
    errors = []
    for angle_deg, gain in GAINS.items():
        measured = spectrum.max_in_window(math.radians(angle_deg), window)
        truth = gain**2
        errors.append(abs(measured - truth) / truth)
    return float(np.mean(errors))


def test_ablation_peak_normalization(benchmark):
    array = UniformLinearArray(reference=Point(0, 0))
    channel = _channel(array)
    pmusic = PMusicEstimator(
        spacing_m=array.spacing_m, wavelength_m=array.wavelength_m
    )
    music = MusicEstimator(
        spacing_m=array.spacing_m, wavelength_m=array.wavelength_m
    )

    def run():
        with_nor, without_nor = [], []
        for trial in range(8):
            x = channel.snapshots(120, snr_db=30, rng=trial)
            with_nor.append(_power_tracking_error(pmusic.spectrum(x)))
            raw_music = music.spectrum(x)
            power = bartlett_power_spectrum(
                x, array.spacing_m, array.wavelength_m, raw_music.angles
            )
            # Dot-multiplying without normalization: scale the MUSIC
            # part to a comparable magnitude so only the *shape*
            # distortion is measured.
            b = raw_music.values / raw_music.values.max()
            unnormalized = AngularSpectrum(
                raw_music.angles.copy(), power.values * b
            )
            without_nor.append(_power_tracking_error(unnormalized))
        return float(np.mean(with_nor)), float(np.mean(without_nor))

    err_with, err_without = run_once(benchmark, run)
    print(
        f"\n=== Ablation: P-MUSIC normalization ===\n"
        f"per-path power tracking error  with Nor(.): {err_with:.2f}  "
        f"without: {err_without:.2f}"
    )
    assert err_with < err_without
    assert err_with < 0.6
