"""Fig. 3 — random phase offsets across 16 reader RF ports."""

from conftest import print_rows, run_once

from repro.experiments import run_fig03


def test_fig03_phase_offsets(benchmark):
    result = run_once(benchmark, run_fig03, rng=101)
    print_rows("Fig. 3: per-port phase offsets (deg)", result)
    # Paper: offsets range from -85.9 to +176 degrees — wildly random.
    assert len(result.offsets_deg) == 16
    assert result.spread_deg > 90.0
