"""Ablation — the GA + gradient-descent hybrid of Section 4.1.

Eq. 11 is non-convex in the offset phases.  This benchmark compares
the paper's hybrid against gradient descent from a random start
(which falls into local minima) and GA alone (which finds the basin
but not its floor).
"""

import math

import numpy as np
from scipy import optimize

from conftest import run_once

from repro.calibration.ga import GeneticMinimizer
from repro.calibration.offsets import PhaseOffsets, offset_error
from repro.calibration.wireless import (
    observation_from_snapshots,
    subspace_cost,
)
from repro.geometry.point import Point
from repro.geometry.segment import Segment
from repro.rf.array import UniformLinearArray
from repro.rf.channel import MultipathChannel
from repro.rf.propagation import PropagationPath


def _observations(array, truth, rng):
    observations = []
    for k, angle_deg in enumerate((30, 60, 90, 120, 150)):
        angle = math.radians(angle_deg)
        source = array.centroid + Point(math.cos(angle), math.sin(angle)) * 3.0
        paths = [
            PropagationPath(
                tag_id="t",
                aoa=angle,
                gain=0.01,
                legs=(Segment(source, array.centroid),),
            )
        ]
        extra = math.radians(20 + (k * 41) % 140)
        source2 = array.centroid + Point(math.cos(extra), math.sin(extra)) * 5.0
        paths.append(
            PropagationPath(
                tag_id="t",
                aoa=extra,
                gain=0.0015 * np.exp(1j * k),
                legs=(Segment(source2, array.centroid),),
            )
        )
        channel = MultipathChannel(array=array, paths=paths)
        x = channel.snapshots(60, snr_db=25, phase_offsets=truth.values, rng=rng)
        observations.append(observation_from_snapshots(x, angle))
    return observations


def test_ablation_calibration_solver(benchmark):
    array = UniformLinearArray(reference=Point(0, 0))

    from repro.calibration.annealing import SimulatedAnnealing

    def run():
        errors = {"hybrid": [], "gd_only": [], "ga_only": [], "annealing": []}
        for trial in range(4):
            rng = np.random.default_rng(500 + trial)
            raw = rng.uniform(-np.pi, np.pi, size=8)
            raw[0] = 0.0
            truth = PhaseOffsets.referenced(raw)
            observations = _observations(array, truth, rng)

            def cost(beta):
                return subspace_cost(
                    beta, observations, array.spacing_m, array.wavelength_m
                )

            bounds = [(-np.pi, np.pi)] * 7
            ga = GeneticMinimizer(bounds=bounds)
            ga_result = ga.minimize(cost, rng=rng)

            hybrid = optimize.minimize(
                cost, ga_result.best, method="L-BFGS-B",
                bounds=[(-np.pi - 0.5, np.pi + 0.5)] * 7,
            )
            gd_only = optimize.minimize(
                cost, rng.uniform(-np.pi, np.pi, size=7), method="L-BFGS-B",
                bounds=[(-np.pi - 0.5, np.pi + 0.5)] * 7,
            )

            def to_offsets(beta):
                return PhaseOffsets.referenced(np.concatenate(([0.0], beta)))

            annealing = SimulatedAnnealing(
                bounds=bounds, iterations=6000, initial_temperature=0.5
            ).minimize(cost, rng=rng)

            errors["hybrid"].append(offset_error(to_offsets(hybrid.x), truth))
            errors["gd_only"].append(offset_error(to_offsets(gd_only.x), truth))
            errors["ga_only"].append(
                offset_error(to_offsets(ga_result.best), truth)
            )
            errors["annealing"].append(
                offset_error(to_offsets(annealing.best), truth)
            )
        return {k: float(np.mean(v)) for k, v in errors.items()}

    means = run_once(benchmark, run)
    print(
        f"\n=== Ablation: calibration solver ===\n"
        f"offset error  hybrid: {means['hybrid']:.3f} rad  "
        f"GD-only: {means['gd_only']:.3f} rad  GA-only: {means['ga_only']:.3f} rad"
        f"  annealing: {means['annealing']:.3f} rad"
    )
    # The hybrid must beat plain gradient descent (local minima) and
    # refine the GA's basin estimate.
    assert means["hybrid"] < means["gd_only"]
    assert means["hybrid"] <= means["ga_only"] + 1e-9
