"""Fig. 4 — classic MUSIC cannot read per-path power changes."""

from conftest import print_rows, run_once

from repro.experiments import run_fig04


def test_fig04_music_limitation(benchmark):
    result = run_once(benchmark, run_fig04, rng=102)
    print_rows("Fig. 4: MUSIC peak changes under blocking", result)
    # Paper: MUSIC's peak amplitudes are unreliable for power readings.
    # Blocking one path perturbs *other* peaks (false positives), and in
    # the all-blocked case at least one blocked path fails to register a
    # solid drop (missed detection).
    assert result.unblocked_leakage > 0.3
    assert any(change > -0.5 for change in result.all_blocked_change)
