"""Fig. 18 — tag-array height difference degrades gracefully."""

import math


from conftest import print_rows, run_once

from repro.experiments import run_fig18


def test_fig18_height(benchmark):
    result = run_once(
        benchmark,
        run_fig18,
        height_differences_cm=(0, 40, 80, 120),
        num_locations=10,
        repeats=1,
        rng=111,
    )
    print_rows("Fig. 18: height-difference sweep (library)", result)
    # Paper: ~24 cm mean error at 40 cm difference, ~40 cm at 120 cm —
    # degradation is graceful, the system keeps working.  We assert the
    # large-height case stays within the paper's sub-metre regime and
    # that small height differences do not collapse coverage.
    valid = [err for err in result.mean_error_cm if not math.isnan(err)]
    assert valid, "no covered locations anywhere in the sweep"
    assert min(valid) < 100.0
    assert result.coverage[0] > 0.0
