"""Figs. 19/20 — three bottles on the 2 m x 2 m table."""


from conftest import print_rows, run_once

from repro.experiments import run_fig19


def test_fig19_multitarget(benchmark):
    result = run_once(
        benchmark,
        run_fig19,
        separations_cm=(130.0, 50.0, 20.0),
        snapshots=4,
        rng=112,
    )
    print_rows("Fig. 19: multi-target separations", result)
    # Paper: all three bottles localized at sparse separations with a
    # maximum error of 17.2 cm; at ~20 cm they tend to merge.
    assert result.targets_found[0] == 3
    assert result.targets_found[1] == 3
    assert result.max_error_cm[0] < 30.0
    assert result.max_error_cm[1] < 30.0
