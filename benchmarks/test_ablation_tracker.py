"""Ablation — Kalman vs particle tracking through deadzones.

The Section 8 mobility mitigation: coast through deadzones on a motion
model.  Both trackers are run over the same noisy fix sequence with a
deadzone gap; the benchmark records tail accuracy and gap drift.
"""

import numpy as np

from conftest import run_once

from repro.core.particle import ParticleTracker
from repro.core.tracker import KalmanTracker
from repro.geometry.point import Point
from repro.geometry.shapes import Rectangle

ROOM = Rectangle(0.0, 0.0, 8.0, 10.0)


def _walk_with_deadzone(rng, steps=60, gap=range(30, 40)):
    """An L-shaped walk; fixes drop out during the gap."""
    truth, fixes = [], []
    position = Point(1.0, 1.0)
    for step in range(steps):
        if step < 30:
            position = Point(1.0 + step * 0.1, 1.0)
        else:
            position = Point(4.0, 1.0 + (step - 30) * 0.1)
        truth.append(position)
        if step in gap:
            fixes.append(None)
        else:
            fixes.append(
                Point(
                    position.x + rng.normal(0, 0.12),
                    position.y + rng.normal(0, 0.12),
                )
            )
    return truth, fixes


def test_ablation_tracker_comparison(benchmark):
    def run():
        results = {}
        for name, factory in (
            ("kalman", lambda: KalmanTracker(process_noise=1.2)),
            ("particle", lambda: ParticleTracker(room=ROOM, rng=7)),
        ):
            errors = []
            for trial in range(6):
                rng = np.random.default_rng(700 + trial)
                truth, fixes = _walk_with_deadzone(rng)
                tracker = factory()
                times = [i * 0.1 for i in range(len(fixes))]
                track = tracker.track(times, fixes)
                offset = len(fixes) - len(track)
                errors.extend(
                    point.position.distance_to(truth[i + offset])
                    for i, point in enumerate(track[10:], start=10)
                )
            results[name] = float(np.mean(errors))
        return results

    means = run_once(benchmark, run)
    print(
        f"\n=== Ablation: trackers through a deadzone ===\n"
        f"mean tail error  Kalman: {means['kalman'] * 100:.1f} cm  "
        f"particle: {means['particle'] * 100:.1f} cm"
    )
    # Both must keep the track through the gap (sub-0.5 m mean error);
    # which one wins depends on the turn geometry, so no ordering claim.
    assert means["kalman"] < 0.5
    assert means["particle"] < 0.5
