"""Fig. 9 — wireless calibration error vs number of reference tags."""

from conftest import print_rows, run_once

from repro.experiments import run_fig09


def test_fig09_calibration_error(benchmark):
    result = run_once(
        benchmark,
        run_fig09,
        tag_counts=(1, 2, 4, 6, 8, 10),
        trials=3,
        rng=103,
    )
    print_rows("Fig. 9: phase calibration error (rad)", result)
    # Paper: D-Watch below 0.05 rad with >= 4 tags (we allow slack for
    # the reduced trial count); Phaser flat — extra tags don't help it.
    assert min(result.dwatch_error_rad[3:]) < 0.08
    assert result.dwatch_error_rad[0] > min(result.dwatch_error_rad[3:])
    assert result.phaser_error_rad[0] == result.phaser_error_rad[-1]
    assert min(result.dwatch_error_rad[3:]) < result.phaser_error_rad[-1]
