"""Fig. 15 — localization error vs per-array antenna count."""

import math

from conftest import print_rows, run_once

from repro.experiments import run_fig15


def test_fig15_antennas(benchmark):
    result = run_once(
        benchmark,
        run_fig15,
        antenna_counts=(4, 6, 8),
        environments=("library",),
        num_locations=12,
        repeats=2,
        rng=108,
    )
    print_rows("Fig. 15: error vs antennas (library)", result)
    series = result.mean_error_cm["library"]
    coverage = result.coverage["library"]
    # Paper: more antennas -> finer AoA resolution -> better accuracy
    # (54.3 / 35.6 / 17.6 cm at 4 / 6 / 8).  With the reduced trial
    # budget we assert 8 antennas beat 4 on error or on coverage.
    assert not math.isnan(series[-1])
    improved_error = math.isnan(series[0]) or series[-1] <= series[0]
    improved_coverage = coverage[-1] >= coverage[0]
    assert improved_error or improved_coverage
