"""Application — presence detection ROC in the hall.

The intrusion-detection alarm behind the paper's motivating scenario:
score empty-area captures against occupied ones and sweep the alarm
threshold into an ROC curve.  A usable alarm needs high AUC and a clean
operating point (high detection at near-zero false alarms).
"""

import numpy as np

from conftest import run_once

from repro.core.presence import auc, presence_score, roc_curve
from repro.experiments.harness import DeploymentHarness
from repro.sim.environments import hall_scene
from repro.sim.target import human_target


def test_presence_detection_roc(benchmark):
    def run():
        harness = DeploymentHarness(hall_scene(rng=951), rng=952)
        rng = np.random.default_rng(953)

        negative_scores = [
            presence_score(harness.dwatch.evidence(harness.session.capture()))
            for _ in range(20)
        ]
        positive_scores = []
        # Intruders stand on tag-reader lines (covered spots); an alarm
        # is evaluated where a target is physically detectable at all.
        readers = harness.scene.readers
        tags = harness.scene.tags
        for index in range(20):
            reader = readers[index % len(readers)]
            in_range = harness.scene.tags_in_range(reader)
            tag = in_range[index % len(in_range)]
            t = rng.uniform(0.3, 0.7)
            position = tag.position + (
                reader.array.centroid - tag.position
            ) * t
            intruder = human_target(position)
            positive_scores.append(
                presence_score(
                    harness.dwatch.evidence(harness.session.capture([intruder]))
                )
            )
        points = roc_curve(positive_scores, negative_scores)
        area = auc(points)
        # Detection rate at (near-)zero false alarms.
        quiet_points = [p for p in points if p.false_positive_rate <= 0.0]
        zero_fa_tpr = max(
            (p.true_positive_rate for p in quiet_points), default=0.0
        )
        return area, zero_fa_tpr, float(np.median(negative_scores)), float(
            np.median(positive_scores)
        )

    area, zero_fa_tpr, neg_median, pos_median = run_once(benchmark, run)
    print(
        f"\n=== Presence detection ROC (hall) ===\n"
        f"AUC {area:.2f}, detection at zero false alarms {zero_fa_tpr:.0%}\n"
        f"median score  empty: {neg_median:.2f}  occupied: {pos_median:.2f}"
    )
    assert area > 0.9
    assert zero_fa_tpr > 0.7
