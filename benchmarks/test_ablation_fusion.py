"""Ablation — single-fix vs fused multi-fix localization.

The paper repeats measurements at every test location; a monitoring
deployment gets fixes continuously.  Fusing fixes with the robust
geometric median suppresses *stochastic* fix scatter.  The measured
outcome is itself a finding: fused error barely moves, because with
10-snapshot captures the per-fix noise is already small — the residual
error (including wrong-angle ghosts) is structural in the evidence, so
averaging more captures of the same scene cannot remove it.  This is
why the localizer invests in consensus scoring rather than repetition.
"""

import numpy as np

from conftest import run_once

from repro.core.fusion import fuse_fixes
from repro.experiments.harness import DeploymentHarness
from repro.geometry.point import Point
from repro.sim.environments import library_scene
from repro.sim.target import human_target


def test_ablation_fix_fusion(benchmark):
    def run():
        harness = DeploymentHarness(library_scene(rng=901), rng=902)
        rng = np.random.default_rng(903)
        single_errors, fused_errors = [], []
        for _ in range(12):
            position = Point(
                rng.uniform(1.2, harness.scene.room.max_x - 1.2),
                rng.uniform(1.2, harness.scene.room.max_y - 1.2),
            )
            target = human_target(position)
            fixes = [harness.localize_target(target) for _ in range(5)]
            live = [fix for fix in fixes if fix is not None]
            if not live:
                continue
            single_errors.append(target.localization_error(live[0]))
            fused = fuse_fixes(fixes)
            fused_errors.append(target.localization_error(fused.position))
        return (
            float(np.mean(single_errors)),
            float(np.mean(fused_errors)),
            len(single_errors),
        )

    single_mean, fused_mean, covered = run_once(benchmark, run)
    print(
        f"\n=== Ablation: fix fusion (library, {covered} locations) ===\n"
        f"mean error  single fix: {single_mean * 100:.0f} cm"
        f"  fused (5 fixes, geometric median): {fused_mean * 100:.0f} cm"
    )
    assert covered >= 6
    # Fusion must not hurt, and usually helps the ghost-dominated tail.
    assert fused_mean <= single_mean + 0.05
