"""Fig. 16 — planted reflectors raise coverage in the empty hall."""

from conftest import print_rows, run_once

from repro.experiments import run_fig16


def test_fig16_reflectors(benchmark):
    result = run_once(
        benchmark,
        run_fig16,
        reflector_counts=(0, 4, 8, 12),
        num_locations=14,
        repeats=1,
        rng=109,
    )
    print_rows("Fig. 16: reflector sweep (hall)", result)
    # Paper: coverage rises significantly with reflectors as more
    # propagation paths cross the monitoring area.
    assert result.coverage[-1] > result.coverage[0]
