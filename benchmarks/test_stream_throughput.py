"""Streaming engine throughput: fixes/sec and per-window latency tails.

The paper's end-to-end budget is 0.5 s per fix (Section 8); a streaming
engine must additionally keep its *tail* latency inside that budget,
because a continuous tracker that stalls on one window drops the
target.  The run streams a synthetic walk through the hall and reports
sustained fixes/sec plus the p50/p99 of the ``latency.stream.window``
histogram the runner's spans feed.
"""

import time

from conftest import run_once

from repro import obs
from repro.core.pipeline import DWatch
from repro.sim.environments import hall_scene
from repro.sim.measurement import MeasurementSession
from repro.stream import StreamRunner
from repro.stream.synthetic import SyntheticStreamConfig, synthetic_reads

FIXES = 6


def stream_hall():
    scene = hall_scene(rng=71, num_tags=10, num_antennas=6)
    dwatch = DWatch(scene, cell_size=0.1)
    dwatch.calibrate(rng=72)
    session = MeasurementSession(scene, rng=73)
    dwatch.collect_baseline([session.capture() for _ in range(2)])
    runner = StreamRunner(dwatch)
    reads = list(
        synthetic_reads(scene, SyntheticStreamConfig(fixes=FIXES), rng=74)
    )
    with obs.observed() as state:
        started = time.perf_counter()
        fixes = list(runner.run(iter(reads)))
        elapsed = time.perf_counter() - started
    histogram = state.registry.histogram("latency.stream.window")
    return {
        "fixes": fixes,
        "reads": len(reads),
        "elapsed_s": elapsed,
        "fixes_per_s": len(fixes) / elapsed,
        "reads_per_s": len(reads) / elapsed,
        "p50_ms": histogram.percentile(50.0),
        "p99_ms": histogram.percentile(99.0),
        "window_count": histogram.count,
    }


def test_stream_throughput(benchmark):
    result = run_once(benchmark, stream_hall)
    print("\n=== Streaming throughput: synthetic hall walk ===")
    print(
        f"fixes {len(result['fixes'])}  reads {result['reads']}  "
        f"elapsed {result['elapsed_s']:.2f}s"
    )
    print(
        f"throughput {result['fixes_per_s']:.1f} fixes/s  "
        f"({result['reads_per_s']:.0f} reads/s)"
    )
    print(
        f"window latency p50 {result['p50_ms']:.1f} ms  "
        f"p99 {result['p99_ms']:.1f} ms"
    )
    assert len(result["fixes"]) == FIXES
    assert result["window_count"] == FIXES
    # The paper's end-to-end budget: 0.5 s per fix, sustained (>=2
    # fixes/sec) and in the tail (p99 under the budget).
    assert result["fixes_per_s"] >= 2.0
    assert result["p99_ms"] < 500.0
