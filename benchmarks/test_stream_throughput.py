"""Streaming engine throughput: fixes/sec and per-window latency tails.

The workload lives in :mod:`repro.experiments.throughput` so this gate
and ``scripts/bench.py`` measure the same synthetic hall walk; here we
just run it once and assert the paper's Section 8 budget holds.
"""

from conftest import run_once

from repro.experiments.throughput import run_stream_throughput

FIXES = 6


def test_stream_throughput(benchmark):
    result = run_once(benchmark, run_stream_throughput, fixes=FIXES)
    print("\n=== Streaming throughput: synthetic hall walk ===")
    for row in result.rows():
        print(row)
    assert len(result.fixes) == FIXES
    assert result.window_count == FIXES
    # The paper's end-to-end budget: 0.5 s per fix, sustained (>=2
    # fixes/sec) and in the tail (p99 under the budget).
    assert result.fixes_per_s >= 2.0
    assert result.p99_ms < 500.0
