"""Ablation — wrong-angle outlier rejection and consensus (Section 4.3).

Targets blocking pre-bounce legs inject events at reflector angles.
This benchmark injects such wrong-angle events and compares the full
consensus localizer against a bare likelihood arg-max.
"""

import math

import numpy as np

from conftest import run_once

from repro.core.detector import BlockedPath, _evidence_from_events
from repro.core.likelihood import LikelihoodMap
from repro.core.localizer import DWatchLocalizer
from repro.dsp.spectrum import default_angle_grid
from repro.geometry.point import Point
from repro.geometry.shapes import Rectangle
from repro.rf.array import UniformLinearArray
from repro.rfid.reader import Reader

ROOM = Rectangle(0.0, 0.0, 6.0, 6.0)


def _make_reader(name, midpoint, orientation):
    probe = UniformLinearArray(reference=midpoint, orientation=orientation)
    half = (probe.num_antennas - 1) * probe.spacing_m / 2.0
    array = UniformLinearArray(
        reference=midpoint - probe.axis * half,
        orientation=orientation,
        num_antennas=8,
        name=name,
    )
    return Reader(array=array, name=name, rng=1)


def _evidence(readers, target, rng):
    """True events plus per-reader *independent* wrong-angle events.

    Physically, a reader's wrong angles point at whichever reflectors
    its own pre-bounce blocked legs route through — different
    reflectors for different readers, hence independent offsets.
    """
    items = []
    grid = default_angle_grid()
    for name, reader in readers.items():
        true_angle = reader.array.angle_to(target)
        events = [
            BlockedPath(
                reader_name=name,
                epc="E" * 24,
                angle=true_angle,
                relative_drop=0.95,
                baseline_power=1.0,
                online_power=0.05,
            )
        ]
        offsets = rng.uniform(math.radians(25), math.radians(60), size=2)
        offsets *= rng.choice([-1.0, 1.0], size=2)
        events.extend(
            BlockedPath(
                reader_name=name,
                epc="F" * 24,
                angle=float(
                    np.clip(true_angle + offset, 0.05, math.pi - 0.05)
                ),
                relative_drop=0.99,
                baseline_power=1.0,
                online_power=0.01,
            )
            for offset in offsets
        )
        items.append(_evidence_from_events(name, events, grid))
    return items


def test_ablation_outlier_rejection(benchmark):
    readers = {
        "south": _make_reader("south", Point(3.0, 0.05), 0.0),
        "west": _make_reader("west", Point(0.05, 3.0), math.pi / 2.0),
        "north": _make_reader("north", Point(3.0, 5.95), math.pi),
    }
    lmap = LikelihoodMap(room=ROOM, readers=readers, cell_size=0.05)
    full = DWatchLocalizer(likelihood_map=lmap)

    def run():
        rng = np.random.default_rng(600)
        consensus_errors, bare_errors = [], []
        for trial in range(10):
            target = Point(rng.uniform(1.0, 5.0), rng.uniform(1.0, 5.0))
            evidence = _evidence(readers, target, rng)
            consensus = full.localize(evidence)
            consensus_errors.append(consensus.position.distance_to(target))
            bare = lmap.best_estimate(evidence)
            bare_errors.append(bare.position.distance_to(target))
        return float(np.mean(consensus_errors)), float(np.mean(bare_errors))

    consensus_mean, bare_mean = run_once(benchmark, run)
    print(
        f"\n=== Ablation: consensus + outlier rejection ===\n"
        f"mean error  with: {consensus_mean * 100:.1f} cm  "
        f"bare argmax: {bare_mean * 100:.1f} cm"
    )
    assert consensus_mean <= bare_mean + 1e-9
    assert consensus_mean < 0.3
