"""Fig. 12 — P-MUSIC spectrum changes track blocking faithfully."""

from conftest import print_rows, run_once

from repro.experiments import run_fig12


def test_fig12_pmusic_spectra(benchmark):
    result = run_once(benchmark, run_fig12, rng=105)
    print_rows("Fig. 12: P-MUSIC per-path power drops", result)
    blocked = result.one_blocked_drop[result.blocked_index]
    others = [
        drop
        for index, drop in enumerate(result.one_blocked_drop)
        if index != result.blocked_index
    ]
    # Paper: the blocked peak collapses, unblocked peaks barely move;
    # with all paths blocked every peak collapses.
    assert blocked > 0.8
    assert all(drop < 0.5 for drop in others)
    assert sum(1 for drop in result.all_blocked_drop if drop > 0.5) >= 2
