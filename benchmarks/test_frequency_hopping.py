"""Robustness — AoA estimation across the reader's hopping band.

Regulatory UHF readers hop channels; the paper's band is 920.5-924.5
MHz.  The server-side estimator assumes the band-centre wavelength, so
a capture taken at a band edge carries a systematic cos-domain scaling
of (lambda_est / lambda_true) ≈ 0.2 %.  This benchmark quantifies the
resulting AoA error and confirms it is negligible against the paper's
2-degree accuracy — the reason D-Watch can ignore hopping entirely.
"""

import math


from conftest import run_once

from repro.constants import (
    DEFAULT_WAVELENGTH_M,
    SPEED_OF_LIGHT,
    UHF_BAND_HIGH_HZ,
    UHF_BAND_LOW_HZ,
)
from repro.dsp.music import MusicEstimator
from repro.geometry.point import Point
from repro.geometry.segment import Segment
from repro.rf.array import UniformLinearArray
from repro.rf.channel import MultipathChannel
from repro.rf.propagation import PropagationPath


def _channel_at(frequency_hz, angle_deg):
    wavelength = SPEED_OF_LIGHT / frequency_hz
    # Physical array built for the band centre; the carrier hops.
    array = UniformLinearArray(
        reference=Point(0, 0),
        spacing_m=DEFAULT_WAVELENGTH_M / 2.0,
        wavelength_m=wavelength,
    )
    angle = math.radians(angle_deg)
    source = array.centroid + Point(math.cos(angle), math.sin(angle)) * 5.0
    path = PropagationPath(
        tag_id="t",
        aoa=angle,
        gain=0.01,
        legs=(Segment(source, array.centroid),),
    )
    return MultipathChannel(array=array, paths=[path])


def test_frequency_hopping_aoa_robustness(benchmark):
    def run():
        estimator = MusicEstimator(
            spacing_m=DEFAULT_WAVELENGTH_M / 2.0,
            wavelength_m=DEFAULT_WAVELENGTH_M,  # server assumes band centre
        )
        worst = 0.0
        for frequency in (UHF_BAND_LOW_HZ, UHF_BAND_HIGH_HZ):
            for angle_deg in (40.0, 70.0, 90.0, 120.0, 150.0):
                channel = _channel_at(frequency, angle_deg)
                x = channel.snapshots(80, snr_db=35, rng=7)
                peaks = estimator.estimate_aoas(x, max_peaks=1)
                error = abs(math.degrees(peaks[0].angle) - angle_deg)
                worst = max(worst, error)
        return worst

    worst_error_deg = run_once(benchmark, run)
    print(
        f"\n=== Frequency hopping (920.5-924.5 MHz, centre-assumed estimator) ===\n"
        f"worst-case AoA error across band edges and angles: "
        f"{worst_error_deg:.2f} deg"
    )
    # Negligible against the paper's 2-degree calibrated accuracy.
    assert worst_error_deg < 1.0
