"""Fig. 17 — more tags raise coverage in the library."""

from conftest import print_rows, run_once

from repro.experiments import run_fig17


def test_fig17_tags(benchmark):
    result = run_once(
        benchmark,
        run_fig17,
        tag_counts=(7, 17, 27, 37, 47),
        num_locations=12,
        repeats=1,
        rng=110,
    )
    print_rows("Fig. 17: tag sweep (library)", result)
    # Paper: more tags -> more trip-wire paths -> higher coverage.
    assert result.coverage[-1] > result.coverage[0]
