"""Figs. 21/22 — tracking a fist writing 'P' and 'O' in the air."""

from conftest import print_rows, run_once

from repro.experiments import run_fig21


def test_fig21_fist_tracking(benchmark):
    result = run_once(
        benchmark, run_fig21, tag_counts=(26, 13), letters=("P", "O"), rng=113
    )
    print_rows("Fig. 21/22: fist tracking", result)
    # Paper: median 5.8 cm with 26 tags, 9.7 cm with 13 tags.  The
    # denser deployment must track better (or fix more often), and the
    # 26-tag tracking error must stay in the paper's sub-decimeter
    # regime.
    assert result.median_error_cm[0] < 10.0
    denser_better = result.median_error_cm[0] <= result.median_error_cm[1]
    fixes_better = result.coverage[0] >= result.coverage[1]
    assert denser_better or fixes_better
