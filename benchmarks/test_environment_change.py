"""Robustness — environment change: D-Watch re-baselines in seconds,
fingerprints go stale.

Section 1: "The fingerprints also need to be updated if there are
changes in the environment such as furniture movements, making these
systems less realistic for real-life deployment."  This benchmark moves
furniture (replaces the reflector set) after the fingerprint database
is trained, and compares D-Watch — whose baseline re-capture costs a
few seconds — against the stale database.
"""

import dataclasses

import numpy as np

from conftest import run_once

from repro.baselines.fingerprint import FingerprintLocalizer
from repro.core.pipeline import DWatch
from repro.geometry.point import Point
from repro.geometry.segment import Segment
from repro.sim.environments import laboratory_scene
from repro.sim.measurement import MeasurementSession
from repro.sim.target import human_target


def _move_furniture(scene, rng):
    """Displace every reflector by ~1 m and rotate it: a refurnished room."""
    moved = []
    for reflector in scene.reflectors:
        shift = Point(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0))
        mid = reflector.plate.midpoint() + shift
        mid = scene.room.clamp(mid)
        direction = (reflector.plate.end - reflector.plate.start) * 0.5
        rotated = direction.rotated(rng.uniform(-0.8, 0.8))
        moved.append(
            dataclasses.replace(
                reflector, plate=Segment(mid - rotated, mid + rotated)
            )
        )
    return scene.with_reflectors(moved)


def test_environment_change_robustness(benchmark):
    def run():
        rng = np.random.default_rng(801)
        scene = laboratory_scene(rng=802)
        session = MeasurementSession(scene, rng=803)

        fingerprint = FingerprintLocalizer(
            training_spacing=0.9, samples_per_location=1
        )
        fingerprint.train(scene, session)

        # The furniture moves overnight.
        changed = _move_furniture(scene, rng)
        changed_session = MeasurementSession(changed, rng=804)

        # D-Watch: recalibrate nothing, just re-capture the baseline —
        # the "few seconds" the paper contrasts against hours.
        dwatch = DWatch(changed)
        dwatch.calibrate(rng=805)
        dwatch.collect_baseline([changed_session.capture() for _ in range(3)])

        dwatch_errors, fingerprint_errors = [], []
        for _ in range(12):
            position = Point(
                rng.uniform(1.5, changed.room.max_x - 1.5),
                rng.uniform(1.5, changed.room.max_y - 1.5),
            )
            target = human_target(position)
            capture = changed_session.capture([target])
            estimates = dwatch.localize(capture)
            if estimates:
                dwatch_errors.append(
                    target.localization_error(estimates[0].position)
                )
            fingerprint_errors.append(
                target.localization_error(fingerprint.localize(capture))
            )
        return (
            float(np.median(dwatch_errors)) if dwatch_errors else float("nan"),
            float(np.median(fingerprint_errors)),
        )

    dwatch_median, fingerprint_median = run_once(benchmark, run)
    print(
        f"\n=== Environment change (furniture moved after training) ===\n"
        f"median error  D-Watch (fresh 3-capture baseline): "
        f"{dwatch_median * 100:.0f} cm\n"
        f"              fingerprint (stale database):        "
        f"{fingerprint_median * 100:.0f} cm"
    )
    assert dwatch_median < fingerprint_median
