"""Extension — D-Watch's detection loop on Wi-Fi CSI.

Quantifies the claim of Section 9 (portability to other RF
technologies) and the technical advantage of OFDM: subcarrier diversity
decorrelates coherent paths at full array aperture, where the RFID
stack must spend aperture on spatial smoothing.
"""

import math


from conftest import run_once

from repro.geometry.blocking import path_blocked_by
from repro.sim.target import human_target
from repro.wifi import WidebandPMusic, csi_snapshots, wifi_office_scene


def test_wifi_blocked_path_detection(benchmark):
    def run():
        scene = wifi_office_scene(rng=401)
        detections, attempts = 0, 0
        false_positives = 0
        for ap in scene.readers:
            estimator = WidebandPMusic(
                spacing_m=ap.array.spacing_m,
                wavelength_m=ap.array.wavelength_m,
            )
            channels = scene.channels_for(ap)
            for trial, (epc, channel) in enumerate(sorted(channels.items())[:6]):
                direct = channel.paths[0]
                person = human_target(direct.legs[0].point_at(0.5))
                baseline = estimator.spectrum(
                    csi_snapshots(channel, 5, rng=402 + trial)
                )
                online = estimator.spectrum(
                    csi_snapshots(
                        channel.with_targets([person.body()]),
                        5,
                        rng=502 + trial,
                    )
                )
                window = math.radians(2.5)
                for path in channel.paths:
                    base = baseline.max_in_window(path.aoa, window)
                    if base <= 0:
                        continue
                    drop = (base - online.max_in_window(path.aoa, window)) / base
                    blocked = path_blocked_by(path.legs, person.body())
                    if blocked:
                        attempts += 1
                        detections += drop >= 0.5
                    elif drop >= 0.5:
                        false_positives += 1
        return detections, attempts, false_positives

    detections, attempts, false_positives = run_once(benchmark, run)
    rate = detections / attempts if attempts else 0.0
    print(
        f"\n=== Wi-Fi extension: blocked-path detection on CSI ===\n"
        f"detection rate {rate:.0%} ({detections}/{attempts}), "
        f"false positives {false_positives}"
    )
    assert attempts >= 10
    assert rate > 0.85
