"""Baseline comparison — D-Watch vs fingerprinting vs RTI.

The paper's Sections 1 and 7 argue qualitatively against the two main
competitor families: fingerprinting needs labour-intensive training
that goes stale, and model-based imaging (RTI) is coarse.  This
benchmark puts all three on identical captures in the hall and measures
accuracy and offline effort.
"""

import numpy as np

from conftest import run_once

from repro.baselines.fingerprint import FingerprintLocalizer
from repro.baselines.rti import RtiLocalizer
from repro.core.pipeline import DWatch
from repro.errors import LocalizationError
from repro.geometry.point import Point
from repro.sim.environments import hall_scene
from repro.sim.measurement import MeasurementSession
from repro.sim.target import human_target


def test_baseline_comparison(benchmark):
    def run():
        scene = hall_scene(rng=301)
        session = MeasurementSession(scene, rng=302)

        dwatch = DWatch(scene)
        dwatch.calibrate(rng=303)
        dwatch.collect_baseline([session.capture() for _ in range(3)])

        fingerprint = FingerprintLocalizer(
            training_spacing=0.75, samples_per_location=1
        )
        training_captures = fingerprint.train(scene, session)

        rti = RtiLocalizer(scene, voxel_size=0.4)
        rti.calibrate(session.capture())

        rng = np.random.default_rng(304)
        errors = {"dwatch": [], "fingerprint": [], "rti": []}
        for _ in range(15):
            position = Point(
                rng.uniform(1.2, scene.room.max_x - 1.2),
                rng.uniform(1.2, scene.room.max_y - 1.2),
            )
            target = human_target(position)
            capture = session.capture([target])
            estimates = dwatch.localize(capture)
            if estimates:
                errors["dwatch"].append(
                    target.localization_error(estimates[0].position)
                )
            errors["fingerprint"].append(
                target.localization_error(fingerprint.localize(capture))
            )
            try:
                errors["rti"].append(
                    target.localization_error(rti.localize(capture))
                )
            except LocalizationError:
                pass
        medians = {
            name: float(np.median(values)) if values else float("nan")
            for name, values in errors.items()
        }
        return medians, training_captures

    medians, training_captures = run_once(benchmark, run)
    print(
        f"\n=== Baseline comparison (hall) ===\n"
        f"median error  D-Watch: {medians['dwatch'] * 100:.0f} cm"
        f"  fingerprint: {medians['fingerprint'] * 100:.0f} cm"
        f"  RTI: {medians['rti'] * 100:.0f} cm\n"
        f"offline effort  D-Watch: 0 training captures"
        f"  fingerprint: {training_captures}"
        f"  RTI: 0 (but needs tag positions)"
    )
    # D-Watch reaches decimeter medians without any training; the
    # baselines sit at the half-metre-plus regime their papers report.
    assert medians["dwatch"] < medians["fingerprint"]
    assert medians["dwatch"] < medians["rti"]
    assert training_captures > 50
