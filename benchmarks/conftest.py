"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one table/figure of the paper at a reduced
but representative size, prints the same rows the paper reports, and
asserts the figure's qualitative claim.  ``benchmark.pedantic`` with a
single round keeps pytest-benchmark from re-running multi-second
simulations dozens of times.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Measure one execution of ``fn`` and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def print_rows(title, result):
    """Emit a figure's rows under a banner (visible with pytest -s)."""
    print(f"\n=== {title} ===")
    for row in result.rows():
        print(row)
