"""Fig. 10 — LoS AoA error CDF for the three calibration modes."""

from conftest import print_rows, run_once

from repro.experiments import run_fig10


def test_fig10_aoa_cdf(benchmark):
    result = run_once(benchmark, run_fig10, trials=4, rng=104)
    print_rows("Fig. 10: LoS AoA error medians (deg)", result)
    medians = result.medians()
    # Paper: D-Watch median ~2 deg, better than Phaser; uncalibrated
    # estimation is hopeless.
    assert medians["dwatch"] < 5.0
    assert medians["dwatch"] <= medians["phaser"] + 0.5
    assert medians["none"] > 15.0
