"""Resilience under chaos: fix throughput while a reader is down.

Kills one of three readers for a third of the run (the ``reader-loss``
chaos scenario) and measures what the degradation costs: the fix stream
must keep flowing at the paper's 0.5 s/fix budget, with the outage
windows flagged as degraded rather than silently wrong.
"""

import time

from conftest import run_once

from repro.core.pipeline import DWatch
from repro.faults import FaultInjector, chaos_plan, scene_schedules
from repro.sim.environments import hall_scene
from repro.sim.measurement import MeasurementSession
from repro.stream import HealthConfig, StreamConfig, StreamRunner
from repro.stream.synthetic import SyntheticStreamConfig, synthetic_reads

FIXES = 6


def stream_reader_loss():
    scene = hall_scene(rng=71, num_readers=3, num_tags=10, num_antennas=6)
    dwatch = DWatch(scene, cell_size=0.1)
    dwatch.calibrate(rng=72)
    session = MeasurementSession(scene, rng=73)
    dwatch.collect_baseline([session.capture() for _ in range(2)])
    runner = StreamRunner(
        dwatch,
        StreamConfig(health=HealthConfig(stale_windows=2, recovery_windows=2)),
    )
    clean = list(
        synthetic_reads(
            scene, SyntheticStreamConfig(fixes=FIXES, moving=False), rng=74
        )
    )
    plan = chaos_plan("reader-loss", scene, fixes=FIXES)
    injector = FaultInjector(plan, scene_schedules(scene))
    reads = list(injector.inject(iter(clean)))
    started = time.perf_counter()
    fixes = list(runner.run(iter(reads)))
    elapsed = time.perf_counter() - started
    return {
        "fixes": fixes,
        "reads": len(reads),
        "dropped": injector.stats["dropped_outage"],
        "elapsed_s": elapsed,
        "fixes_per_s": len(fixes) / elapsed,
    }


def test_stream_resilience(benchmark):
    result = run_once(benchmark, stream_reader_loss)
    fixes = result["fixes"]
    degraded = [f for f in fixes if f.quality.degraded]
    print("\n=== Streaming resilience: reader-loss chaos ===")
    print(
        f"fixes {len(fixes)}  reads {result['reads']}  "
        f"dropped by outage {result['dropped']}  "
        f"elapsed {result['elapsed_s']:.2f}s"
    )
    print(
        f"throughput {result['fixes_per_s']:.1f} fixes/s  "
        f"degraded {len(degraded)}/{len(fixes)}  "
        f"min confidence {min(f.quality.confidence for f in fixes):.3f}"
    )
    # Losing a reader must not stall the stream or sink the budget.
    assert len(fixes) == FIXES
    assert result["dropped"] > 0
    assert degraded, "the outage windows must be flagged, not hidden"
    assert all(f.quality.level == "full" for f in fixes[:2])
    assert result["fixes_per_s"] >= 2.0
