"""Section 8 — per-fix processing latency, with per-stage breakdown."""

from conftest import print_rows, run_once

from repro.experiments import run_latency


def test_latency(benchmark):
    result = run_once(benchmark, run_latency, fixes=8, rng=114)
    print_rows("Latency: one localization fix", result)
    # Paper: 57 ms processing per fix on an i7-4790 (C#/Matlab); the
    # end-to-end budget is 0.5 s.  Our pure-Python pipeline must at
    # least fit the end-to-end budget.
    assert result.mean_ms < 500.0
    # The observability spans must break the fix down per stage: the
    # pipeline and grid-search stages always run, and the sum of a
    # stage's time can never exceed the measured total.
    assert "pipeline.localize" in result.stage_ms
    assert "grid.modes" in result.stage_ms
    assert result.stage_ms["pipeline.localize"]["count"] == 8
    assert result.stage_ms["pipeline.localize"]["mean"] <= result.mean_ms
